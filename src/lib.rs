//! Umbrella crate for the MandiPass reproduction workspace.
//!
//! Re-exports the member crates so the `examples/` and `tests/` at the
//! repository root can exercise the whole stack through one dependency.

pub use mandipass;
pub use mandipass_baselines as baselines;
pub use mandipass_classifiers as classifiers;
pub use mandipass_dsp as dsp;
pub use mandipass_eval as eval;
pub use mandipass_imu_sim as imu_sim;
pub use mandipass_nn as nn;
