//! Property tests over hostile sensor input: NaN/Inf bursts, huge
//! magnitudes and arbitrary lengths must produce typed errors or clean
//! rejections — never a panic — anywhere in the pipeline.

use mandipass::prelude::*;
use mandipass::preprocess::preprocess;
use mandipass::quality;
use mandipass_imu_sim::recorder::Recording;
use mandipass_imu_sim::Condition;
use mandipass_util::proptest::prelude::*;

/// Deterministically laces a finite sample stream with NaN, ±Inf and
/// ±huge values, keyed off each value's own bit pattern and a per-axis
/// salt so every axis gets a different corruption pattern.
fn hostile(values: &[f64], salt: u64) -> Vec<f64> {
    values
        .iter()
        .map(|&x| match (x.to_bits() ^ salt) % 11 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => x * 1e300,
            4 => -x * 1e300,
            5 => f64::MIN_POSITIVE * x.signum(),
            _ => x,
        })
        .collect()
}

/// Builds a six-axis recording from one generated track, corrupting each
/// axis with a different salt. Shape is always valid (six equal-length
/// non-empty tracks); the *values* are arbitrary garbage.
fn hostile_recording(values: &[f64]) -> Recording {
    let axes: Vec<Vec<f64>> = (0..6).map(|a| hostile(values, a * 0x9e37)).collect();
    Recording::from_parts(350.0, axes, Condition::Normal, 0).expect("shape is valid")
}

fn untrained_authenticator() -> MandiPass {
    let extractor = BiometricExtractor::new(ExtractorConfig::tiny(2)).expect("tiny config");
    MandiPass::new(extractor, PipelineConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn preprocess_never_panics_on_hostile_input(
        values in proptest::collection::vec(-1e6f64..1e6, 1..400),
    ) {
        let rec = hostile_recording(&values);
        // Ok or a typed error — the property is the absence of a panic.
        if let Ok(array) = preprocess(&rec, &PipelineConfig::default()) {
            for axis in array.iter() {
                prop_assert!(
                    axis.iter().all(|v| v.is_finite()),
                    "preprocess let a non-finite value through"
                );
            }
        }
    }

    #[test]
    fn extract_print_never_panics_on_hostile_input(
        values in proptest::collection::vec(-1e6f64..1e6, 1..400),
    ) {
        let auth = untrained_authenticator();
        let rec = hostile_recording(&values);
        if let Ok(print) = auth.extract_print(&rec) {
            prop_assert_eq!(print.dim(), 32);
            prop_assert!(print.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn quality_gate_flags_every_nonfinite_recording(
        values in proptest::collection::vec(-1e6f64..1e6, 1..400),
    ) {
        let rec = hostile_recording(&values);
        let has_nonfinite = rec
            .axes()
            .iter()
            .any(|axis| axis.iter().any(|v| !v.is_finite()));
        let report = quality::assess(&rec, &QualityConfig::default());
        if has_nonfinite {
            prop_assert!(
                report.reasons.iter().any(|r| matches!(r, RejectReason::NonFinite)),
                "non-finite samples must be flagged: {:?}",
                report.reasons
            );
            prop_assert!(!report.ok());
        }
    }

    #[test]
    fn verify_with_policy_never_panics_on_hostile_probes(
        values in proptest::collection::vec(-1e6f64..1e6, 1..400),
    ) {
        let auth = untrained_authenticator();
        let rec = hostile_recording(&values);
        let matrix = GaussianMatrix::generate(3, 32);
        // Nobody is enrolled: the policy must fail fast with NotEnrolled
        // regardless of how hostile the probe is.
        let err = auth
            .verify_with_policy(9, &[rec], &matrix, &VerifyPolicy::default())
            .expect_err("no template stored");
        prop_assert!(matches!(err, MandiPassError::NotEnrolled { user_id: 9 }));
    }
}

#[test]
fn malformed_shapes_are_typed_errors() {
    // Ragged, empty and wrong-arity axis sets are rejected at
    // construction with a typed reason — the pipeline never sees them.
    let ragged = vec![
        vec![0.0; 10],
        vec![0.0; 9],
        vec![0.0; 10],
        vec![0.0; 10],
        vec![0.0; 10],
        vec![0.0; 10],
    ];
    assert!(Recording::from_parts(350.0, ragged, Condition::Normal, 0).is_err());
    let five = vec![vec![0.0; 10]; 5];
    assert!(Recording::from_parts(350.0, five, Condition::Normal, 0).is_err());
    let empty = vec![Vec::new(); 6];
    assert!(Recording::from_parts(350.0, empty, Condition::Normal, 0).is_err());
    let bad_rate = vec![vec![0.0; 10]; 6];
    assert!(Recording::from_parts(f64::NAN, bad_rate, Condition::Normal, 0).is_err());
}
