//! Cross-crate integration of the evaluation harness: pair enumeration
//! and FAR/FRR/EER over real pipeline embeddings at smoke-test scale.

use mandipass_bench::{EvalScale, TrainedStack};
use mandipass_eval::metrics::{eer, far_at, frr_at, vsr_at};
use mandipass_eval::pairs::ScoreSet;
use mandipass_eval::split::{grouped_holdout, leave_one_out};
use mandipass_imu_sim::Condition;

#[test]
fn smoke_scale_evaluation_produces_consistent_metrics() {
    let mut stack = TrainedStack::build(EvalScale::smoke_test()).expect("training succeeds");
    let eval = stack.main_evaluation();

    // Pair counts follow the combinatorics of Eqs. 9-10.
    let per_user: Vec<usize> = eval.per_user.iter().map(Vec::len).collect();
    let expected_genuine: usize = per_user.iter().map(|&n| n * (n - 1) / 2).sum();
    assert_eq!(eval.scores.genuine.len(), expected_genuine);

    // The EER threshold balances the two error rates.
    let t = eval.eer_point.threshold;
    let far = far_at(&eval.scores.impostor, t);
    let frr = frr_at(&eval.scores.genuine, t);
    assert!((far - frr).abs() <= 0.2, "far {far} vs frr {frr}");

    // VSR is the complement of FRR.
    assert!((vsr_at(&eval.scores.genuine, t) - (1.0 - frr)).abs() < 1e-12);

    // Distances are valid cosine distances.
    for d in eval.scores.genuine.iter().chain(&eval.scores.impostor) {
        assert!((-1e-9..=2.0 + 1e-9).contains(d));
    }
}

#[test]
fn score_set_from_real_embeddings_orders_correctly() {
    let mut stack = TrainedStack::build(EvalScale::smoke_test()).expect("training succeeds");
    let users: Vec<_> = stack.held_out_users().to_vec();
    let per_user: Vec<Vec<Vec<f32>>> = users
        .iter()
        .map(|u| stack.embeddings_for(u, Condition::Normal, 6, 0x9999))
        .collect();
    let scores = ScoreSet::from_embeddings(&per_user);
    assert!(scores.genuine_mean() < scores.impostor_mean());
    assert!(eer(&scores.genuine, &scores.impostor).is_some());
}

#[test]
fn fold_generators_cover_the_cohort() {
    for n in [3usize, 8, 34] {
        let folds = leave_one_out(n);
        assert_eq!(folds.len(), n);
        let grouped = grouped_holdout(n, 5);
        let covered: usize = grouped.iter().map(|f| f.held_out.len()).sum();
        assert_eq!(covered, n);
    }
}
