//! Cross-crate integration: the full registration/verification lifecycle
//! built from the simulator, DSP, CNN, template, and enclave layers.

use mandipass::prelude::*;
use mandipass_imu_sim::{Condition, Population, Recorder};
use std::sync::OnceLock;

struct Fixture {
    population: Population,
    recorder: Recorder,
}

/// Trains once per test binary; tests clone the extractor weights by
/// retraining deterministically (cheap at this scale).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| Fixture {
        population: Population::generate(8, 4242),
        recorder: Recorder::default(),
    })
}

fn trained_system() -> MandiPass {
    let f = fixture();
    let trainer = VspTrainer::new(TrainingConfig {
        seconds_per_person: 4.0,
        epochs: 6,
        ..TrainingConfig::fast_demo()
    });
    let extractor = trainer
        .train(&f.population.users()[2..], &f.recorder)
        .expect("training succeeds");
    MandiPass::new(extractor, PipelineConfig::default())
}

#[test]
fn lifecycle_enrol_verify_revoke() {
    let f = fixture();
    let mut system = trained_system();
    let user = &f.population.users()[0];
    let matrix = GaussianMatrix::generate(1, system.embedding_dim());

    // Enrol.
    let enrolment: Vec<_> = (0..4)
        .map(|s| f.recorder.record(user, Condition::Normal, 9000 + s))
        .collect();
    system
        .enroll(user.id, &enrolment, &matrix)
        .expect("enrolment succeeds");
    assert!(system.enclave().contains(user.id));

    // Verify: genuine distances must sit below impostor distances.
    let genuine: Vec<f64> = (0..6)
        .map(|s| {
            let probe = f.recorder.record(user, Condition::Normal, 9100 + s);
            system
                .verify(user.id, &probe, &matrix)
                .expect("verifies")
                .distance
        })
        .collect();
    let impostor: Vec<f64> = (0..6)
        .map(|s| {
            let probe = f
                .recorder
                .record(&f.population.users()[1], Condition::Normal, 9200 + s);
            system
                .verify(user.id, &probe, &matrix)
                .expect("verifies")
                .distance
        })
        .collect();
    let g_mean = genuine.iter().sum::<f64>() / genuine.len() as f64;
    let i_mean = impostor.iter().sum::<f64>() / impostor.len() as f64;
    assert!(
        g_mean < i_mean,
        "genuine {g_mean:.3} !< impostor {i_mean:.3}"
    );

    // Revoke: the template disappears and verification errors.
    let stolen = system.revoke(user.id).expect("template existed");
    assert!(stolen.storage_bytes() > 0);
    let probe = f.recorder.record(user, Condition::Normal, 9300);
    assert!(matches!(
        system.verify(user.id, &probe, &matrix),
        Err(MandiPassError::NotEnrolled { .. })
    ));
}

#[test]
fn cancelable_templates_break_across_matrices() {
    let f = fixture();
    let mut system = trained_system();
    let user = &f.population.users()[0];
    let old_matrix = GaussianMatrix::generate(10, system.embedding_dim());
    let enrolment: Vec<_> = (0..4)
        .map(|s| f.recorder.record(user, Condition::Normal, 9400 + s))
        .collect();
    system
        .enroll(user.id, &enrolment, &old_matrix)
        .expect("enrolment succeeds");

    // Steal, revoke, re-enrol under a new matrix.
    let stolen = system.enclave().load(user.id).expect("template exists");
    system.revoke(user.id);
    let new_matrix = GaussianMatrix::generate(11, system.embedding_dim());
    system
        .enroll(user.id, &enrolment, &new_matrix)
        .expect("re-enrolment succeeds");

    let replay = system
        .verify_cancelable(user.id, &stolen)
        .expect("comparison runs");
    assert!(
        !replay.accepted,
        "stolen template still verified after revocation (distance {})",
        replay.distance
    );

    // The genuine user remains verifiable under the new matrix.
    let probe = f.recorder.record(user, Condition::Normal, 9500);
    let genuine = system
        .verify(user.id, &probe, &new_matrix)
        .expect("verifies");
    assert!(genuine.distance < replay.distance);
}

#[test]
fn deterministic_pipeline_same_seed_same_outcome() {
    let f = fixture();
    let mut a = trained_system();
    let mut b = trained_system();
    let user = &f.population.users()[0];
    let matrix = GaussianMatrix::generate(3, a.embedding_dim());
    let enrolment: Vec<_> = (0..3)
        .map(|s| f.recorder.record(user, Condition::Normal, 9600 + s))
        .collect();
    a.enroll(user.id, &enrolment, &matrix).expect("enrol a");
    b.enroll(user.id, &enrolment, &matrix).expect("enrol b");
    let probe = f.recorder.record(user, Condition::Normal, 9700);
    let oa = a.verify(user.id, &probe, &matrix).expect("verify a");
    let ob = b.verify(user.id, &probe, &matrix).expect("verify b");
    assert_eq!(oa, ob);
}

#[test]
fn model_serialisation_survives_deployment() {
    use mandipass_nn::serialize::{load_params, save_params};

    let f = fixture();
    let trainer = VspTrainer::new(TrainingConfig {
        seconds_per_person: 3.0,
        epochs: 3,
        ..TrainingConfig::fast_demo()
    });
    let mut trained = trainer
        .train(&f.population.users()[2..], &f.recorder)
        .expect("training succeeds");
    let blob = save_params(&mut trained);

    // A factory-fresh earphone loads the shipped weights.
    let mut shipped = BiometricExtractor::new(ExtractorConfig {
        axes: 6,
        half_n: 30,
        channels: [4, 8, 8],
        embedding_dim: 64,
        classes: 6,
        seed: 999, // different init — must be fully overwritten
        two_branch: true,
    })
    .expect("valid architecture");
    load_params(&mut shipped, &blob).expect("weights load");

    let probe = f
        .recorder
        .record(&f.population.users()[0], Condition::Normal, 9800);
    let sys_a = MandiPass::new(trained, PipelineConfig::default());
    let sys_b = MandiPass::new(shipped, PipelineConfig::default());
    let pa = sys_a.extract_print(&probe).expect("extracts");
    let pb = sys_b.extract_print(&probe).expect("extracts");
    assert_eq!(pa.as_slice(), pb.as_slice());
}
