//! Integration: end-to-end request tracing under concurrency (ISSUE 7).
//!
//! Four client threads drive a four-worker [`VerifyServer`] through
//! [`VerifyClient::call_traced`] — half the requests with caller-chosen
//! trace ids, half letting the client mint one. Every response must echo
//! a trace id, every echoed id must be globally unique, each
//! caller-chosen id must come back verbatim, and each echoed id must
//! locate a committed [`RequestTrace`] in the deployment's monitor whose
//! stage durations sum to within its recorded total. Real sockets, real
//! worker pool — no mocks.

use mandipass::prelude::*;
use mandipass_imu_sim::{Condition, Population, Recorder, Recording};
use mandipass_serve::{Request, Response, ServeConfig, VerifyClient, VerifyServer, VerifyService};
use mandipass_telemetry::{Monitor, MonitorConfig, TraceConfig};

const THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 6;

/// A small trained deployment behind a TCP server: one enrolled user, a
/// private always-sample monitor (the test asserts on *every* id, so the
/// probabilistic filter must not thin the store regardless of the
/// ambient `MANDIPASS_TRACE_SAMPLE`).
fn serve_fixture() -> (
    VerifyServer,
    &'static Monitor,
    u32,
    Recorder,
    mandipass_imu_sim::UserProfile,
) {
    let pop = Population::generate(6, 77);
    let recorder = Recorder::default();
    let trainer = VspTrainer::new(TrainingConfig {
        seconds_per_person: 4.0,
        epochs: 6,
        ..TrainingConfig::fast_demo()
    });
    let extractor = trainer.train(&pop.users()[2..], &recorder).expect("train");
    let mut system = MandiPass::new(extractor, PipelineConfig::default());
    let monitor: &'static Monitor = Box::leak(Box::new(Monitor::new(MonitorConfig {
        trace: TraceConfig {
            capacity: THREADS * REQUESTS_PER_THREAD * 2,
            sample_rate: 1.0,
            ..TraceConfig::default()
        },
        ..MonitorConfig::default()
    })));
    system.set_monitor(monitor);
    let user = pop.users()[0].clone();
    let matrix = GaussianMatrix::generate(31, system.embedding_dim());
    let mut service = VerifyService::new(system, VerifyPolicy::default());
    let enrolment: Vec<Recording> = (0..4)
        .map(|s| recorder.record(&user, Condition::Normal, 61_900 + s))
        .collect();
    service
        .enroll(user.id, &enrolment, matrix)
        .expect("enroll fixture user");
    let server = VerifyServer::bind(
        std::sync::Arc::new(service),
        "127.0.0.1:0",
        ServeConfig {
            workers: THREADS,
            ..ServeConfig::default()
        },
    )
    .expect("bind verify server on loopback");
    (server, monitor, user.id, recorder, user)
}

#[test]
fn concurrent_trace_ids_are_unique_echoed_and_recorded() {
    let (mut server, monitor, user_id, recorder, user) = serve_fixture();
    let addr = server.local_addr();

    // Each thread alternates caller-chosen ids with client-minted ones
    // and reports (chosen, echoed) per request.
    let mut per_thread: Vec<Vec<(Option<u64>, Option<u64>)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let recorder = &recorder;
                let user = &user;
                scope.spawn(move || {
                    let mut client = VerifyClient::connect(addr).expect("connect client");
                    (0..REQUESTS_PER_THREAD)
                        .map(|i| {
                            let probe = recorder.record(
                                user,
                                Condition::Normal,
                                62_000 + (t as u64) * 100 + i as u64,
                            );
                            let request = Request::Verify { user_id, probe };
                            let chosen = (i % 2 == 0)
                                .then_some(0xe2e0_0000_0000_0000 | ((t as u64) << 16) | i as u64);
                            let (response, echoed) = client
                                .call_traced(&request, chosen)
                                .unwrap_or_else(|e| panic!("thread {t} request {i}: {e}"));
                            assert!(
                                matches!(response, Response::Decision { .. }),
                                "thread {t} request {i}: expected a decision"
                            );
                            (chosen, echoed)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            per_thread.push(handle.join().expect("client thread panicked"));
        }
    });

    // Every response echoed an id; caller-chosen ids came back verbatim.
    let mut echoed_ids = Vec::new();
    for (t, results) in per_thread.iter().enumerate() {
        for (i, (chosen, echoed)) in results.iter().enumerate() {
            let echoed = echoed
                .unwrap_or_else(|| panic!("thread {t} request {i}: response carried no trace id"));
            if let Some(chosen) = chosen {
                assert_eq!(
                    echoed, *chosen,
                    "thread {t} request {i}: caller-chosen id not echoed verbatim"
                );
            }
            echoed_ids.push(echoed);
        }
    }
    let mut unique = echoed_ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(
        unique.len(),
        echoed_ids.len(),
        "trace ids collided across {} concurrent requests",
        echoed_ids.len()
    );

    // Traces commit just after the response write: wait for the last
    // ones, then hold every echoed id to its recorded trace.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while monitor.traces().len() < echoed_ids.len() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    for &id in &echoed_ids {
        let trace = monitor.find_trace(id).unwrap_or_else(|| {
            panic!(
                "echoed id {} has no recorded trace",
                mandipass_telemetry::format_trace_id(id)
            )
        });
        assert_eq!(trace.trace_id, id);
        assert_eq!(trace.endpoint, "verify");
        assert!(
            trace.stage_nanos() <= trace.total_nanos,
            "trace {}: stages sum past the total",
            mandipass_telemetry::format_trace_id(id)
        );
        assert!(
            !trace.stages.is_empty(),
            "trace committed without a stage breakdown"
        );
    }

    server.shutdown();
}
