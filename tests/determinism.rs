//! Cross-run determinism: the hermetic build ships its own PRNG, so two
//! fresh processes (here: two fresh same-seed constructions) must agree
//! bit for bit. This is what makes the offline CI gate meaningful — a
//! metric regression is a code change, never run-to-run noise.

use mandipass::prelude::*;
use mandipass_bench::{EvalScale, TrainedStack};
use mandipass_imu_sim::{Condition, Population, Recorder};

/// Builds a complete trained system from nothing but seeds, exactly the
/// way a fresh process would.
fn fresh_system() -> (Population, Recorder, MandiPass) {
    let population = Population::generate(8, 4242);
    let recorder = Recorder::default();
    let trainer = VspTrainer::new(TrainingConfig {
        seconds_per_person: 4.0,
        epochs: 6,
        ..TrainingConfig::fast_demo()
    });
    let extractor = trainer
        .train(&population.users()[2..], &recorder)
        .expect("training succeeds");
    let system = MandiPass::new(extractor, PipelineConfig::default());
    (population, recorder, system)
}

#[test]
fn same_seed_recordings_are_bit_identical_across_runs() {
    let pop_a = Population::generate(8, 4242);
    let pop_b = Population::generate(8, 4242);
    let rec_a = Recorder::default();
    let rec_b = Recorder::default();
    for (ua, ub) in pop_a.users().iter().zip(pop_b.users()) {
        let a = rec_a.record(ua, Condition::Normal, 77);
        let b = rec_b.record(ub, Condition::Normal, 77);
        assert_eq!(a.len(), b.len());
        for (axis_a, axis_b) in a.axes().iter().zip(b.axes()) {
            for (va, vb) in axis_a.iter().zip(axis_b) {
                assert_eq!(va.to_bits(), vb.to_bits(), "raw IMU streams diverged");
            }
        }
    }
}

#[test]
fn same_seed_runs_produce_bit_identical_mandibleprints() {
    let (pop_a, rec_a, sys_a) = fresh_system();
    let (pop_b, rec_b, sys_b) = fresh_system();
    for (ua, ub) in pop_a.users().iter().take(3).zip(pop_b.users()) {
        for seed in [11u64, 12, 13] {
            let print_a = sys_a
                .extract_print(&rec_a.record(ua, Condition::Normal, seed))
                .expect("extracts");
            let print_b = sys_b
                .extract_print(&rec_b.record(ub, Condition::Normal, seed))
                .expect("extracts");
            assert_eq!(print_a.dim(), print_b.dim());
            for (va, vb) in print_a.as_slice().iter().zip(print_b.as_slice()) {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "MandiblePrints diverged for user {} seed {seed}",
                    ua.id
                );
            }
        }
    }
}

/// The telemetry integration half of the determinism story: with the
/// logical clock active, two fresh same-seed systems must emit
/// bit-identical verify span trees *and* identical enclave audit trails.
#[test]
fn same_seed_verify_emits_bit_identical_span_tree_and_audit_trail() {
    mandipass_telemetry::set_deterministic(true);
    let run = || {
        let (pop, rec, mut sys) = fresh_system();
        let user = &pop.users()[0];
        let matrix = GaussianMatrix::generate(9, sys.embedding_dim());
        let enrolment: Vec<_> = (0..3)
            .map(|s| rec.record(user, Condition::Normal, 8000 + s))
            .collect();
        sys.enroll(user.id, &enrolment, &matrix).expect("enrols");
        let probe = rec.record(user, Condition::Normal, 8100);
        let (outcome, tree) = mandipass_telemetry::capture(|| sys.verify(user.id, &probe, &matrix));
        outcome.expect("verifies");
        // The tree must cover the whole §III pipeline.
        for stage in [
            "verify",
            "enclave_load",
            "extract_print",
            "preprocess",
            "gradient_array",
            "cnn_forward",
            "template_transform",
            "similarity",
        ] {
            assert!(tree.count(stage) > 0, "span tree misses stage {stage}");
        }
        (tree.to_json().to_json(), sys.enclave().audit_trail())
    };
    let (tree_a, trail_a) = run();
    let (tree_b, trail_b) = run();
    mandipass_telemetry::set_deterministic(false);

    assert_eq!(tree_a, tree_b, "span trees diverged across same-seed runs");
    assert!(!trail_a.is_empty());
    assert_eq!(trail_a.len(), trail_b.len(), "audit trail lengths diverged");
    for (a, b) in trail_a.iter().zip(&trail_b) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.user_id, b.user_id);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(
            a.distance.map(f64::to_bits),
            b.distance.map(f64::to_bits),
            "audit distances diverged"
        );
    }
}

#[test]
fn same_seed_evaluations_land_on_the_same_eer_point() {
    let mut stack_a = TrainedStack::build(EvalScale::smoke_test()).expect("training succeeds");
    let mut stack_b = TrainedStack::build(EvalScale::smoke_test()).expect("training succeeds");
    let eval_a = stack_a.main_evaluation();
    let eval_b = stack_b.main_evaluation();

    assert_eq!(eval_a.scores.genuine.len(), eval_b.scores.genuine.len());
    assert_eq!(eval_a.scores.impostor.len(), eval_b.scores.impostor.len());
    for (a, b) in eval_a.scores.genuine.iter().zip(&eval_b.scores.genuine) {
        assert_eq!(a.to_bits(), b.to_bits(), "genuine score streams diverged");
    }
    for (a, b) in eval_a.scores.impostor.iter().zip(&eval_b.scores.impostor) {
        assert_eq!(a.to_bits(), b.to_bits(), "impostor score streams diverged");
    }
    assert_eq!(
        eval_a.eer_point.eer.to_bits(),
        eval_b.eer_point.eer.to_bits()
    );
    assert_eq!(
        eval_a.eer_point.threshold.to_bits(),
        eval_b.eer_point.threshold.to_bits()
    );
}
