//! Cross-crate robustness and failure-injection tests: the pipeline under
//! every condition generator, degenerate sensors, and hostile inputs.

use mandipass::gradient_array::GradientArray;
use mandipass::prelude::PipelineConfig;
use mandipass::preprocess::preprocess;
use mandipass::MandiPassError;
use mandipass_imu_sim::recorder::SessionJitter;
use mandipass_imu_sim::{Condition, ImuModel, Population, Recorder};

fn cohort() -> (Population, Recorder) {
    (Population::generate(4, 31337), Recorder::default())
}

#[test]
fn every_condition_preprocesses() {
    let (pop, recorder) = cohort();
    let config = PipelineConfig::default();
    let conditions = [
        Condition::Normal,
        Condition::Lollipop,
        Condition::Water,
        Condition::Walk,
        Condition::Run,
        Condition::ToneHigh,
        Condition::ToneLow,
        Condition::Orientation(90),
        Condition::Orientation(180),
        Condition::Orientation(270),
        Condition::LeftEar,
    ];
    for condition in conditions {
        let mut ok = 0;
        for seed in 0..5 {
            let rec = recorder.record(&pop.users()[0], condition, seed);
            if preprocess(&rec, &config).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 4, "{condition}: only {ok}/5 probes preprocessed");
    }
}

#[test]
fn both_imu_parts_work_end_to_end() {
    let (pop, _) = cohort();
    let config = PipelineConfig::default();
    for imu in [ImuModel::mpu9250(), ImuModel::mpu6050()] {
        let recorder = Recorder {
            imu,
            ..Recorder::default()
        };
        let rec = recorder.record(&pop.users()[1], Condition::Normal, 7);
        let arr = preprocess(&rec, &config).expect("preprocesses");
        let grad = GradientArray::from_signal_array(&arr, config.half_n());
        assert_eq!(grad.axes(), 6);
        assert_eq!(grad.half_n(), 30);
        assert!(grad.to_f32().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn spiky_sensor_is_cleaned_by_mad_stage() {
    let (pop, recorder) = cohort();
    let config = PipelineConfig::default();
    let mut imu = recorder.imu.clone();
    imu.outlier_probability = 0.08; // pathological part
    let spiky = Recorder { imu, ..recorder };
    let mut ok = 0;
    for seed in 0..10 {
        let rec = spiky.record(&pop.users()[0], Condition::Normal, seed);
        if let Ok(arr) = preprocess(&rec, &config) {
            ok += 1;
            // After MAD repair, filtering and normalisation, values are
            // bounded by construction.
            for axis in arr.iter() {
                assert!(axis.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }
    assert!(
        ok >= 7,
        "only {ok}/10 spiky recordings survived preprocessing"
    );
}

#[test]
fn silent_recording_yields_typed_detection_error() {
    let (pop, recorder) = cohort();
    let mut user = pop.users()[0].clone();
    user.vocal.force_positive = 1e-9;
    user.vocal.force_negative = 1e-9;
    user.vocal.harmonics = vec![0.0; 6];
    let rec = recorder.record(&user, Condition::Normal, 1);
    let err = preprocess(&rec, &PipelineConfig::default()).unwrap_err();
    assert!(matches!(
        err,
        MandiPassError::Dsp(mandipass_dsp::DspError::VibrationNotFound)
    ));
}

#[test]
fn noise_free_recordings_of_one_user_are_nearly_identical() {
    let (pop, _) = cohort();
    let recorder = Recorder {
        jitter: SessionJitter::none(),
        ..Recorder::default()
    };
    let config = PipelineConfig::default();
    let a = preprocess(
        &recorder.record(&pop.users()[2], Condition::Normal, 1),
        &config,
    )
    .expect("preprocesses");
    let b = preprocess(
        &recorder.record(&pop.users()[2], Condition::Normal, 2),
        &config,
    )
    .expect("preprocesses");
    for (ra, rb) in a.iter().zip(b.iter()) {
        for (x, y) in ra.iter().zip(rb) {
            assert!((x - y).abs() < 1e-9, "noise-free probes differ: {x} vs {y}");
        }
    }
}

#[test]
fn conditioned_arrays_stay_closer_to_own_user_than_to_others() {
    // The raw-feature version of the Figs. 12-14 claims: for each
    // condition, a user's conditioned array is closer (on average) to
    // their own normal arrays than another user's normal arrays are.
    use mandipass::similarity::cosine_distance;
    let (pop, recorder) = cohort();
    let config = PipelineConfig::default();
    let flat = |rec: &mandipass_imu_sim::Recording| -> Option<Vec<f32>> {
        let arr = preprocess(rec, &config).ok()?;
        Some(GradientArray::from_signal_array(&arr, 30).to_f32())
    };
    let user = &pop.users()[0];
    let other = &pop.users()[1];
    let normal: Vec<Vec<f32>> = (0..6)
        .filter_map(|s| flat(&recorder.record(user, Condition::Normal, 100 + s)))
        .collect();
    for condition in [
        Condition::Lollipop,
        Condition::Water,
        Condition::Walk,
        Condition::Run,
    ] {
        let conditioned: Vec<Vec<f32>> = (0..6)
            .filter_map(|s| flat(&recorder.record(user, condition, 200 + s)))
            .collect();
        let foreign: Vec<Vec<f32>> = (0..6)
            .filter_map(|s| flat(&recorder.record(other, Condition::Normal, 300 + s)))
            .collect();
        let mean_to = |set: &[Vec<f32>]| -> f64 {
            let mut total = 0.0;
            let mut n = 0;
            for a in &normal {
                for b in set {
                    total += cosine_distance(a, b);
                    n += 1;
                }
            }
            total / f64::from(n as u32)
        };
        let own = mean_to(&conditioned);
        let imp = mean_to(&foreign);
        assert!(
            own < imp,
            "{condition}: conditioned own {own:.3} !< impostor {imp:.3}"
        );
    }
}

#[test]
fn axis_masked_pipeline_keeps_shape() {
    let (pop, recorder) = cohort();
    for count in 1..=6 {
        let config = PipelineConfig {
            axis_mask: PipelineConfig::axis_mask_first(count),
            ..Default::default()
        };
        let rec = recorder.record(&pop.users()[3], Condition::Normal, 5);
        let arr = preprocess(&rec, &config).expect("preprocesses");
        assert_eq!(
            arr.axis_count(),
            6,
            "masking must not change the array shape"
        );
        let zeroed = (count..6).all(|j| arr.axis(j).iter().all(|&v| v == 0.0));
        assert!(zeroed, "axes beyond {count} must be zeroed");
    }
}
