//! Cross-crate robustness and failure-injection tests: the pipeline under
//! every condition generator, degenerate sensors, and hostile inputs.

use mandipass::gradient_array::GradientArray;
use mandipass::prelude::PipelineConfig;
use mandipass::preprocess::preprocess;
use mandipass::MandiPassError;
use mandipass_imu_sim::recorder::SessionJitter;
use mandipass_imu_sim::{Condition, ImuModel, Population, Recorder};

fn cohort() -> (Population, Recorder) {
    (Population::generate(4, 31337), Recorder::default())
}

#[test]
fn every_condition_preprocesses() {
    let (pop, recorder) = cohort();
    let config = PipelineConfig::default();
    let conditions = [
        Condition::Normal,
        Condition::Lollipop,
        Condition::Water,
        Condition::Walk,
        Condition::Run,
        Condition::ToneHigh,
        Condition::ToneLow,
        Condition::Orientation(90),
        Condition::Orientation(180),
        Condition::Orientation(270),
        Condition::LeftEar,
    ];
    for condition in conditions {
        let mut ok = 0;
        for seed in 0..5 {
            let rec = recorder.record(&pop.users()[0], condition, seed);
            if preprocess(&rec, &config).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 4, "{condition}: only {ok}/5 probes preprocessed");
    }
}

#[test]
fn both_imu_parts_work_end_to_end() {
    let (pop, _) = cohort();
    let config = PipelineConfig::default();
    for imu in [ImuModel::mpu9250(), ImuModel::mpu6050()] {
        let recorder = Recorder {
            imu,
            ..Recorder::default()
        };
        let rec = recorder.record(&pop.users()[1], Condition::Normal, 7);
        let arr = preprocess(&rec, &config).expect("preprocesses");
        let grad = GradientArray::from_signal_array(&arr, config.half_n()).expect("gradients");
        assert_eq!(grad.axes(), 6);
        assert_eq!(grad.half_n(), 30);
        assert!(grad.to_f32().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn spiky_sensor_is_cleaned_by_mad_stage() {
    let (pop, recorder) = cohort();
    let config = PipelineConfig::default();
    let mut imu = recorder.imu.clone();
    imu.outlier_probability = 0.08; // pathological part
    let spiky = Recorder { imu, ..recorder };
    let mut ok = 0;
    for seed in 0..10 {
        let rec = spiky.record(&pop.users()[0], Condition::Normal, seed);
        if let Ok(arr) = preprocess(&rec, &config) {
            ok += 1;
            // After MAD repair, filtering and normalisation, values are
            // bounded by construction.
            for axis in arr.iter() {
                assert!(axis.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }
    assert!(
        ok >= 7,
        "only {ok}/10 spiky recordings survived preprocessing"
    );
}

#[test]
fn silent_recording_yields_typed_detection_error() {
    let (pop, recorder) = cohort();
    let mut user = pop.users()[0].clone();
    user.vocal.force_positive = 1e-9;
    user.vocal.force_negative = 1e-9;
    user.vocal.harmonics = vec![0.0; 6];
    let rec = recorder.record(&user, Condition::Normal, 1);
    let err = preprocess(&rec, &PipelineConfig::default()).unwrap_err();
    assert!(matches!(
        err,
        MandiPassError::Dsp(mandipass_dsp::DspError::VibrationNotFound)
    ));
}

#[test]
fn noise_free_recordings_of_one_user_are_nearly_identical() {
    let (pop, _) = cohort();
    let recorder = Recorder {
        jitter: SessionJitter::none(),
        ..Recorder::default()
    };
    let config = PipelineConfig::default();
    let a = preprocess(
        &recorder.record(&pop.users()[2], Condition::Normal, 1),
        &config,
    )
    .expect("preprocesses");
    let b = preprocess(
        &recorder.record(&pop.users()[2], Condition::Normal, 2),
        &config,
    )
    .expect("preprocesses");
    for (ra, rb) in a.iter().zip(b.iter()) {
        for (x, y) in ra.iter().zip(rb) {
            assert!((x - y).abs() < 1e-9, "noise-free probes differ: {x} vs {y}");
        }
    }
}

#[test]
fn conditioned_arrays_stay_closer_to_own_user_than_to_others() {
    // The raw-feature version of the Figs. 12-14 claims: for each
    // condition, a user's conditioned array is closer (on average) to
    // their own normal arrays than another user's normal arrays are.
    use mandipass::similarity::cosine_distance;
    let (pop, recorder) = cohort();
    let config = PipelineConfig::default();
    let flat = |rec: &mandipass_imu_sim::Recording| -> Option<Vec<f32>> {
        let arr = preprocess(rec, &config).ok()?;
        Some(GradientArray::from_signal_array(&arr, 30).ok()?.to_f32())
    };
    let user = &pop.users()[0];
    let other = &pop.users()[1];
    let normal: Vec<Vec<f32>> = (0..6)
        .filter_map(|s| flat(&recorder.record(user, Condition::Normal, 100 + s)))
        .collect();
    for condition in [
        Condition::Lollipop,
        Condition::Water,
        Condition::Walk,
        Condition::Run,
    ] {
        let conditioned: Vec<Vec<f32>> = (0..6)
            .filter_map(|s| flat(&recorder.record(user, condition, 200 + s)))
            .collect();
        let foreign: Vec<Vec<f32>> = (0..6)
            .filter_map(|s| flat(&recorder.record(other, Condition::Normal, 300 + s)))
            .collect();
        let mean_to = |set: &[Vec<f32>]| -> f64 {
            let mut total = 0.0;
            let mut n = 0;
            for a in &normal {
                for b in set {
                    total += cosine_distance(a, b);
                    n += 1;
                }
            }
            total / f64::from(n as u32)
        };
        let own = mean_to(&conditioned);
        let imp = mean_to(&foreign);
        assert!(
            own < imp,
            "{condition}: conditioned own {own:.3} !< impostor {imp:.3}"
        );
    }
}

#[test]
fn axis_masked_pipeline_keeps_shape() {
    let (pop, recorder) = cohort();
    for count in 1..=6 {
        let config = PipelineConfig {
            axis_mask: PipelineConfig::axis_mask_first(count),
            ..Default::default()
        };
        let rec = recorder.record(&pop.users()[3], Condition::Normal, 5);
        let arr = preprocess(&rec, &config).expect("preprocesses");
        assert_eq!(
            arr.axis_count(),
            6,
            "masking must not change the array shape"
        );
        let zeroed = (count..6).all(|j| arr.axis(j).iter().all(|&v| v == 0.0));
        assert!(zeroed, "axes beyond {count} must be zeroed");
    }
}

/// Shared setup for the fault-injection tests: a fast-demo extractor
/// trained on three users, with the fourth enrolled as the deployed
/// user.
fn enrolled_authenticator() -> (
    mandipass::prelude::MandiPass,
    mandipass_imu_sim::UserProfile,
    mandipass::prelude::GaussianMatrix,
    Recorder,
) {
    use mandipass::prelude::*;
    use mandipass::train::{TrainingConfig, VspTrainer};

    let (pop, recorder) = cohort();
    let trainer = VspTrainer::new(TrainingConfig::fast_demo());
    let extractor = trainer
        .train(&pop.users()[..3], &recorder)
        .expect("fast-demo training succeeds");
    let mut auth = MandiPass::new(extractor, PipelineConfig::default());
    let user = pop.users()[3].clone();
    let matrix = GaussianMatrix::generate(0x0e17, auth.embedding_dim());
    let enrol: Vec<_> = (0..4u64)
        .map(|s| recorder.record(&user, Condition::Normal, 0xe0 ^ s))
        .collect();
    auth.enroll(user.id, &enrol, &matrix).expect("enrolment");
    (auth, user, matrix, recorder)
}

#[test]
fn every_injector_ends_in_decision_or_typed_reject() {
    use mandipass::prelude::*;
    use mandipass_imu_sim::{FaultProfile, FaultyRecorder};

    let (auth, user, matrix, recorder) = enrolled_authenticator();
    let policy = VerifyPolicy::default();
    let profiles = [
        FaultProfile::clean(),
        FaultProfile::dropout(0.9),
        FaultProfile::stuck_gyro(1.0),
        FaultProfile::clipping(1.0),
        FaultProfile::non_finite(0.5),
        FaultProfile::truncate(0.95),
        FaultProfile::gain_drift(2.0),
    ];
    for profile in profiles {
        let name = profile.name.clone();
        let faulty = FaultyRecorder::new(recorder.clone(), profile);
        let probes: Vec<_> = (0..policy.max_attempts as u64)
            .map(|a| faulty.record(&user, Condition::Normal, 0xfa17 ^ (a << 8)))
            .collect();
        // Every injector must end in a decision or a typed rejection —
        // never a panic, never a reasonless error.
        match auth.verify_with_policy(user.id, &probes, &matrix, &policy) {
            Ok(decision) => {
                assert!(
                    (1..=policy.max_attempts).contains(&decision.attempts),
                    "{name}: attempts {} out of range",
                    decision.attempts
                );
            }
            Err(MandiPassError::RetriesExhausted { attempts, reasons }) => {
                assert_eq!(
                    attempts,
                    reasons.len(),
                    "{name}: one reason per attempt, got {reasons:?}"
                );
                assert!(
                    reasons
                        .iter()
                        .all(|r| matches!(r.split_once(':'), Some((_, l)) if !l.is_empty())),
                    "{name}: untyped reject in {reasons:?}"
                );
            }
            Err(e) => panic!("{name}: unexpected error {e}"),
        }
    }
}

#[test]
fn clean_probe_verifies_on_first_attempt() {
    use mandipass::prelude::*;

    let (auth, user, matrix, recorder) = enrolled_authenticator();
    let probe = recorder.record(&user, Condition::Normal, 0xc1ea);
    let decision = auth
        .verify_with_policy(user.id, &[probe], &matrix, &VerifyPolicy::default())
        .expect("clean probe reaches a decision");
    assert_eq!(decision.attempts, 1);
    assert!(!decision.degraded);
    assert!(decision.rejects.is_empty());
    assert!(decision.outcome.accepted, "genuine clean probe rejected");
}

#[test]
fn non_finite_probes_never_silently_accept() {
    use mandipass::prelude::*;
    use mandipass_imu_sim::{FaultProfile, FaultyRecorder};

    let (auth, user, matrix, recorder) = enrolled_authenticator();
    let before = mandipass_telemetry::metrics()
        .counter("quality.reject.non_finite")
        .get();
    let faulty = FaultyRecorder::new(recorder, FaultProfile::non_finite(0.5));
    let probes: Vec<_> = (0..3u64)
        .map(|a| faulty.record(&user, Condition::Normal, 0x4a4 ^ (a << 8)))
        .collect();
    let err = auth
        .verify_with_policy(user.id, &probes, &matrix, &VerifyPolicy::default())
        .expect_err("NaN-laced probes must not verify");
    let MandiPassError::RetriesExhausted { attempts, reasons } = err else {
        panic!("expected RetriesExhausted, got {err}");
    };
    assert_eq!(attempts, 3);
    assert!(
        reasons.iter().all(|r| r.contains("non_finite")),
        "reasons must carry the non_finite label: {reasons:?}"
    );
    // The rejections are visible in the per-reason telemetry counter…
    let after = mandipass_telemetry::metrics()
        .counter("quality.reject.non_finite")
        .get();
    assert!(after >= before + 3, "counter {before} -> {after}");
    // …and in the enclave audit trail, with the same typed reason.
    let audited = auth
        .enclave()
        .audit_events_for(user.id)
        .iter()
        .filter(|e| e.reason == Some("non_finite"))
        .count();
    assert!(audited >= 3, "only {audited} typed audit events");
}

#[test]
fn dead_gyro_falls_back_to_degraded_verification() {
    use mandipass::prelude::*;
    use mandipass_imu_sim::{FaultProfile, FaultyRecorder};

    let (auth, user, matrix, recorder) = enrolled_authenticator();
    let faulty = FaultyRecorder::new(recorder, FaultProfile::stuck_gyro(1.0));
    let probes: Vec<_> = (0..3u64)
        .map(|a| faulty.record(&user, Condition::Normal, 0xde6 ^ (a << 8)))
        .collect();
    let decision = auth
        .verify_with_policy(user.id, &probes, &matrix, &VerifyPolicy::default())
        .expect("gyro-dead probes still reach a decision");
    assert!(decision.degraded, "dead gyro must take the degraded path");
    assert!(
        decision.outcome.accepted,
        "genuine user rejected in degraded mode (distance {:.3} vs {:.3})",
        decision.outcome.distance, decision.outcome.threshold
    );
    // The tightened threshold and the audit record are observable.
    let audit = auth.enclave().audit_events_for(user.id);
    assert!(
        audit
            .iter()
            .any(|e| e.kind == mandipass::prelude::AuditKind::DegradedVerify),
        "no degraded_verify audit event"
    );
}

#[test]
fn truncated_capture_is_rejected_as_too_short() {
    use mandipass::prelude::*;
    use mandipass_imu_sim::{FaultProfile, FaultyRecorder};

    let (auth, user, matrix, recorder) = enrolled_authenticator();
    let faulty = FaultyRecorder::new(recorder, FaultProfile::truncate(0.95));
    let probe = faulty.record(&user, Condition::Normal, 0x7c8);
    let err = auth
        .verify_with_policy(user.id, &[probe], &matrix, &VerifyPolicy::default())
        .expect_err("a 95%-truncated capture must not verify");
    let MandiPassError::RetriesExhausted { reasons, .. } = err else {
        panic!("expected RetriesExhausted, got {err}");
    };
    assert!(
        reasons.iter().any(|r| r.contains("too_short")),
        "expected too_short in {reasons:?}"
    );
}
