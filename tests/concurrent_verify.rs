//! Integration: one enrolled [`MandiPass`] shared read-only across
//! verify threads (the serving layer's deployment model, ISSUE 6).
//!
//! N threads × M verifies against the same instance must produce
//! decisions bit-identical to a serial pass over the same probes, lose
//! nothing from the enclave audit trail (the monotone `audit_seq`
//! advances by exactly the serial pass's per-verify rate), and land
//! every decision in the bound drift monitor. No loom, no mocks — real
//! `std::thread::scope` contention on the real pipeline.

use mandipass::prelude::*;
use mandipass_imu_sim::{Condition, Population, Recorder, Recording};
use mandipass_telemetry::Monitor;

const THREADS: usize = 4;
const VERIFIES: usize = 8;

/// A small trained deployment, one enrolled user, a private monitor.
fn deployment() -> (
    MandiPass,
    &'static Monitor,
    u32,
    GaussianMatrix,
    Vec<Recording>,
) {
    let pop = Population::generate(6, 77);
    let recorder = Recorder::default();
    let trainer = VspTrainer::new(TrainingConfig {
        seconds_per_person: 4.0,
        epochs: 6,
        ..TrainingConfig::fast_demo()
    });
    let extractor = trainer.train(&pop.users()[2..], &recorder).expect("train");
    let mut system = MandiPass::new(extractor, PipelineConfig::default());
    let monitor: &'static Monitor = Box::leak(Box::new(Monitor::default()));
    system.set_monitor(monitor);
    let user = &pop.users()[0];
    let matrix = GaussianMatrix::generate(31, system.embedding_dim());
    let enrolment: Vec<_> = (0..4)
        .map(|s| recorder.record(user, Condition::Normal, 41_900 + s))
        .collect();
    system.enroll(user.id, &enrolment, &matrix).expect("enroll");
    // One distinct probe per (thread, iteration) slot, fixed seeds, so
    // the serial and concurrent passes see the very same inputs.
    let probes: Vec<Recording> = (0..THREADS * VERIFIES)
        .map(|i| recorder.record(user, Condition::Normal, 42_000 + i as u64))
        .collect();
    (system, monitor, user.id, matrix, probes)
}

#[test]
fn concurrent_verifies_match_serial_bit_for_bit() {
    let (system, monitor, user_id, matrix, probes) = deployment();

    // Serial reference pass: the ground-truth decisions and the audit
    // events one verify costs (load + verdict — measured, not assumed).
    let seq_start = system.enclave().audit_seq();
    let serial: Vec<(bool, f64)> = probes
        .iter()
        .map(|p| {
            let outcome = system.verify(user_id, p, &matrix).expect("serial verify");
            (outcome.accepted, outcome.distance)
        })
        .collect();
    let serial_events = system.enclave().audit_seq() - seq_start;
    assert!(serial_events > 0, "verifies must leave an audit trail");
    assert_eq!(
        serial_events % (probes.len() as u64),
        0,
        "audit cost per verify should be uniform on clean probes"
    );
    assert!(
        serial.iter().any(|(accepted, _)| *accepted),
        "genuine probes should mostly verify; none did"
    );

    // Concurrent pass: THREADS workers share `&system`, each re-runs
    // its own slice of the same probes.
    monitor.reset_windows();
    let seq_concurrent_start = system.enclave().audit_seq();
    let mut concurrent: Vec<(bool, f64)> = vec![(false, 0.0); probes.len()];
    std::thread::scope(|scope| {
        for (t, (chunk_probes, chunk_out)) in probes
            .chunks(VERIFIES)
            .zip(concurrent.chunks_mut(VERIFIES))
            .enumerate()
        {
            let system = &system;
            let matrix = &matrix;
            scope.spawn(move || {
                for (probe, out) in chunk_probes.iter().zip(chunk_out) {
                    let outcome = system
                        .verify(user_id, probe, matrix)
                        .unwrap_or_else(|e| panic!("thread {t} verify: {e}"));
                    *out = (outcome.accepted, outcome.distance);
                }
            });
        }
    });

    // Bit-identical decisions: same accept flags AND the exact same
    // distances — concurrency must not perturb the numeric path.
    for (i, (s, c)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(s.0, c.0, "probe {i}: accept flag diverged under threads");
        assert_eq!(
            s.1.to_bits(),
            c.1.to_bits(),
            "probe {i}: distance diverged under threads ({} vs {})",
            s.1,
            c.1
        );
    }

    // No audit loss: the Mutex-serialised trail advanced by exactly the
    // serial pass's rate. The ring may evict old events; `audit_seq` is
    // monotone and counts every one ever admitted.
    let concurrent_events = system.enclave().audit_seq() - seq_concurrent_start;
    assert_eq!(
        concurrent_events, serial_events,
        "concurrent pass lost or duplicated audit events"
    );

    // Every concurrent decision reached the monitor.
    let health = monitor.health();
    assert_eq!(
        health.decisions,
        (THREADS * VERIFIES) as u64,
        "drift monitor missed decisions from concurrent verifies"
    );
}
