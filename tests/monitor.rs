//! Integration: the live-monitoring subsystem end to end, offline and
//! deterministic (ISSUE 5 acceptance).
//!
//! One trained deployment bound to a private [`Monitor`]: clean genuine
//! traffic must read `Healthy`; a gain-drift + dropout fault ramp from
//! `imu-sim` must flip the detector to `Degrading`/`Alarm`; the flight
//! recorder (the `/flight` endpoint's backing store) must retain the
//! rejected probes' structured records; and the Prometheus rendition of
//! the same snapshot must pass the exposition lint — all without a
//! socket, through `Monitor::snapshot`.

use mandipass::prelude::*;
use mandipass_imu_sim::{Condition, FaultProfile, FaultyRecorder, Population, Recorder};
use mandipass_telemetry::{render_prometheus, HealthStatus, Monitor};
use mandipass_util::json::Value;

/// A small trained deployment bound to a fresh private monitor.
fn monitored_system() -> (MandiPass, &'static Monitor, Population, Recorder) {
    let pop = Population::generate(6, 77);
    let recorder = Recorder::default();
    let trainer = VspTrainer::new(TrainingConfig {
        seconds_per_person: 4.0,
        epochs: 6,
        ..TrainingConfig::fast_demo()
    });
    let extractor = trainer.train(&pop.users()[2..], &recorder).expect("train");
    let mut system = MandiPass::new(extractor, PipelineConfig::default());
    let monitor: &'static Monitor = Box::leak(Box::new(Monitor::default()));
    system.set_monitor(monitor);
    (system, monitor, pop, recorder)
}

#[test]
fn monitor_flags_fault_ramp_but_stays_healthy_on_clean_traffic() {
    // The acceptance criterion runs the demo under
    // MANDIPASS_TELEMETRY_DETERMINISTIC=1; the API equivalent:
    mandipass_telemetry::set_deterministic(true);
    let (mut system, monitor, pop, recorder) = monitored_system();
    let user = &pop.users()[0];
    let matrix = GaussianMatrix::generate(31, system.embedding_dim());
    let enrolment: Vec<_> = (0..4)
        .map(|s| recorder.record(user, Condition::Normal, 9000 + s))
        .collect();
    system.enroll(user.id, &enrolment, &matrix).expect("enroll");

    // Calibrate the drift baseline on fresh genuine traffic (enrolment
    // already froze a print-vs-template baseline; re-freezing replaces
    // it with the live-probe distribution, the operational practice).
    let calibration: Vec<f64> = (0..8)
        .map(|s| {
            let probe = recorder.record(user, Condition::Normal, 9100 + s);
            system
                .verify(user.id, &probe, &matrix)
                .expect("calibration verify")
                .distance
        })
        .collect();
    monitor.extend_baseline(&calibration);
    monitor.freeze_baseline();
    monitor.reset_windows();

    // Phase 1 — clean genuine traffic reads Healthy.
    let policy = VerifyPolicy::default();
    for s in 0..12 {
        let probe = recorder.record(user, Condition::Normal, 9200 + s);
        let _ = system.verify_with_policy(user.id, &[probe], &matrix, &policy);
    }
    let clean = monitor.health();
    assert_eq!(
        clean.status,
        HealthStatus::Healthy,
        "clean traffic must be Healthy; signals: {}",
        clean.to_json().to_json()
    );
    assert!(clean.sufficient, "12 decisions exceed min_decisions");

    // Phase 2 — a fresh window under the gain-drift + dropout ramp.
    monitor.reset_windows();
    for (i, &intensity) in [0.5, 0.75, 1.0].iter().enumerate() {
        let faulty =
            FaultyRecorder::new(recorder.clone(), FaultProfile::degradation_ramp(intensity));
        for t in 0..4u64 {
            let seed = 9300 + (i as u64) * 100 + t;
            let probes: Vec<_> = (0..3u64)
                .map(|a| faulty.record(user, Condition::Normal, seed ^ (a << 48)))
                .collect();
            let _ = system.verify_with_policy(user.id, &probes, &matrix, &policy);
        }
    }
    let ramp = monitor.health();
    assert_ne!(
        ramp.status,
        HealthStatus::Healthy,
        "fault ramp must flag Degrading/Alarm; signals: {}",
        ramp.to_json().to_json()
    );
    assert!(
        !ramp.reasons().is_empty(),
        "a non-Healthy verdict names its signals"
    );

    // The flight recorder retained the rejected probes' records.
    let flights = monitor.flights();
    assert!(!flights.is_empty(), "fault ramp must record flights");
    let snapshot = monitor.snapshot();
    let flight_json = snapshot
        .get("flights")
        .and_then(Value::as_array)
        .expect("snapshot.flights");
    assert_eq!(flight_json.len(), flights.len());
    let has_reject = flight_json.iter().any(|f| {
        matches!(
            f.get("outcome").and_then(Value::as_str),
            Some("rejected") | Some("exhausted") | Some("degraded")
        )
    });
    assert!(has_reject, "flight records carry reject outcomes");
    // Rejected policy attempts attach their quality report as detail.
    let has_quality_detail = flight_json
        .iter()
        .any(|f| f.get("detail").and_then(|d| d.get("quality")).is_some());
    assert!(
        has_quality_detail,
        "at least one flight carries a quality report: {}",
        snapshot.to_json()
    );

    // /health's snapshot equivalent matches the typed report.
    assert_eq!(
        snapshot
            .get("health")
            .and_then(|h| h.get("status"))
            .and_then(Value::as_str),
        Some(ramp.status.label())
    );
    mandipass_telemetry::set_deterministic(false);
}

#[test]
fn prometheus_exposition_of_a_live_system_passes_lint() {
    mandipass_telemetry::set_deterministic(true);
    let (mut system, monitor, pop, recorder) = monitored_system();
    let user = &pop.users()[0];
    let matrix = GaussianMatrix::generate(32, system.embedding_dim());
    let enrolment: Vec<_> = (0..4)
        .map(|s| recorder.record(user, Condition::Normal, 9500 + s))
        .collect();
    system.enroll(user.id, &enrolment, &matrix).expect("enroll");
    for s in 0..4 {
        let probe = recorder.record(user, Condition::Normal, 9600 + s);
        let _ = system.verify(user.id, &probe, &matrix);
    }
    let text = render_prometheus(&monitor.snapshot());
    mandipass_telemetry::set_deterministic(false);

    // The CI lint, in-process: every `# TYPE` family is unique and
    // preceded by a non-empty `# HELP` line, and every sample line's
    // family was typed before it.
    let mut helped = std::collections::BTreeSet::new();
    let mut typed = std::collections::BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut words = rest.split_whitespace();
            let name = words.next().unwrap_or("");
            assert!(words.next().is_some(), "empty HELP text for {name}");
            helped.insert(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            assert!(helped.contains(name), "family {name} without # HELP text");
            assert!(
                typed.insert(name.to_string()),
                "duplicate metric family {name}"
            );
        } else if !line.is_empty() {
            let sample = line.split(['{', ' ']).next().unwrap_or("");
            let known = typed.contains(sample)
                || typed.contains(sample.trim_end_matches("_sum"))
                || typed.contains(sample.trim_end_matches("_count"));
            assert!(known, "sample {sample} before its # TYPE line");
        }
    }
    assert!(text.contains("# TYPE mandipass_health_status gauge"));
    assert!(text.contains("mandipass_window_decisions 4"));
    // The enclave audit feed reached the windowed counters.
    assert!(text.contains("mandipass_window_audit_events{kind=\"load\"}"));
}
