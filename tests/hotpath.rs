//! Cross-crate integration tests for the zero-alloc inference fast
//! path: parity between the deployed im2col+GEMM path and the naive
//! tensor-per-layer oracle on a *trained* extractor, batch invariance,
//! conv+BN fusion tolerance, scratch-arena steady state, and
//! equivalence of the batched multi-probe policy walk with direct
//! single-probe verification.

use mandipass::extractor::{arena_stats, reset_arena_growth};
use mandipass::gradient_array::GradientArray;
use mandipass::prelude::*;
use mandipass::preprocess::preprocess;
use mandipass_bench::{EvalScale, TrainedStack};
use mandipass_imu_sim::{Condition, Recording, UserProfile};

fn assert_bitwise(a: &MandiblePrint, b: &MandiblePrint, what: &str) {
    assert_eq!(a.dim(), b.dim(), "{what}: dimensions diverged");
    for (i, (va, vb)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: element {i} diverged");
    }
}

fn grads_for(stack: &TrainedStack, user: &UserProfile, n: u64) -> Vec<GradientArray> {
    let config = PipelineConfig::default();
    (0..n)
        .map(|s| {
            let rec = stack.recorder.record(user, Condition::Normal, 0xf00d ^ s);
            let arr = preprocess(&rec, &config).expect("probe preprocesses");
            GradientArray::from_signal_array(&arr, config.half_n()).expect("probe gradients")
        })
        .collect()
}

#[test]
fn trained_fast_path_matches_naive_oracle_bit_for_bit() {
    let stack = TrainedStack::build(EvalScale::smoke_test()).expect("training succeeds");
    let user = stack.held_out_users()[0].clone();
    let grads = grads_for(&stack, &user, 3);
    let refs: Vec<&GradientArray> = grads.iter().collect();
    let naive = stack
        .extractor
        .extract_naive(&refs)
        .expect("naive extracts");
    let fast = stack
        .extractor
        .extract_prints_batch(&refs)
        .expect("fast extracts");
    assert_eq!(naive.len(), fast.len());
    for (i, (n, f)) in naive.iter().zip(&fast).enumerate() {
        assert_bitwise(n, f, &format!("probe {i} fast vs naive"));
    }
}

#[test]
fn batched_extraction_is_invariant_to_batch_size() {
    let stack = TrainedStack::build(EvalScale::smoke_test()).expect("training succeeds");
    let user = stack.held_out_users()[0].clone();
    let grads = grads_for(&stack, &user, 3);
    let refs: Vec<&GradientArray> = grads.iter().collect();
    let batched = stack
        .extractor
        .extract_prints_batch(&refs)
        .expect("batch extracts");
    for (i, grad) in grads.iter().enumerate() {
        let single = stack
            .extractor
            .extract_prints_batch(&[grad])
            .expect("single extracts");
        assert_bitwise(
            &batched[i],
            &single[0],
            &format!("probe {i} batched vs single"),
        );
    }
}

#[test]
fn fused_deployment_stays_within_tolerance() {
    let stack = TrainedStack::build(EvalScale::smoke_test()).expect("training succeeds");
    let user = stack.held_out_users()[0].clone();
    let grads = grads_for(&stack, &user, 2);
    let refs: Vec<&GradientArray> = grads.iter().collect();
    let naive = stack
        .extractor
        .extract_naive(&refs)
        .expect("naive extracts");

    let mut fused = stack.extractor.clone();
    let folded = fused.fuse().expect("fuses");
    assert!(folded > 0, "a trained paper-config network has BN to fold");
    let prints = fused.extract_prints_batch(&refs).expect("fused extracts");
    for (n, f) in naive.iter().zip(&prints) {
        for (va, vb) in n.as_slice().iter().zip(f.as_slice()) {
            assert!(
                (va - vb).abs() <= 1e-6,
                "fused embedding drifted: {va} vs {vb}"
            );
        }
    }
    // Idempotent: a second fuse finds nothing left to fold.
    assert_eq!(fused.fuse().expect("re-fuses"), 0);
}

#[test]
fn arena_reaches_steady_state_across_extractions() {
    let stack = TrainedStack::build(EvalScale::smoke_test()).expect("training succeeds");
    let user = stack.held_out_users()[0].clone();
    let grads = grads_for(&stack, &user, 2);
    let refs: Vec<&GradientArray> = grads.iter().collect();
    // Two warm-up passes size the pool; after that the arena must stop
    // growing — that is the zero-alloc claim at integration level.
    for _ in 0..2 {
        let _ = stack.extractor.extract_prints_batch(&refs).expect("warms");
    }
    reset_arena_growth();
    for _ in 0..4 {
        let _ = stack
            .extractor
            .extract_prints_batch(&refs)
            .expect("extracts");
    }
    let stats = arena_stats();
    assert_eq!(
        stats.growth_events, 0,
        "arena grew after warm-up: {stats:?}"
    );
    assert!(stats.high_water_bytes > 0);
}

/// The batched policy walk (≥2 quality-ok probes → one [N,…] forward)
/// must reach the exact decision direct single-probe verification
/// reaches: same accept bit, bit-identical distance, same attempt count.
#[test]
fn multi_probe_policy_walk_matches_direct_verification() {
    let stack = TrainedStack::build(EvalScale::smoke_test()).expect("training succeeds");
    let user = stack.population.users()[0].clone();
    let recorder = stack.recorder.clone();
    for threshold in [1.5, 1e-9] {
        // 1.5 accepts any probe (cosine distance < 2), 1e-9 rejects any;
        // both decide on attempt 1, so the two paths must agree bit for
        // bit whichever way the decision goes.
        let config = PipelineConfig {
            threshold,
            ..PipelineConfig::default()
        };
        let mut sys = MandiPass::new(stack.extractor.clone(), config);
        let matrix = GaussianMatrix::generate(7, sys.embedding_dim());
        let enrolment: Vec<Recording> = (0..3u64)
            .map(|s| recorder.record(&user, Condition::Normal, 600 + s))
            .collect();
        sys.enroll(user.id, &enrolment, &matrix).expect("enrols");

        let p1 = recorder.record(&user, Condition::Normal, 901);
        let p2 = recorder.record(&user, Condition::Normal, 902);
        let direct = sys.verify(user.id, &p1, &matrix).expect("verifies");

        let policy = VerifyPolicy::default();
        let multi = sys
            .verify_with_policy(user.id, &[p1.clone(), p2.clone()], &matrix, &policy)
            .expect("decides");
        assert_eq!(multi.attempts, 1, "first quality-ok probe decides");
        assert_eq!(multi.outcome.accepted, direct.accepted);
        assert_eq!(
            multi.outcome.distance.to_bits(),
            direct.distance.to_bits(),
            "batched policy walk diverged from direct verification"
        );
        assert!(multi.rejects.is_empty());
        assert_eq!(multi.outcome.accepted, threshold > 1.0);
    }
}
