//! Cross-crate integration of the Table I comparison: the acoustic
//! baselines measured against the structural properties MandiPass holds
//! by construction.

use mandipass::prelude::*;
use mandipass::similarity::cosine_distance;
use mandipass_baselines::comparison::BaselineBench;

#[test]
fn baselines_fail_where_the_paper_says_they_fail() {
    let bench = BaselineBench {
        users: 8,
        probes_per_user: 8,
        ..BaselineBench::default()
    };
    let skull = bench.measure_skullconduct();
    let earecho = bench.measure_earecho();

    // SkullConduct row: fast registration, but no replay resilience and
    // no acoustic-noise immunity.
    assert!(skull.registration_seconds <= 1.0);
    assert!(!skull.replay_resilient);
    assert!(!skull.noise_immune);

    // EarEcho row: slow registration, no replay resilience, no noise
    // immunity.
    assert!(earecho.registration_seconds > 1.0);
    assert!(!earecho.replay_resilient);
    assert!(!earecho.noise_immune);
}

#[test]
fn mandipass_structural_properties_hold() {
    // RTC: one probe is n / fs seconds — far under the 1 s budget.
    let config = PipelineConfig::default();
    let rtc = config.n as f64 / 350.0;
    assert!(rtc <= 1.0);

    // RARA: a template transformed under a revoked matrix scores far
    // from its replacement.
    let dim = 128;
    let print = MandiblePrint::new((0..dim).map(|i| (i % 7) as f32 / 7.0).collect());
    let old = GaussianMatrix::generate(1, dim)
        .transform(&print)
        .expect("dims match");
    let new = GaussianMatrix::generate(2, dim)
        .transform(&print)
        .expect("dims match");
    assert!(cosine_distance(old.as_slice(), new.as_slice()) > config.threshold);
}

#[test]
fn acoustic_noise_does_not_touch_the_imu_path() {
    // IAN by construction: ambient sound is an acoustic field; the
    // MandiPass probe is an intracorporal vibration recorded by an IMU.
    // The simulator has no coupling term from ambient audio into the IMU
    // axes, mirroring the physical isolation the paper claims, so a
    // recording is bit-identical regardless of any "ambient noise" a
    // test scenario might describe.
    use mandipass_imu_sim::{Condition, Population, Recorder};
    let pop = Population::generate(2, 5);
    let recorder = Recorder::default();
    let a = recorder.record(&pop.users()[0], Condition::Normal, 3);
    let b = recorder.record(&pop.users()[0], Condition::Normal, 3);
    assert_eq!(a, b);
}
