//! The [`Classifier`] trait and shared data plumbing.

/// A labelled classification dataset: flat `f64` feature vectors with
/// dense integer labels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LabelledData {
    /// One feature vector per example, equal lengths.
    pub features: Vec<Vec<f64>>,
    /// One class label per example.
    pub labels: Vec<usize>,
}

impl LabelledData {
    /// Creates a dataset, validating counts and feature lengths.
    ///
    /// # Panics
    ///
    /// Panics on count mismatch or ragged feature vectors.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<usize>) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "one label per feature vector required"
        );
        if let Some(first) = features.first() {
            assert!(
                features.iter().all(|f| f.len() == first.len()),
                "all feature vectors must have equal length"
            );
        }
        LabelledData { features, labels }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes (`max label + 1`).
    pub fn class_count(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }

    /// Feature dimensionality (0 when empty).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Stratified `(train, test)` split: the first `fraction` of each
    /// class's examples (in current order) train, the rest test.
    pub fn split_stratified(&self, fraction: f64) -> (LabelledData, LabelledData) {
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.class_count()];
        for (i, &l) in self.labels.iter().enumerate() {
            per_class[l].push(i);
        }
        let mut train = LabelledData::default();
        let mut test = LabelledData::default();
        for idxs in per_class {
            let cut = ((idxs.len() as f64) * fraction).round() as usize;
            for (k, &i) in idxs.iter().enumerate() {
                let t = if k < cut { &mut train } else { &mut test };
                t.features.push(self.features[i].clone());
                t.labels.push(self.labels[i]);
            }
        }
        (train, test)
    }
}

/// A trainable multi-class classifier.
pub trait Classifier {
    /// Fits the classifier to `data`.
    fn fit(&mut self, data: &LabelledData);

    /// Predicts the class of one feature vector.
    fn predict(&self, features: &[f64]) -> usize;

    /// Short human-readable name (used in the Fig. 7 / Fig. 10(a) rows).
    fn name(&self) -> &'static str;

    /// Accuracy on a labelled set.
    fn accuracy(&self, data: &LabelledData) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(f, &l)| self.predict(f) == l)
            .count();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> LabelledData {
        LabelledData::new(
            (0..10).map(|i| vec![i as f64]).collect(),
            (0..10).map(|i| i % 2).collect(),
        )
    }

    #[test]
    fn counts_and_dims() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.class_count(), 2);
        assert_eq!(d.dim(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn stratified_split_preserves_balance() {
        let (train, test) = toy().split_stratified(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(train.labels.iter().filter(|&&l| l == 1).count(), 4);
    }

    #[test]
    #[should_panic(expected = "one label per feature vector")]
    fn mismatch_panics() {
        let _ = LabelledData::new(vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    fn accuracy_of_constant_predictor() {
        struct Always(usize);
        impl Classifier for Always {
            fn fit(&mut self, _: &LabelledData) {}
            fn predict(&self, _: &[f64]) -> usize {
                self.0
            }
            fn name(&self) -> &'static str {
                "always"
            }
        }
        let d = toy();
        assert_eq!(Always(0).accuracy(&d), 0.5);
        assert_eq!(Always(5).accuracy(&d), 0.0);
        assert_eq!(Always(0).accuracy(&LabelledData::default()), 0.0);
    }
}
