//! Linear support vector machine, one-vs-rest, trained by hinge-loss SGD
//! with L2 regularisation (Pegasos-style).

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::seq::SliceRandom;
use mandipass_util::rand::SeedableRng;

use crate::common::{Classifier, LabelledData};

/// A multi-class linear SVM (one binary SVM per class, highest margin
/// wins).
#[derive(Debug, Clone)]
pub struct LinearSvm {
    epochs: usize,
    lambda: f64,
    seed: u64,
    // One (weights, bias) pair per class.
    models: Vec<(Vec<f64>, f64)>,
    // Feature standardisation fitted on the training set.
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl LinearSvm {
    /// Creates an SVM with sensible defaults (30 epochs, λ = 1e-3).
    pub fn new() -> Self {
        Self::with_params(30, 1e-3, 17)
    }

    /// Creates an SVM with explicit epochs, regularisation, and shuffle
    /// seed.
    pub fn with_params(epochs: usize, lambda: f64, seed: u64) -> Self {
        LinearSvm {
            epochs,
            lambda,
            seed,
            models: Vec::new(),
            mean: Vec::new(),
            std: Vec::new(),
        }
    }

    fn standardise(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .enumerate()
            .map(|(j, &x)| (x - self.mean[j]) / self.std[j])
            .collect()
    }

    fn margin(&self, class: usize, x: &[f64]) -> f64 {
        let (w, b) = &self.models[class];
        w.iter().zip(x).map(|(wv, xv)| wv * xv).sum::<f64>() + b
    }
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &LabelledData) {
        let dim = data.dim();
        let classes = data.class_count();
        // Standardisation statistics.
        self.mean = vec![0.0; dim];
        self.std = vec![0.0; dim];
        for f in &data.features {
            for (j, &x) in f.iter().enumerate() {
                self.mean[j] += x;
            }
        }
        for m in &mut self.mean {
            *m /= data.len().max(1) as f64;
        }
        for f in &data.features {
            for (j, &x) in f.iter().enumerate() {
                self.std[j] += (x - self.mean[j]) * (x - self.mean[j]);
            }
        }
        for s in &mut self.std {
            *s = (*s / data.len().max(1) as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        let standardised: Vec<Vec<f64>> =
            data.features.iter().map(|f| self.standardise(f)).collect();

        self.models = vec![(vec![0.0; dim], 0.0); classes];
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut t = 0u64;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (self.lambda * t as f64);
                let x = &standardised[i];
                for (c, model) in self.models.iter_mut().enumerate() {
                    let y = if data.labels[i] == c { 1.0 } else { -1.0 };
                    let (w, b) = model;
                    let margin = y * (w.iter().zip(x).map(|(wv, xv)| wv * xv).sum::<f64>() + *b);
                    // L2 shrink.
                    let shrink = 1.0 - eta * self.lambda;
                    for wv in w.iter_mut() {
                        *wv *= shrink;
                    }
                    if margin < 1.0 {
                        for (wv, xv) in w.iter_mut().zip(x) {
                            *wv += eta * y * xv;
                        }
                        *b += eta * y;
                    }
                }
            }
        }
    }

    fn predict(&self, features: &[f64]) -> usize {
        if self.models.is_empty() {
            return 0;
        }
        let x = self.standardise(features);
        (0..self.models.len())
            .max_by(|&a, &b| {
                self.margin(a, &x)
                    .partial_cmp(&self.margin(b, &x))
                    .expect("margins are finite")
            })
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let a = (i as f64 * 2.399).sin() * spread;
                let b = (i as f64 * 1.711).cos() * spread;
                vec![center.0 + a, center.1 + b]
            })
            .collect()
    }

    fn three_blobs() -> LabelledData {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for (c, center) in [(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)].iter().enumerate() {
            for f in blob(*center, 20, 0.8) {
                features.push(f);
                labels.push(c);
            }
        }
        LabelledData::new(features, labels)
    }

    #[test]
    fn separable_blobs_classify_well() {
        let mut svm = LinearSvm::new();
        let data = three_blobs();
        svm.fit(&data);
        assert!(
            svm.accuracy(&data) > 0.95,
            "accuracy {}",
            svm.accuracy(&data)
        );
    }

    #[test]
    fn prediction_is_deterministic_after_fit() {
        let mut svm = LinearSvm::new();
        let data = three_blobs();
        svm.fit(&data);
        assert_eq!(svm.predict(&[6.0, 0.2]), svm.predict(&[6.0, 0.2]));
        assert_eq!(svm.predict(&[6.0, 0.2]), 1);
    }

    #[test]
    fn constant_feature_does_not_break_standardisation() {
        let data = LabelledData::new(
            vec![
                vec![1.0, 0.0],
                vec![1.0, 1.0],
                vec![1.0, 0.1],
                vec![1.0, 0.9],
            ],
            vec![0, 1, 0, 1],
        );
        let mut svm = LinearSvm::with_params(50, 1e-3, 3);
        svm.fit(&data);
        assert!(svm.accuracy(&data) >= 0.75);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let svm = LinearSvm::new();
        assert_eq!(svm.predict(&[]), 0);
    }
}
