//! Gaussian naive Bayes classifier.

use crate::common::{Classifier, LabelledData};

/// Naive Bayes with per-class, per-feature Gaussian likelihoods.
#[derive(Debug, Clone, Default)]
pub struct GaussianNaiveBayes {
    // Per class: prior log-probability, per-feature (mean, variance).
    classes: Vec<ClassModel>,
}

#[derive(Debug, Clone)]
struct ClassModel {
    log_prior: f64,
    mean: Vec<f64>,
    var: Vec<f64>,
}

/// Variance floor preventing degenerate zero-width Gaussians.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNaiveBayes {
    /// Creates an unfitted classifier.
    pub fn new() -> Self {
        Self::default()
    }

    fn log_likelihood(&self, model: &ClassModel, x: &[f64]) -> f64 {
        let mut ll = model.log_prior;
        for (j, &xv) in x.iter().enumerate() {
            let var = model.var[j];
            let d = xv - model.mean[j];
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
        }
        ll
    }
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, data: &LabelledData) {
        let classes = data.class_count();
        let dim = data.dim();
        self.classes = Vec::with_capacity(classes);
        for c in 0..classes {
            let members: Vec<&Vec<f64>> = data
                .features
                .iter()
                .zip(&data.labels)
                .filter(|&(_, &l)| l == c)
                .map(|(f, _)| f)
                .collect();
            let n = members.len().max(1) as f64;
            let mut mean = vec![0.0; dim];
            for f in &members {
                for (j, &x) in f.iter().enumerate() {
                    mean[j] += x;
                }
            }
            for m in &mut mean {
                *m /= n;
            }
            let mut var = vec![0.0; dim];
            for f in &members {
                for (j, &x) in f.iter().enumerate() {
                    var[j] += (x - mean[j]) * (x - mean[j]);
                }
            }
            for v in &mut var {
                *v = (*v / n).max(VAR_FLOOR);
            }
            let prior = members.len() as f64 / data.len().max(1) as f64;
            self.classes.push(ClassModel {
                log_prior: prior.max(1e-12).ln(),
                mean,
                var,
            });
        }
    }

    fn predict(&self, features: &[f64]) -> usize {
        if self.classes.is_empty() {
            return 0;
        }
        (0..self.classes.len())
            .max_by(|&a, &b| {
                self.log_likelihood(&self.classes[a], features)
                    .partial_cmp(&self.log_likelihood(&self.classes[b], features))
                    .expect("log likelihoods are finite")
            })
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "NB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_blobs() -> LabelledData {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let jitter = (i as f64 * 0.77).sin();
            features.push(vec![0.0 + jitter * 0.5, 0.0 - jitter * 0.3]);
            labels.push(0);
            features.push(vec![4.0 + jitter * 0.5, 4.0 + jitter * 0.3]);
            labels.push(1);
        }
        LabelledData::new(features, labels)
    }

    #[test]
    fn separable_gaussians_classify_perfectly() {
        let mut nb = GaussianNaiveBayes::new();
        let data = gaussian_blobs();
        nb.fit(&data);
        assert_eq!(nb.accuracy(&data), 1.0);
    }

    #[test]
    fn prior_breaks_ties_for_ambiguous_points() {
        // Class 0 has 3× the examples; a point equidistant between the
        // class means should go to the larger class.
        let data = LabelledData::new(
            vec![vec![0.0], vec![0.2], vec![-0.2], vec![2.0]],
            vec![0, 0, 0, 1],
        );
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&data);
        assert_eq!(nb.predict(&[1.0]), 0);
    }

    #[test]
    fn zero_variance_feature_is_floored_not_nan() {
        let data = LabelledData::new(
            vec![
                vec![1.0, 0.0],
                vec![1.0, 1.0],
                vec![1.0, 0.1],
                vec![1.0, 0.9],
            ],
            vec![0, 1, 0, 1],
        );
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&data);
        let pred = nb.predict(&[1.0, 0.05]);
        assert_eq!(pred, 0);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let nb = GaussianNaiveBayes::new();
        assert_eq!(nb.predict(&[1.0]), 0);
    }

    #[test]
    fn missing_class_members_do_not_panic() {
        // Labels 0 and 2 exist, label 1 has no members.
        let data = LabelledData::new(vec![vec![0.0], vec![5.0]], vec![0, 2]);
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&data);
        assert_eq!(nb.predict(&[0.1]), 0);
        assert_eq!(nb.predict(&[4.9]), 2);
    }
}
