//! Classic classifiers used as feature-quality baselines.
//!
//! The paper benchmarks its deep biometric extractor against support
//! vector machines, k-nearest neighbours, decision trees, naive Bayes and
//! a shallow neural network — first on statistical features (Fig. 7,
//! all below 65 % accuracy) and then on gradient arrays (Fig. 10(a),
//! where the two-branch CNN wins at 90.54 %). This crate implements those
//! five classifiers from scratch behind one [`Classifier`] trait.

pub mod bayes;
pub mod common;
pub mod knn;
pub mod mlp;
pub mod svm;
pub mod tree;

pub use bayes::GaussianNaiveBayes;
pub use common::{Classifier, LabelledData};
pub use knn::KNearestNeighbors;
pub use mlp::MlpClassifier;
pub use svm::LinearSvm;
pub use tree::DecisionTree;
