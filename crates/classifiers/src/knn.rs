//! k-nearest-neighbours classifier (Euclidean distance, majority vote).

use crate::common::{Classifier, LabelledData};

/// A k-NN classifier that memorises the training set.
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    k: usize,
    data: LabelledData,
}

impl KNearestNeighbors {
    /// Creates a k-NN classifier with the given neighbourhood size.
    ///
    /// # Panics
    ///
    /// Panics when `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KNearestNeighbors {
            k,
            data: LabelledData::default(),
        }
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for KNearestNeighbors {
    fn fit(&mut self, data: &LabelledData) {
        self.data = data.clone();
    }

    fn predict(&self, features: &[f64]) -> usize {
        if self.data.is_empty() {
            return 0;
        }
        let mut scored: Vec<(f64, usize)> = self
            .data
            .features
            .iter()
            .zip(&self.data.labels)
            .map(|(f, &l)| (squared_distance(f, features), l))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        let mut votes = vec![0usize; self.data.class_count()];
        for &(_, l) in scored.iter().take(self.k) {
            votes[l] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters() -> LabelledData {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..5 {
            features.push(vec![0.0 + 0.1 * i as f64, 0.0]);
            labels.push(0);
            features.push(vec![5.0 + 0.1 * i as f64, 5.0]);
            labels.push(1);
        }
        LabelledData::new(features, labels)
    }

    #[test]
    fn separable_clusters_classify_perfectly() {
        let mut knn = KNearestNeighbors::new(3);
        let data = two_clusters();
        knn.fit(&data);
        assert_eq!(knn.accuracy(&data), 1.0);
        assert_eq!(knn.predict(&[0.2, 0.1]), 0);
        assert_eq!(knn.predict(&[5.2, 4.9]), 1);
    }

    #[test]
    fn k_one_matches_nearest_sample() {
        let mut knn = KNearestNeighbors::new(1);
        let data = LabelledData::new(vec![vec![0.0], vec![10.0]], vec![0, 1]);
        knn.fit(&data);
        assert_eq!(knn.predict(&[2.0]), 0);
        assert_eq!(knn.predict(&[8.0]), 1);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let knn = KNearestNeighbors::new(3);
        assert_eq!(knn.predict(&[1.0]), 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = KNearestNeighbors::new(0);
    }

    #[test]
    fn majority_vote_resists_single_outlier() {
        // Two class-0 points near the query outvote one class-1 point on it.
        let data = LabelledData::new(vec![vec![0.0], vec![0.2], vec![0.1]], vec![0, 0, 1]);
        let mut knn = KNearestNeighbors::new(3);
        knn.fit(&data);
        assert_eq!(knn.predict(&[0.1]), 0);
    }
}
