//! CART decision tree with Gini-impurity splits.

use crate::common::{Classifier, LabelledData};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART-style decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples: usize,
    root: Option<Node>,
}

impl DecisionTree {
    /// Creates a tree with default limits (depth 10, min 2 samples).
    pub fn new() -> Self {
        Self::with_limits(10, 2)
    }

    /// Creates a tree with explicit depth and leaf-size limits.
    ///
    /// # Panics
    ///
    /// Panics when `max_depth` is zero.
    pub fn with_limits(max_depth: usize, min_samples: usize) -> Self {
        assert!(max_depth > 0, "max depth must be positive");
        DecisionTree {
            max_depth,
            min_samples: min_samples.max(1),
            root: None,
        }
    }

    /// The depth of the fitted tree (0 when unfitted).
    pub fn depth(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + walk(left).max(walk(right)),
            }
        }
        self.root.as_ref().map_or(0, walk)
    }
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new()
    }
}

fn gini(labels: &[usize], indices: &[usize], classes: usize) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let mut counts = vec![0usize; classes];
    for &i in indices {
        counts[labels[i]] += 1;
    }
    let n = indices.len() as f64;
    1.0 - counts
        .iter()
        .map(|&c| (c as f64 / n) * (c as f64 / n))
        .sum::<f64>()
}

fn majority(labels: &[usize], indices: &[usize], classes: usize) -> usize {
    let mut counts = vec![0usize; classes];
    for &i in indices {
        counts[labels[i]] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(c, _)| c)
        .unwrap_or(0)
}

fn build(
    data: &LabelledData,
    indices: &[usize],
    depth: usize,
    max_depth: usize,
    min_samples: usize,
    classes: usize,
) -> Node {
    let current_gini = gini(&data.labels, indices, classes);
    if depth >= max_depth || indices.len() < 2 * min_samples || current_gini == 0.0 {
        return Node::Leaf {
            class: majority(&data.labels, indices, classes),
        };
    }
    let n = indices.len() as f64;
    let mut best: Option<(f64, usize, f64)> = None; // (weighted gini, feature, threshold)
    for feature in 0..data.dim() {
        // Candidate thresholds: midpoints between sorted distinct values.
        let mut values: Vec<f64> = indices.iter().map(|&i| data.features[i][feature]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("features are finite"));
        values.dedup();
        for w in values.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (left, right): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| data.features[i][feature] <= threshold);
            if left.len() < min_samples || right.len() < min_samples {
                continue;
            }
            let weighted = gini(&data.labels, &left, classes) * left.len() as f64 / n
                + gini(&data.labels, &right, classes) * right.len() as f64 / n;
            if best.as_ref().is_none_or(|b| weighted < b.0) {
                best = Some((weighted, feature, threshold));
            }
        }
    }
    // Zero-gain splits are allowed (weighted == current impurity): XOR-like
    // concepts have no first-split Gini gain, yet become separable one
    // level down; the depth limit bounds the recursion.
    match best {
        Some((weighted, feature, threshold)) if weighted <= current_gini + 1e-12 => {
            let (left, right): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| data.features[i][feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(
                    data,
                    &left,
                    depth + 1,
                    max_depth,
                    min_samples,
                    classes,
                )),
                right: Box::new(build(
                    data,
                    &right,
                    depth + 1,
                    max_depth,
                    min_samples,
                    classes,
                )),
            }
        }
        _ => Node::Leaf {
            class: majority(&data.labels, indices, classes),
        },
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &LabelledData) {
        if data.is_empty() {
            self.root = None;
            return;
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        self.root = Some(build(
            data,
            &indices,
            0,
            self.max_depth,
            self.min_samples,
            data.class_count(),
        ));
    }

    fn predict(&self, features: &[f64]) -> usize {
        let mut node = match &self.root {
            Some(n) => n,
            None => return 0,
        };
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_axis_aligned_split() {
        let data = LabelledData::new(
            vec![
                vec![0.0],
                vec![1.0],
                vec![2.0],
                vec![10.0],
                vec![11.0],
                vec![12.0],
            ],
            vec![0, 0, 0, 1, 1, 1],
        );
        let mut tree = DecisionTree::new();
        tree.fit(&data);
        assert_eq!(tree.accuracy(&data), 1.0);
        assert_eq!(tree.predict(&[1.5]), 0);
        assert_eq!(tree.predict(&[11.5]), 1);
    }

    #[test]
    fn learns_two_feature_xor_with_depth() {
        // XOR needs two levels of splits.
        let data = LabelledData::new(
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
                vec![0.1, 0.1],
                vec![0.1, 0.9],
                vec![0.9, 0.1],
                vec![0.9, 0.9],
            ],
            vec![0, 1, 1, 0, 0, 1, 1, 0],
        );
        let mut tree = DecisionTree::with_limits(8, 1);
        tree.fit(&data);
        assert_eq!(tree.accuracy(&data), 1.0);
        assert!(tree.depth() >= 3);
    }

    #[test]
    fn depth_limit_is_respected() {
        let data = LabelledData::new(
            (0..32).map(|i| vec![i as f64]).collect(),
            (0..32).map(|i| i % 4).collect(),
        );
        let mut tree = DecisionTree::with_limits(2, 1);
        tree.fit(&data);
        assert!(tree.depth() <= 3); // root + 2 levels
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let data = LabelledData::new(vec![vec![1.0], vec![2.0]], vec![0, 0]);
        let mut tree = DecisionTree::new();
        tree.fit(&data);
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.predict(&[5.0]), 0);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let tree = DecisionTree::new();
        assert_eq!(tree.predict(&[0.5]), 0);
    }

    #[test]
    fn empty_fit_resets() {
        let mut tree = DecisionTree::new();
        tree.fit(&LabelledData::default());
        assert_eq!(tree.depth(), 0);
    }
}
