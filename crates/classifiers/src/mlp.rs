//! A shallow multi-layer perceptron — the "NN" baseline of Figs. 7 and
//! 10(a), trained on the `mandipass-nn` substrate.
//!
//! After training, the weights are snapshotted into plain matrices so
//! that [`Classifier::predict`] is a pure function of `&self`.

use mandipass_nn::data::Dataset;
use mandipass_nn::layer::Layer;
use mandipass_nn::loss::cross_entropy;
use mandipass_nn::optim::{Adam, Optimizer};
use mandipass_nn::prelude::{Linear, ReLU, Sequential};
use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::SeedableRng;

use crate::common::{Classifier, LabelledData};

/// A one-hidden-layer MLP classifier (Linear → ReLU → Linear).
#[derive(Debug)]
pub struct MlpClassifier {
    hidden: usize,
    epochs: usize,
    learning_rate: f32,
    seed: u64,
    snapshot: Option<Snapshot>,
}

/// Trained weights in plain row-major matrices.
#[derive(Debug, Clone)]
struct Snapshot {
    dim: usize,
    hidden: usize,
    classes: usize,
    w1: Vec<f32>, // [hidden, dim]
    b1: Vec<f32>, // [hidden]
    w2: Vec<f32>, // [classes, hidden]
    b2: Vec<f32>, // [classes]
}

impl MlpClassifier {
    /// Creates an MLP with the given hidden width and defaults
    /// (60 epochs, Adam at 1e-2).
    pub fn new(hidden: usize) -> Self {
        Self::with_params(hidden, 60, 1e-2, 23)
    }

    /// Creates an MLP with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics when `hidden` or `epochs` is zero.
    pub fn with_params(hidden: usize, epochs: usize, learning_rate: f32, seed: u64) -> Self {
        assert!(hidden > 0, "hidden width must be positive");
        assert!(epochs > 0, "epochs must be positive");
        MlpClassifier {
            hidden,
            epochs,
            learning_rate,
            seed,
            snapshot: None,
        }
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, data: &LabelledData) {
        if data.is_empty() {
            self.snapshot = None;
            return;
        }
        let dim = data.dim();
        let classes = data.class_count().max(2);
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(dim, self.hidden, self.seed)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(self.hidden, classes, self.seed + 1)),
        ]);
        let mut dataset = Dataset::new(
            data.features
                .iter()
                .map(|f| f.iter().map(|&x| x as f32).collect())
                .collect(),
            data.labels.clone(),
        );
        let mut adam = Adam::new(self.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x006d_6c70);
        let shape = [dim];
        for _ in 0..self.epochs {
            dataset.shuffle(&mut rng);
            for (input, labels) in dataset.batches(32, &shape) {
                net.zero_grad();
                let logits = net.forward(&input, true);
                let (_, grad) = cross_entropy(&logits, &labels);
                net.backward(&grad);
                adam.step(&mut net.params());
            }
        }
        // Snapshot the four parameter tensors (ReLU has none).
        let params = net.params();
        debug_assert_eq!(params.len(), 4);
        self.snapshot = Some(Snapshot {
            dim,
            hidden: self.hidden,
            classes,
            w1: params[0].value.data().to_vec(),
            b1: params[1].value.data().to_vec(),
            w2: params[2].value.data().to_vec(),
            b2: params[3].value.data().to_vec(),
        });
    }

    fn predict(&self, features: &[f64]) -> usize {
        let Some(s) = &self.snapshot else {
            return 0;
        };
        let x: Vec<f32> = features.iter().map(|&v| v as f32).collect();
        // Hidden layer with ReLU.
        let mut h = vec![0.0f32; s.hidden];
        for (j, hv) in h.iter_mut().enumerate() {
            let w = &s.w1[j * s.dim..(j + 1) * s.dim];
            let z: f32 = w.iter().zip(&x).map(|(a, b)| a * b).sum::<f32>() + s.b1[j];
            *hv = z.max(0.0);
        }
        // Output logits; arg-max wins.
        let mut best = (0usize, f32::MIN);
        for c in 0..s.classes {
            let w = &s.w2[c * s.hidden..(c + 1) * s.hidden];
            let z: f32 = w.iter().zip(&h).map(|(a, b)| a * b).sum::<f32>() + s.b2[c];
            if z > best.1 {
                best = (c, z);
            }
        }
        best.0
    }

    fn name(&self) -> &'static str {
        "NN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rings() -> LabelledData {
        // Radially separable data an MLP can fit but a linear model cannot.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let angle = i as f64 * 0.157;
            features.push(vec![0.3 * angle.cos(), 0.3 * angle.sin()]);
            labels.push(0);
            features.push(vec![2.0 * angle.cos(), 2.0 * angle.sin()]);
            labels.push(1);
        }
        LabelledData::new(features, labels)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let mut mlp = MlpClassifier::with_params(16, 80, 2e-2, 5);
        let data = rings();
        mlp.fit(&data);
        assert!(
            mlp.accuracy(&data) > 0.95,
            "accuracy {}",
            mlp.accuracy(&data)
        );
    }

    #[test]
    fn snapshot_predict_matches_training_data() {
        let data = LabelledData::new(
            vec![
                vec![0.0, 0.0],
                vec![5.0, 5.0],
                vec![0.2, 0.1],
                vec![4.8, 5.1],
            ],
            vec![0, 1, 0, 1],
        );
        let mut mlp = MlpClassifier::with_params(8, 60, 2e-2, 9);
        mlp.fit(&data);
        assert_eq!(mlp.predict(&[0.1, 0.0]), 0);
        assert_eq!(mlp.predict(&[5.0, 4.9]), 1);
    }

    #[test]
    fn unfitted_predicts_zero() {
        let mlp = MlpClassifier::new(4);
        assert_eq!(mlp.predict(&[1.0, 2.0]), 0);
    }

    #[test]
    fn empty_fit_resets_snapshot() {
        let mut mlp = MlpClassifier::new(4);
        mlp.fit(&LabelledData::default());
        assert_eq!(mlp.predict(&[0.0]), 0);
    }

    #[test]
    #[should_panic(expected = "hidden width")]
    fn zero_hidden_panics() {
        let _ = MlpClassifier::new(0);
    }
}
