//! Continuous distributions over [`crate::rand::Rng`], API-compatible with
//! the subset of the `rand_distr` crate this workspace used.

use crate::rand::Rng;

/// Types that can draw samples of `T` from a random source.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistributionError {
    reason: &'static str,
}

impl std::fmt::Display for DistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.reason)
    }
}

impl std::error::Error for DistributionError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`, sampled with
/// the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// # Errors
    ///
    /// Returns an error when either parameter is non-finite or `std_dev`
    /// is negative (`std_dev = 0` is allowed and degenerates to `mean`).
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, DistributionError> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(DistributionError {
                reason: "normal parameters must be finite",
            });
        }
        if std_dev < 0.0 {
            return Err(DistributionError {
                reason: "standard deviation must be non-negative",
            });
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: nudge u1 away from 0 so ln stays finite.
        let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// The continuous uniform distribution over an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    span: f64,
}

impl Uniform {
    /// Uniform over the half-open interval `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics when `low >= high`.
    pub fn new(low: f64, high: f64) -> Uniform {
        assert!(
            low < high,
            "uniform requires low < high, got [{low}, {high})"
        );
        Uniform {
            low,
            span: high - low,
        }
    }

    /// Uniform over the closed interval `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics when `low > high`.
    pub fn new_inclusive(low: f64, high: f64) -> Uniform {
        assert!(
            low <= high,
            "uniform requires low <= high, got [{low}, {high}]"
        );
        // With 53-bit samples in [0, 1) the closed upper bound is reached
        // only up to rounding; that matches rand_distr's float behaviour.
        Uniform {
            low,
            span: high - low,
        }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + self.span * rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::rngs::StdRng;
    use crate::rand::SeedableRng;

    #[test]
    fn normal_moments_match_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn zero_std_collapses_to_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Normal::new(1.5, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 1.5);
        }
    }

    #[test]
    fn invalid_normal_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new_inclusive(-2.0, 2.0);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((-2.0..=2.0).contains(&v));
            sum += v;
        }
        assert!((sum / n as f64).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "uniform requires low < high")]
    fn empty_uniform_panics() {
        let _ = Uniform::new(1.0, 1.0);
    }

    #[test]
    fn normal_is_deterministic_per_seed() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let va: Vec<f64> = (0..16).map(|_| d.sample(&mut a)).collect();
        let vb: Vec<f64> = (0..16).map(|_| d.sample(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
