//! Zero-dependency in-tree utilities for the MandiPass workspace.
//!
//! The reproduction targets an on-earphone deployment and must build and
//! test hermetically — no network, no crates.io. This crate replaces
//! every external dependency the workspace previously pulled in:
//!
//! | module        | replaces                | provides |
//! |---------------|-------------------------|----------|
//! | [`rand`]      | `rand`                  | xoshiro256++ `StdRng`, `Rng`, `SeedableRng`, `seq::SliceRandom` |
//! | [`rand_distr`]| `rand_distr`            | `Normal` (Box–Muller), `Uniform`, `Distribution` |
//! | [`json`]      | `serde_json`            | JSON value, writer, parser |
//! | [`bytebuf`]   | `bytes`                 | little-endian `ByteWriter` / `ByteReader` |
//! | [`bench`]     | `criterion`             | `Criterion`, `criterion_group!`, `criterion_main!` |
//! | [`proptest`]  | `proptest`              | deterministic `proptest!` macro and strategies |
//!
//! The `rand`/`rand_distr` modules keep the upstream call-site spelling
//! (`StdRng::seed_from_u64`, `rng.gen_range(..)`, `Normal::new(..)`) so
//! swapping `use rand::…` for `use mandipass_util::rand::…` is the whole
//! migration. All generators are fully deterministic per seed — identical
//! across runs, platforms, and compilers — which the workspace's
//! cross-run reproducibility tests rely on.

pub mod bench;
pub mod bytebuf;
pub mod json;
pub mod proptest;
pub mod rand;
pub mod rand_distr;
