//! A tiny criterion-compatible benchmark harness.
//!
//! Supports the subset of the `criterion` API the workspace benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (bench targets are built with
//! `harness = false`).
//!
//! Each benchmark warms up briefly, picks an iteration count that fills
//! the per-sample time budget, then reports min/mean/max nanoseconds per
//! iteration over several samples. The budget defaults to 100 ms per
//! sample and can be tuned with `MANDIPASS_BENCH_MS`. Passing substring
//! filters on the command line (as `cargo bench -- <filter>` does) skips
//! non-matching benchmarks.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Hint for how expensive `iter_batched` setup values are. The harness
/// regenerates the input every iteration regardless, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Cheap inputs.
    SmallInput,
    /// Expensive inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Measured statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Iterations per sample.
    pub iters: u64,
}

/// The benchmark runner handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    sample_budget: Duration,
    samples: u32,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("MANDIPASS_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(100);
        // cargo bench forwards trailing arguments; treat non-flag words as
        // name filters, mirroring criterion's CLI.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            sample_budget: Duration::from_millis(ms.max(1)),
            samples: 5,
            filters,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|w| name.contains(w.as_str())) {
            return self;
        }
        let mut b = Bencher {
            sample_budget: self.sample_budget,
            samples: self.samples,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(s) => println!(
                "bench {name:<36} {:>12}/iter  (min {}, max {}, {} iters × {} samples)",
                format_ns(s.mean_ns),
                format_ns(s.min_ns),
                format_ns(s.max_ns),
                s.iters,
                self.samples,
            ),
            None => println!("bench {name:<36} (no measurement: closure never called iter)"),
        }
        self
    }
}

/// Timing driver passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_budget: Duration,
    samples: u32,
    result: Option<Sample>,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.run(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            total
        });
    }

    fn run<M>(&mut self, mut measure: M)
    where
        M: FnMut(u64) -> Duration,
    {
        // Warm-up: grow the iteration count until one batch is long enough
        // to time reliably, or the batch already blows the budget.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let elapsed = measure(iters);
            if elapsed >= Duration::from_millis(1) || elapsed > self.sample_budget {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters = iters.saturating_mul(4);
        };
        let budget_ns = self.sample_budget.as_nanos() as f64;
        let iters = ((budget_ns / per_iter.max(1.0)) as u64).clamp(1, 10_000_000);

        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        let mut sum = 0.0;
        for _ in 0..self.samples {
            let ns = measure(iters).as_nanos() as f64 / iters as f64;
            min = min.min(ns);
            max = max.max(ns);
            sum += ns;
        }
        self.result = Some(Sample {
            min_ns: min,
            mean_ns: sum / f64::from(self.samples),
            max_ns: max,
            iters,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a bench group function, criterion-style: a function running
/// every listed target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` of a `harness = false` bench binary, running every
/// listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_a_sane_measurement() {
        let mut b = Bencher {
            sample_budget: Duration::from_millis(2),
            samples: 2,
            result: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        let s = b.result.expect("measured");
        assert!(s.min_ns > 0.0 && s.min_ns <= s.mean_ns && s.mean_ns <= s.max_ns);
        assert!(s.iters >= 1);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            sample_budget: Duration::from_millis(2),
            samples: 2,
            result: None,
        };
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.result.is_some());
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2.3e9).ends_with(" s"));
    }
}
