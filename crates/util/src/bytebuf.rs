//! Little-endian byte-buffer writer/reader for binary model blobs.
//!
//! Replaces the `bytes` crate for `mandipass-nn`'s parameter
//! (de)serialisation: an append-only writer over `Vec<u8>` and a cursor
//! reader over `&[u8]`. Reads follow the `bytes::Buf` contract — callers
//! check [`ByteReader::remaining`] before each get, and an underflowing
//! get panics.

/// An append-only little-endian byte writer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32`, little-endian.
    pub fn put_f32_le(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the blob.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// A little-endian cursor over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    rest: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at the start of `blob`.
    pub fn new(blob: &'a [u8]) -> Self {
        ByteReader { rest: blob }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Whether any bytes remain.
    pub fn has_remaining(&self) -> bool {
        !self.rest.is_empty()
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 4 bytes remain.
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 4 bytes remain.
    pub fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(
            n <= self.rest.len(),
            "byte reader underflow: want {n}, have {}",
            self.rest.len()
        );
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_fields() {
        let mut w = ByteWriter::new();
        w.put_u32_le(0x4d50_4e4e);
        w.put_slice(b"name");
        w.put_f32_le(-1.25);
        w.put_u32_le(7);
        let blob = w.into_vec();
        assert_eq!(blob.len(), 4 + 4 + 4 + 4);

        let mut r = ByteReader::new(&blob);
        assert_eq!(r.remaining(), 16);
        assert_eq!(r.get_u32_le(), 0x4d50_4e4e);
        assert_eq!(r.take(4), b"name");
        assert_eq!(r.get_f32_le(), -1.25);
        assert_eq!(r.get_u32_le(), 7);
        assert!(!r.has_remaining());
    }

    #[test]
    fn little_endian_layout_is_exact() {
        let mut w = ByteWriter::new();
        w.put_u32_le(0x0102_0304);
        assert_eq!(w.into_vec(), vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    #[should_panic(expected = "byte reader underflow")]
    fn underflow_panics() {
        let mut r = ByteReader::new(&[1, 2]);
        let _ = r.get_u32_le();
    }

    #[test]
    fn f32_bits_survive_round_trip() {
        for v in [0.0f32, -0.0, 1.5e-38, f32::MAX, std::f32::consts::PI] {
            let mut w = ByteWriter::new();
            w.put_f32_le(v);
            let blob = w.into_vec();
            let mut r = ByteReader::new(&blob);
            assert_eq!(r.get_f32_le().to_bits(), v.to_bits());
        }
    }
}
