//! Deterministic pseudo-random number generation, API-compatible with the
//! subset of the `rand` crate this workspace used.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, so every
//! consumer of [`rngs::StdRng::seed_from_u64`] is bit-reproducible across
//! runs, platforms, and compiler versions — the determinism foundation the
//! cross-run reproducibility tests assert on.

use std::ops::Range;

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of uniformly distributed random bits with convenience
/// samplers, mirroring the `rand::Rng` surface used in this workspace.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` with 24 bits of precision.
    fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform sample from `range` (half-open, `start` inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range {:?}", self);
        self.start + (self.end - self.start) * rng.next_f32()
    }
}

/// Rejection-sampled uniform integer in `[0, span)` — unbiased.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )+};
}

int_sample_range!(i32, i64, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Randomised slice operations.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-SplitMix64(0) seed,
        // locking the implementation against accidental drift.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        assert_eq!(first, (0..3).map(|_| again.next_u64()).collect::<Vec<_>>());
        assert!(first.iter().any(|&v| v != 0));
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
            let w = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.gen_range(0..4);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all of 0..4 should appear: {seen:?}"
        );
        for _ in 0..100 {
            let v = rng.gen_range(10usize..12);
            assert!((10..12).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniformity_of_f64_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        let mut ra = StdRng::seed_from_u64(5);
        let mut rb = StdRng::seed_from_u64(5);
        a.shuffle(&mut ra);
        b.shuffle(&mut rb);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }
}
