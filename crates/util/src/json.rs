//! A minimal JSON value, writer, and parser.
//!
//! Replaces `serde_json` for the workspace's needs: experiment-report
//! emission and round-tripping (`run_all` aggregates one JSON line per
//! report table). Field order is preserved, numbers are `f64`, and the
//! writer emits compact one-line documents.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialises to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; emit null like serde_json's lossy modes.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable message (with byte offset) on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested_document() {
        let doc = Value::Object(vec![
            ("title".to_string(), Value::String("Fig 10(b)".to_string())),
            ("ok".to_string(), Value::Bool(true)),
            ("eer".to_string(), Value::Number(1.28)),
            ("count".to_string(), Value::Number(42.0)),
            (
                "rows".to_string(),
                Value::Array(vec![Value::Null, Value::String("a\"b\\c\n".to_string())]),
            ),
        ]);
        let text = doc.to_json();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_are_written_without_decimal_point() {
        assert_eq!(Value::Number(42.0).to_json(), "42");
        assert_eq!(Value::Number(-3.0).to_json(), "-3");
        assert_eq!(Value::Number(1.5).to_json(), "1.5");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , -2.5e1 ] , \"b\" : \"x\\u0041\\n\" } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("xA\n"));
    }

    #[test]
    fn malformed_inputs_are_errors() {
        for bad in [
            "", "not json", "{", "[1,", "{\"a\":}", "\"open", "1 2", "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn object_get_finds_members_in_order() {
        let v = parse("{\"x\":1,\"y\":2}").unwrap();
        assert_eq!(v.get("y").unwrap().as_f64(), Some(2.0));
        assert!(v.get("z").is_none());
    }

    #[test]
    fn non_finite_numbers_serialise_as_null() {
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_json(), "null");
    }
}
