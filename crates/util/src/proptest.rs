//! A deterministic property-testing harness.
//!
//! Replaces the `proptest` dev-dependency with the subset the workspace
//! uses: the [`proptest!`] test-block macro, range strategies,
//! `collection::vec`, `prop_assert!`-family assertions, `prop_assume!`,
//! and [`ProptestConfig::with_cases`]. Unlike upstream proptest there is
//! no shrinking and no persistence file: every test derives its seed from
//! its own name, so each run of a given binary exercises the identical
//! case sequence — failures reproduce immediately.
//!
//! ```
//! use mandipass_util::proptest::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn sum_is_commutative(
//!         xs in proptest::collection::vec(-1e3f64..1e3, 0..50),
//!         y in -1.0f64..1.0,
//!     ) {
//!         let forward: f64 = xs.iter().sum::<f64>() + y;
//!         let backward: f64 = y + xs.iter().rev().sum::<f64>();
//!         prop_assert!((forward - backward).abs() < 1e-9);
//!     }
//! }
//! ```

// The doc example necessarily shows `#[test]` inside `proptest!` — that
// is the macro's input grammar, not a runnable doctest test.
#![allow(clippy::test_attr_in_doctest)]

use std::ops::Range;

use crate::rand::rngs::StdRng;
use crate::rand::Rng;

/// Per-block configuration, set with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one input.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

int_strategy!(i32, i64, u32, u64, usize);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use crate::rand::Rng;

    /// Element counts for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range {r:?}");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy yielding `Vec`s of `elem`-generated values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.lo + 1 == self.len.hi {
                self.len.lo
            } else {
                rng.gen_range(self.len.lo..self.len.hi)
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Stable, platform-independent seed for a test name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything a `proptest!` call site needs in scope.
pub mod prelude {
    pub use super::ProptestConfig;
    pub use super::Strategy;
    // The module itself, so bodies can spell `proptest::collection::vec`,
    // plus the macros (same name, macro namespace).
    pub use crate::proptest;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume};
}

/// Declares deterministic property tests.
///
/// Each `#[test] fn name(binding in strategy, ...) { body }` item expands
/// to a plain `#[test]` running `body` over `cases` generated inputs
/// (default 64, overridable with a leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::proptest::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        #[test]
        fn $name:ident( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
    )+ ) => {$(
        #[test]
        fn $name() {
            let config: $crate::proptest::ProptestConfig = $cfg;
            let mut proptest_rng =
                <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                    $crate::proptest::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
            for _case in 0..config.cases {
                $( let $arg = $crate::proptest::Strategy::sample(&($strat), &mut proptest_rng); )+
                $body
            }
        }
    )+};
}

/// `assert!` under the name property-test bodies use.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` under the name property-test bodies use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Skips the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn vec_lengths_obey_size_range(xs in proptest::collection::vec(0.0f64..1.0, 2..10)) {
            prop_assert!((2..10).contains(&xs.len()));
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn fixed_size_vecs(xs in proptest::collection::vec(-1.0f32..1.0, 8)) {
            prop_assert_eq!(xs.len(), 8);
        }

        #[test]
        fn mut_bindings_and_assume_work(mut xs in proptest::collection::vec(-10.0f64..10.0, 0..20)) {
            prop_assume!(!xs.is_empty());
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_override_applies(seed in 0u64..1000, t in 0.0f64..2.0) {
            prop_assert!(seed < 1000);
            prop_assert!((0.0..2.0).contains(&t));
        }
    }

    #[test]
    fn seeds_are_stable_and_name_dependent() {
        assert_eq!(super::seed_for("abc"), super::seed_for("abc"));
        assert_ne!(super::seed_for("abc"), super::seed_for("abd"));
    }
}
