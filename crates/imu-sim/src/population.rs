//! Synthetic user cohorts — the stand-in for the paper's 34 volunteers.

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::{Rng, SeedableRng};

use crate::noise::AxisBias;
use crate::physio::MandibleProfile;
use crate::propagation::PropagationModel;
use crate::vocal::{Sex, VocalProfile};

/// The coupling of the 1-D mandible vibration into the six sensor axes.
///
/// Head geometry determines how the bone-conducted motion projects onto
/// the accelerometer axes (a unit-ish direction vector) and how much
/// rotational component the gyroscope sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coupling {
    /// Accelerometer projection (per axis gain, signed).
    pub accel: [f64; 3],
    /// Gyroscope projection (per axis gain, signed).
    pub gyro: [f64; 3],
}

impl Coupling {
    /// Samples a personal coupling geometry. The z-axis receives the most
    /// vibration (the earphone sits against the canal roughly along z),
    /// matching the paper's use of `az` for detection.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let tilt: f64 = rng.gen_range(-0.8..0.8);
        let swing: f64 = rng.gen_range(-0.8..0.8);
        // Direction with dominant z, personal x/y leakage.
        let raw = [tilt, swing, 1.0];
        let norm = (raw[0] * raw[0] + raw[1] * raw[1] + raw[2] * raw[2]).sqrt();
        let accel = [raw[0] / norm, raw[1] / norm, raw[2] / norm];
        let gyro = [
            rng.gen_range(0.3..1.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
            rng.gen_range(0.3..1.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
            rng.gen_range(0.1..0.6) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
        ];
        Coupling { accel, gyro }
    }

    /// The mirrored coupling of the opposite ear: the x axis (pointing
    /// into the head) flips, and the geometry differs slightly because
    /// heads are not perfectly symmetric.
    pub fn mirrored<R: Rng>(&self, rng: &mut R) -> Coupling {
        let j = |rng: &mut R, v: f64| v * rng.gen_range(0.92f64..1.08);
        Coupling {
            accel: [
                -j(rng, self.accel[0]),
                j(rng, self.accel[1]),
                j(rng, self.accel[2]),
            ],
            gyro: [
                -j(rng, self.gyro[0]),
                j(rng, self.gyro[1]),
                j(rng, self.gyro[2]),
            ],
        }
    }

    /// Per-recording wearing jitter: the earphone never sits in exactly
    /// the same spot twice.
    pub fn rewear<R: Rng>(&self, rng: &mut R) -> Coupling {
        self.rewear_scaled(rng, 1.0)
    }

    /// [`Coupling::rewear`] with the jitter magnitude multiplied by
    /// `scale` (0 disables re-wearing variability).
    pub fn rewear_scaled<R: Rng>(&self, rng: &mut R, scale: f64) -> Coupling {
        let mag = 0.015 * scale;
        let mut j = |v: f64| {
            if mag <= 0.0 {
                v
            } else {
                v * (1.0 + rng.gen_range(-mag..mag))
            }
        };
        Coupling {
            accel: [j(self.accel[0]), j(self.accel[1]), j(self.accel[2])],
            gyro: [j(self.gyro[0]), j(self.gyro[1]), j(self.gyro[2])],
        }
    }
}

/// A complete synthetic volunteer.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Stable identifier, 0-based.
    pub id: u32,
    /// Biological sex (conditions the vocal fundamental band).
    pub sex: Sex,
    /// The identity-bearing §II.B mandible parameters.
    pub mandible: MandibleProfile,
    /// Voicing habit for the "EMM" hum.
    pub vocal: VocalProfile,
    /// Right-ear sensor coupling geometry.
    pub coupling: Coupling,
    /// Left-ear coupling (mirrored, slightly asymmetric).
    pub coupling_left: Coupling,
    /// Worn-pose DC baselines.
    pub bias: AxisBias,
    /// Throat → ear propagation.
    pub propagation: PropagationModel,
    /// Overall loudness scale from force units to raw LSB at the throat.
    pub source_scale_lsb: f64,
}

impl UserProfile {
    /// Samples one user with the given id, sex and RNG.
    pub fn sample<R: Rng>(id: u32, sex: Sex, rng: &mut R) -> Self {
        let coupling = Coupling::sample(rng);
        let coupling_left = coupling.mirrored(rng);
        UserProfile {
            id,
            sex,
            mandible: MandibleProfile::sample(rng),
            vocal: VocalProfile::sample(rng, sex),
            coupling,
            coupling_left,
            bias: AxisBias::sample(rng),
            propagation: PropagationModel::sample(rng),
            // Calibrated so σ(az) at the throat is in the few-thousands of
            // LSB, as in the paper's Fig. 1 (σ ≈ 3805 at the throat).
            source_scale_lsb: rng.gen_range(3200.0..4600.0),
        }
    }

    /// This user after `days` of physiological drift (for §VII.F).
    pub fn drifted(&self, days: f64, seed: u64) -> UserProfile {
        let mut rng = StdRng::seed_from_u64(seed ^ u64::from(self.id).wrapping_mul(0x9e37_79b9));
        let mut out = self.clone();
        out.mandible = self.mandible.drifted(days, &mut rng);
        out
    }
}

/// A cohort of synthetic volunteers.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    users: Vec<UserProfile>,
    seed: u64,
}

impl Population {
    /// Generates `n` users deterministically from `seed`.
    ///
    /// The sex ratio follows the paper's cohort: roughly 28 male to
    /// 6 female (≈ 82 % male); with small `n` at least one of each sex is
    /// included when `n ≥ 2`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let users = (0..n)
            .map(|i| {
                // Deterministic, interleaved sex assignment approximating
                // the paper's 28/34 male ratio (exactly 6 females at
                // n = 34), spread through the cohort so any contiguous
                // train/held-out split stays mixed.
                let sex = if i % 6 == 2 { Sex::Female } else { Sex::Male };
                UserProfile::sample(i as u32, sex, &mut rng)
            })
            .collect();
        Population { users, seed }
    }

    /// The users of the cohort, ordered by id.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the cohort is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The seed the cohort was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Users of the given sex.
    pub fn by_sex(&self, sex: Sex) -> Vec<&UserProfile> {
        self.users.iter().filter(|u| u.sex == sex).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Population::generate(10, 42);
        let b = Population::generate(10, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Population::generate(5, 1);
        let b = Population::generate(5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn ids_are_sequential() {
        let pop = Population::generate(7, 3);
        for (i, u) in pop.users().iter().enumerate() {
            assert_eq!(u.id, i as u32);
        }
    }

    #[test]
    fn paper_cohort_sex_ratio() {
        let pop = Population::generate(34, 4);
        let females = pop.by_sex(Sex::Female).len();
        let males = pop.by_sex(Sex::Male).len();
        assert_eq!(males + females, 34);
        assert_eq!(females, 6, "paper cohort has 6 females");
    }

    #[test]
    fn users_have_distinct_biometrics() {
        let pop = Population::generate(34, 5);
        for i in 0..pop.len() {
            for j in i + 1..pop.len() {
                assert_ne!(pop.users()[i].mandible, pop.users()[j].mandible);
            }
        }
    }

    #[test]
    fn left_coupling_mirrors_x() {
        let pop = Population::generate(5, 6);
        for u in pop.users() {
            assert!(u.coupling.accel[0] * u.coupling_left.accel[0] <= 0.0);
        }
    }

    #[test]
    fn drift_changes_only_mandible() {
        let pop = Population::generate(2, 7);
        let u = &pop.users()[0];
        let d = u.drifted(14.0, 99);
        assert_ne!(u.mandible, d.mandible);
        assert_eq!(u.vocal, d.vocal);
        assert_eq!(u.coupling, d.coupling);
    }

    #[test]
    fn sexes_are_interleaved_through_the_cohort() {
        let pop = Population::generate(74, 8);
        // Both the front (hired) and back (held-out) of the cohort must
        // contain both sexes.
        let front = &pop.users()[..37];
        let back = &pop.users()[37..];
        assert!(front.iter().any(|u| u.sex == Sex::Female));
        assert!(back.iter().any(|u| u.sex == Sex::Female));
        assert!(back.iter().any(|u| u.sex == Sex::Male));
    }
}
