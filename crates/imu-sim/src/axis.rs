//! The six IMU axes, in the paper's fixed ordering.

/// One of the six IMU axes. The paper's axis order — also the row order of
/// every signal array — is `ax, ay, az, gx, gy, gz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// Accelerometer x.
    Ax,
    /// Accelerometer y.
    Ay,
    /// Accelerometer z (the axis the paper plots in Figs 1 and 5).
    Az,
    /// Gyroscope x.
    Gx,
    /// Gyroscope y.
    Gy,
    /// Gyroscope z.
    Gz,
}

/// All six axes in the paper's order.
pub const ALL_AXES: [Axis; 6] = [Axis::Ax, Axis::Ay, Axis::Az, Axis::Gx, Axis::Gy, Axis::Gz];

impl Axis {
    /// Row index of this axis in a signal array (0-based, paper order).
    pub fn index(self) -> usize {
        match self {
            Axis::Ax => 0,
            Axis::Ay => 1,
            Axis::Az => 2,
            Axis::Gx => 3,
            Axis::Gy => 4,
            Axis::Gz => 5,
        }
    }

    /// Whether this is an accelerometer axis.
    pub fn is_accelerometer(self) -> bool {
        matches!(self, Axis::Ax | Axis::Ay | Axis::Az)
    }

    /// Whether this is a gyroscope axis.
    pub fn is_gyroscope(self) -> bool {
        !self.is_accelerometer()
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Axis::Ax => "ax",
            Axis::Ay => "ay",
            Axis::Az => "az",
            Axis::Gx => "gx",
            Axis::Gy => "gy",
            Axis::Gz => "gz",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_follow_paper_order() {
        for (i, axis) in ALL_AXES.iter().enumerate() {
            assert_eq!(axis.index(), i);
        }
    }

    #[test]
    fn accelerometer_gyroscope_partition() {
        let accel = ALL_AXES.iter().filter(|a| a.is_accelerometer()).count();
        let gyro = ALL_AXES.iter().filter(|a| a.is_gyroscope()).count();
        assert_eq!((accel, gyro), (3, 3));
    }

    #[test]
    fn display_names_match_paper_notation() {
        let names: Vec<String> = ALL_AXES.iter().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["ax", "ay", "az", "gx", "gy", "gz"]);
    }
}
