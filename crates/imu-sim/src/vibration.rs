//! Time-domain integration of the paper's two-phase mandible oscillator.
//!
//! §II.B models the mandible as a one-degree-of-freedom spring–mass–damper
//! whose damping (and driving force) switch between a positive-direction
//! phase (`c1`, `F_P`) and a negative-direction phase (`c2`, `F_N`)
//! depending on the instantaneous motion. We integrate
//!
//! ```text
//! m·x'' + c(phase)·x' + (k1 + k2)·x = F(phase, t)
//! ```
//!
//! with semi-implicit Euler at a high internal rate, driven by a glottal
//! harmonic series that starts from rest at voicing onset (vocal folds are
//! phase-locked to onset, which is what makes segments comparable after
//! the detector aligns them).

use crate::physio::MandibleProfile;
use crate::vocal::VocalProfile;

/// Internal integration rate, Hz. Far above both the mandible resonance
/// and the audible harmonics we excite, and far above the IMU output rate
/// (the IMU undersamples this waveform without anti-aliasing — the aliased
/// pattern is part of the biometric).
pub const INTERNAL_RATE_HZ: f64 = 11_025.0;

/// One integration step's kinematic outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VibrationSample {
    /// Displacement of the mandible mass (m).
    pub displacement: f64,
    /// Velocity (m/s) — couples into the gyroscope axes.
    pub velocity: f64,
    /// Acceleration (m/s²) — couples into the accelerometer axes.
    pub acceleration: f64,
}

/// Simulates the mandible vibration for `duration_s` seconds of voicing,
/// starting from rest, returning one [`VibrationSample`] per internal step.
///
/// The driving force is a harmonic series at the session's fundamental,
/// amplitude-ramped over the user's attack time, with phase-dependent
/// amplitude asymmetry (`F_P` during positive-velocity motion, `F_N`
/// otherwise) and a duty-cycle skew from `positive_phase_fraction`.
pub fn simulate_vibration(
    mandible: &MandibleProfile,
    vocal: &VocalProfile,
    duration_s: f64,
) -> Vec<VibrationSample> {
    let dt = 1.0 / INTERNAL_RATE_HZ;
    let steps = (duration_s * INTERNAL_RATE_HZ).round() as usize;
    let m = mandible.mass_kg;
    let k_total = mandible.k1 + mandible.k2;
    let two_pi = 2.0 * std::f64::consts::PI;

    let mut out = Vec::with_capacity(steps);
    let mut x = 0.0f64;
    let mut v = 0.0f64;
    for step in 0..steps {
        let t = step as f64 * dt;
        // Attack envelope: the hum ramps to full amplitude.
        let env = (t / vocal.attack_seconds).min(1.0);
        // Glottal harmonic series, phase-locked to onset. The duty-cycle
        // skew shifts even harmonics' phases, a per-user timbre trait.
        let mut drive = 0.0f64;
        for (h, &amp) in vocal.harmonics.iter().enumerate() {
            let order = (h + 1) as f64;
            let phase_skew = (vocal.positive_phase_fraction - 0.5) * order;
            drive += amp * (two_pi * vocal.f0_hz * order * t + phase_skew).sin();
        }
        // Phase-dependent force scale and damping: positive-direction
        // motion sees (F_P, c1); negative-direction motion sees (F_N, c2).
        let (force_scale, c) = if v >= 0.0 {
            (vocal.force_positive, mandible.c1)
        } else {
            (vocal.force_negative, mandible.c2)
        };
        let force = env * force_scale * drive;
        let a = (force - c * v - k_total * x) / m;
        // Semi-implicit Euler: velocity first, then position.
        v += a * dt;
        x += v * dt;
        out.push(VibrationSample {
            displacement: x,
            velocity: v,
            acceleration: a,
        });
    }
    out
}

/// Root-mean-square of the acceleration track of `samples`.
pub fn acceleration_rms(samples: &[VibrationSample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    (samples
        .iter()
        .map(|s| s.acceleration * s.acceleration)
        .sum::<f64>()
        / samples.len() as f64)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocal::{Sex, Tone};
    use mandipass_util::rand::rngs::StdRng;
    use mandipass_util::rand::SeedableRng;

    fn setup(seed: u64) -> (MandibleProfile, VocalProfile) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = MandibleProfile::sample(&mut rng);
        let v = VocalProfile::sample(&mut rng, Sex::Male);
        (m, v)
    }

    #[test]
    fn output_length_matches_duration() {
        let (m, v) = setup(1);
        let samples = simulate_vibration(&m, &v, 0.1);
        assert_eq!(samples.len(), (0.1 * INTERNAL_RATE_HZ).round() as usize);
    }

    #[test]
    fn vibration_is_bounded() {
        let (m, v) = setup(2);
        let samples = simulate_vibration(&m, &v, 0.5);
        assert!(samples.iter().all(|s| {
            s.displacement.is_finite() && s.displacement.abs() < 1.0 && s.acceleration.is_finite()
        }));
    }

    #[test]
    fn vibration_reaches_steady_amplitude() {
        let (m, v) = setup(3);
        let samples = simulate_vibration(&m, &v, 0.4);
        let late = &samples[samples.len() / 2..];
        assert!(acceleration_rms(late) > 0.0);
        // Steady state: the last two quarters have similar RMS.
        let q3 = acceleration_rms(&late[..late.len() / 2]);
        let q4 = acceleration_rms(&late[late.len() / 2..]);
        assert!((q3 / q4 - 1.0).abs() < 0.5, "q3 {q3} q4 {q4}");
    }

    #[test]
    fn attack_ramps_amplitude() {
        let (m, mut v) = setup(4);
        v.attack_seconds = 0.08;
        let samples = simulate_vibration(&m, &v, 0.3);
        let early = acceleration_rms(&samples[..200]); // first ~18 ms
        let late = acceleration_rms(&samples[2500..]);
        assert!(early < late * 0.8, "early {early} late {late}");
    }

    #[test]
    fn different_users_produce_different_waveforms() {
        let (m1, v1) = setup(5);
        let (m2, v2) = setup(6);
        let a = simulate_vibration(&m1, &v1, 0.2);
        let b = simulate_vibration(&m2, &v2, 0.2);
        let diff: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x.acceleration - y.acceleration).abs())
            .sum::<f64>()
            / a.len() as f64;
        let scale = acceleration_rms(&a).max(acceleration_rms(&b));
        assert!(diff > 0.1 * scale, "waveforms nearly identical");
    }

    #[test]
    fn same_inputs_are_deterministic() {
        let (m, v) = setup(7);
        let a = simulate_vibration(&m, &v, 0.1);
        let b = simulate_vibration(&m, &v, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn tone_change_shifts_spectrum_but_not_stability() {
        let (m, v) = setup(8);
        let mut rng = StdRng::seed_from_u64(9);
        let high = v.session_instance(&mut rng, Tone::High);
        let samples = simulate_vibration(&m, &high, 0.2);
        assert!(samples.iter().all(|s| s.acceleration.is_finite()));
    }

    #[test]
    fn zero_duration_gives_no_samples() {
        let (m, v) = setup(10);
        assert!(simulate_vibration(&m, &v, 0.0).is_empty());
    }

    #[test]
    fn starts_from_rest() {
        let (m, v) = setup(11);
        let samples = simulate_vibration(&m, &v, 0.01);
        // The very first displacement is one velocity step away from zero.
        assert!(samples[0].displacement.abs() < 1e-6);
    }
}
