//! Earphone orientation: 3-D rotations of the sensed vectors.
//!
//! §VII.D rotates the earphone in 90° steps about the ear-canal axis and
//! finds verification still succeeds. We rotate the accelerometer and
//! gyroscope vectors with a proper rotation matrix about a configurable
//! axis.

/// A 3×3 rotation matrix (row-major).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rotation {
    m: [[f64; 3]; 3],
}

impl Rotation {
    /// The identity rotation.
    pub fn identity() -> Self {
        Rotation {
            m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Rotation by `degrees` about an arbitrary (normalised internally)
    /// axis, using the Rodrigues formula.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is the zero vector.
    pub fn about_axis(axis: [f64; 3], degrees: f64) -> Self {
        let norm = (axis[0] * axis[0] + axis[1] * axis[1] + axis[2] * axis[2]).sqrt();
        assert!(norm > 0.0, "rotation axis must be non-zero");
        let (x, y, z) = (axis[0] / norm, axis[1] / norm, axis[2] / norm);
        let th = degrees.to_radians();
        let (s, c) = th.sin_cos();
        let t = 1.0 - c;
        Rotation {
            m: [
                [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
                [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
                [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
            ],
        }
    }

    /// Rotation about the ear-canal axis (the sensor x-axis in our wearing
    /// geometry) — the §VII.D experiment's rotation.
    pub fn about_ear_canal(degrees: f64) -> Self {
        Self::about_axis([1.0, 0.0, 0.0], degrees)
    }

    /// Applies the rotation to a 3-vector.
    pub fn apply(&self, v: [f64; 3]) -> [f64; 3] {
        let m = &self.m;
        [
            m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2],
            m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2],
            m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2],
        ]
    }

    /// Applies the rotation samplewise to three parallel axis tracks.
    ///
    /// # Panics
    ///
    /// Panics if the tracks have different lengths.
    pub fn apply_tracks(&self, tracks: &mut [Vec<f64>; 3]) {
        let n = tracks[0].len();
        assert!(
            tracks.iter().all(|t| t.len() == n),
            "tracks must have equal lengths"
        );
        let [t0, t1, t2] = tracks;
        for ((a, b), c) in t0.iter_mut().zip(t1.iter_mut()).zip(t2.iter_mut()) {
            let v = self.apply([*a, *b, *c]);
            *a = v[0];
            *b = v[1];
            *c = v[2];
        }
    }
}

impl Default for Rotation {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: [f64; 3], b: [f64; 3]) -> bool {
        a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-12)
    }

    #[test]
    fn identity_leaves_vectors_unchanged() {
        let r = Rotation::identity();
        assert!(close(r.apply([1.0, 2.0, 3.0]), [1.0, 2.0, 3.0]));
    }

    #[test]
    fn ninety_degrees_about_x_maps_y_to_z() {
        let r = Rotation::about_ear_canal(90.0);
        assert!(close(r.apply([0.0, 1.0, 0.0]), [0.0, 0.0, 1.0]));
        assert!(close(r.apply([1.0, 0.0, 0.0]), [1.0, 0.0, 0.0]));
    }

    #[test]
    fn four_quarter_turns_are_identity() {
        let r = Rotation::about_ear_canal(90.0);
        let mut v = [0.3, -1.2, 0.7];
        for _ in 0..4 {
            v = r.apply(v);
        }
        assert!(close(v, [0.3, -1.2, 0.7]));
    }

    #[test]
    fn rotation_preserves_norm() {
        let r = Rotation::about_axis([1.0, 1.0, 1.0], 73.0);
        let v = [2.0, -3.0, 0.5];
        let w = r.apply(v);
        let n1: f64 = v.iter().map(|x| x * x).sum::<f64>();
        let n2: f64 = w.iter().map(|x| x * x).sum::<f64>();
        assert!((n1 - n2).abs() < 1e-10);
    }

    #[test]
    fn apply_tracks_rotates_samplewise() {
        let r = Rotation::about_ear_canal(180.0);
        let mut tracks = [vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        r.apply_tracks(&mut tracks);
        assert!(close(
            [tracks[0][0], tracks[1][0], tracks[2][0]],
            [1.0, -3.0, -5.0]
        ));
        assert!(close(
            [tracks[0][1], tracks[1][1], tracks[2][1]],
            [2.0, -4.0, -6.0]
        ));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_axis_panics() {
        let _ = Rotation::about_axis([0.0, 0.0, 0.0], 45.0);
    }
}
