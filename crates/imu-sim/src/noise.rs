//! Sensor-noise generators: Gaussian white noise, per-axis DC bias, and
//! outlier spikes.
//!
//! Fig. 5(b) of the paper shows the six axes starting from very different
//! baseline values — gravity projections on the accelerometer and bias on
//! the gyroscope. Fig. 6 shows the spike outliers the MAD stage removes.

use mandipass_util::rand::Rng;
use mandipass_util::rand_distr::{Distribution, Normal};

/// One g expressed in raw accelerometer LSB at ±4 g full scale.
pub const LSB_PER_G: f64 = 8192.0;

/// Per-axis DC baselines of a worn earphone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisBias {
    /// Accelerometer baselines (gravity projection), raw LSB.
    pub accel: [f64; 3],
    /// Gyroscope baselines (zero-rate offset), raw LSB.
    pub gyro: [f64; 3],
}

impl AxisBias {
    /// Samples a wearing pose: gravity mostly along `az` with a personal
    /// head/earphone tilt, plus small gyro zero-rate offsets.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        // Tilt of the sensor z-axis from vertical (radians).
        let tilt: f64 = rng.gen_range(0.15..0.45);
        let heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let g = LSB_PER_G;
        AxisBias {
            accel: [
                g * tilt.sin() * heading.cos(),
                g * tilt.sin() * heading.sin(),
                g * tilt.cos(),
            ],
            gyro: [
                rng.gen_range(-40.0..40.0),
                rng.gen_range(-40.0..40.0),
                rng.gen_range(-40.0..40.0),
            ],
        }
    }

    /// Baseline for the flat axis index (0‥2 accel, 3‥5 gyro).
    ///
    /// # Panics
    ///
    /// Panics if `axis >= 6`.
    pub fn for_axis(&self, axis: usize) -> f64 {
        match axis {
            0..=2 => self.accel[axis],
            3..=5 => self.gyro[axis - 3],
            _ => panic!("axis index {axis} out of range"),
        }
    }

    /// A per-recording re-wearing of the earphone: the pose shifts a
    /// little every time the user puts it on.
    pub fn rewear<R: Rng>(&self, rng: &mut R) -> AxisBias {
        self.rewear_scaled(rng, 1.0)
    }

    /// [`AxisBias::rewear`] with the pose shift multiplied by `scale`.
    pub fn rewear_scaled<R: Rng>(&self, rng: &mut R, scale: f64) -> AxisBias {
        if scale <= 0.0 {
            return *self;
        }
        let jitter = Normal::new(0.0, 60.0 * scale).expect("valid normal");
        AxisBias {
            accel: [
                self.accel[0] + jitter.sample(rng),
                self.accel[1] + jitter.sample(rng),
                self.accel[2] + jitter.sample(rng),
            ],
            gyro: [
                self.gyro[0] + jitter.sample(rng) * 0.1,
                self.gyro[1] + jitter.sample(rng) * 0.1,
                self.gyro[2] + jitter.sample(rng) * 0.1,
            ],
        }
    }
}

/// Adds Gaussian white noise of standard deviation `sigma` to `signal`.
pub fn add_white_noise<R: Rng>(signal: &mut [f64], sigma: f64, rng: &mut R) {
    if sigma <= 0.0 {
        return;
    }
    let dist = Normal::new(0.0, sigma).expect("sigma is positive and finite");
    for x in signal.iter_mut() {
        *x += dist.sample(rng);
    }
}

/// Injects hardware outlier spikes: each sample is replaced, with
/// probability `probability`, by the signal value plus a spike of random
/// sign and magnitude up to `amplitude`. Returns the spike indices.
pub fn inject_outliers<R: Rng>(
    signal: &mut [f64],
    probability: f64,
    amplitude: f64,
    rng: &mut R,
) -> Vec<usize> {
    let mut hit = Vec::new();
    for (i, x) in signal.iter_mut().enumerate() {
        if rng.gen_bool(probability.clamp(0.0, 1.0)) {
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            *x += sign * rng.gen_range(0.5..1.0) * amplitude;
            hit.push(i);
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_util::rand::rngs::StdRng;
    use mandipass_util::rand::SeedableRng;

    #[test]
    fn bias_axes_differ_from_each_other() {
        let mut rng = StdRng::seed_from_u64(1);
        let bias = AxisBias::sample(&mut rng);
        // The six baselines should not all coincide (Fig. 5(b)).
        let vals: Vec<f64> = (0..6).map(|a| bias.for_axis(a)).collect();
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 1000.0, "spread {spread}");
    }

    #[test]
    fn az_bias_dominates_for_mostly_upright_wear() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let bias = AxisBias::sample(&mut rng);
            assert!(bias.accel[2] > bias.accel[0].abs());
            assert!(bias.accel[2] > 0.7 * LSB_PER_G);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_axis_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let bias = AxisBias::sample(&mut rng);
        let _ = bias.for_axis(6);
    }

    #[test]
    fn rewear_shifts_pose_slightly() {
        let mut rng = StdRng::seed_from_u64(4);
        let bias = AxisBias::sample(&mut rng);
        let worn = bias.rewear(&mut rng);
        let shift = (worn.accel[2] - bias.accel[2]).abs();
        assert!(shift < 400.0, "re-wear shift too large: {shift}");
    }

    #[test]
    fn white_noise_has_design_sigma() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sig = vec![0.0; 50_000];
        add_white_noise(&mut sig, 7.0, &mut rng);
        let mean: f64 = sig.iter().sum::<f64>() / sig.len() as f64;
        let var: f64 = sig.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / sig.len() as f64;
        assert!((var.sqrt() - 7.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_noise_is_noop() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut sig = vec![1.0; 10];
        add_white_noise(&mut sig, 0.0, &mut rng);
        assert_eq!(sig, vec![1.0; 10]);
    }

    #[test]
    fn outlier_rate_matches_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sig = vec![0.0; 100_000];
        let hits = inject_outliers(&mut sig, 0.002, 2500.0, &mut rng);
        let rate = hits.len() as f64 / sig.len() as f64;
        assert!((rate - 0.002).abs() < 0.001, "rate {rate}");
        for &i in &hits {
            assert!(sig[i].abs() >= 1250.0 * 0.99);
        }
    }

    #[test]
    fn outliers_have_both_signs() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut sig = vec![0.0; 50_000];
        let hits = inject_outliers(&mut sig, 0.01, 1000.0, &mut rng);
        assert!(hits.iter().any(|&i| sig[i] > 0.0));
        assert!(hits.iter().any(|&i| sig[i] < 0.0));
    }
}
