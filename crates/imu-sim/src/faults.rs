//! Composable, seed-deterministic sensor-fault injectors.
//!
//! Real earphone IMUs drop samples, saturate against their full-scale
//! range, lose an axis to a broken solder joint, emit non-finite garbage
//! over a flaky bus, truncate a capture when the wearer removes the bud,
//! and drift in gain with temperature. The clean physics in [`crate::
//! recorder`] models none of this on purpose — robustness experiments
//! instead wrap a [`Recorder`] in a [`FaultyRecorder`] carrying a
//! [`FaultProfile`], so any experiment can run under a configurable,
//! reproducible fault regime.
//!
//! Determinism: a profile applied to the same recording with the same
//! seed yields bit-identical output. The fault RNG stream is derived
//! from the injection seed alone, never from the recording content, so
//! changing upstream physics does not silently re-roll the faults.

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::{Rng, SeedableRng};

use crate::conditions::Condition;
use crate::error::SimError;
use crate::population::UserProfile;
use crate::recorder::{Recorder, Recording};

/// One fault mechanism. Faults compose: a [`FaultProfile`] applies its
/// list in order, each drawing from the same seeded RNG stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Uniformly drops whole sample instants (all six axes lose the same
    /// indices, as when the radio link stalls), keeping axes equal-length.
    Dropout {
        /// Probability each sample instant is dropped, `0.0..=1.0`.
        rate: f64,
    },
    /// An axis goes dead: every sample is replaced by a constant.
    StuckAxis {
        /// Axis index in paper order (`0..6`: ax, ay, az, gx, gy, gz).
        axis: usize,
        /// The stuck value; `None` holds the axis's first sample (a
        /// frozen register), `Some(v)` forces the constant `v`.
        value: Option<f64>,
    },
    /// Saturation against the ADC full-scale range: samples clip to
    /// `±limit_lsb`.
    Clipping {
        /// Full-scale magnitude in raw LSB.
        limit_lsb: f64,
    },
    /// Bus corruption: individual samples become NaN or infinity.
    NonFiniteBurst {
        /// Probability each sample is corrupted, `0.0..=1.0`.
        rate: f64,
        /// `true` writes NaN, `false` writes ±infinity.
        nan: bool,
    },
    /// The capture ends early: only the leading fraction survives.
    Truncate {
        /// Fraction of samples kept, `0.0..=1.0` (at least one sample
        /// is always kept so the recording stays well-formed).
        keep: f64,
    },
    /// Thermal gain drift: a multiplicative ramp from 1.0 at the first
    /// sample to `1.0 + drift` at the last.
    GainDrift {
        /// Total relative gain change over the capture (e.g. `0.3` =
        /// +30 % by the end).
        drift: f64,
    },
}

impl Fault {
    /// A short stable label for reports and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::Dropout { .. } => "dropout",
            Fault::StuckAxis { .. } => "stuck_axis",
            Fault::Clipping { .. } => "clipping",
            Fault::NonFiniteBurst { .. } => "non_finite",
            Fault::Truncate { .. } => "truncate",
            Fault::GainDrift { .. } => "gain_drift",
        }
    }

    fn apply(&self, axes: &mut [Vec<f64>], rng: &mut StdRng) {
        match *self {
            Fault::Dropout { rate } => {
                let n = axes[0].len();
                let keep: Vec<bool> = (0..n)
                    .map(|_| !rng.gen_bool(rate.clamp(0.0, 1.0)))
                    .collect();
                // Never drop everything: a zero-length recording is a
                // malformed capture, not a faulty one.
                if keep.iter().all(|&k| !k) {
                    return;
                }
                for axis in axes.iter_mut() {
                    let mut i = 0;
                    axis.retain(|_| {
                        let k = keep[i];
                        i += 1;
                        k
                    });
                }
            }
            Fault::StuckAxis { axis, value } => {
                if let Some(track) = axes.get_mut(axis) {
                    let v = value.unwrap_or_else(|| track.first().copied().unwrap_or(0.0));
                    for t in track.iter_mut() {
                        *t = v;
                    }
                }
            }
            Fault::Clipping { limit_lsb } => {
                let lim = limit_lsb.abs();
                for axis in axes.iter_mut() {
                    for t in axis.iter_mut() {
                        *t = t.clamp(-lim, lim);
                    }
                }
            }
            Fault::NonFiniteBurst { rate, nan } => {
                for axis in axes.iter_mut() {
                    for t in axis.iter_mut() {
                        if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                            *t = if nan {
                                f64::NAN
                            } else if rng.gen_bool(0.5) {
                                f64::INFINITY
                            } else {
                                f64::NEG_INFINITY
                            };
                        }
                    }
                }
            }
            Fault::Truncate { keep } => {
                let n = axes[0].len();
                let kept = ((n as f64 * keep.clamp(0.0, 1.0)) as usize).max(1);
                for axis in axes.iter_mut() {
                    axis.truncate(kept);
                }
            }
            Fault::GainDrift { drift } => {
                let n = axes[0].len();
                if n < 2 {
                    return;
                }
                for axis in axes.iter_mut() {
                    for (i, t) in axis.iter_mut().enumerate() {
                        *t *= 1.0 + drift * i as f64 / (n - 1) as f64;
                    }
                }
            }
        }
    }
}

/// A named, ordered list of faults applied as one regime.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Profile name, used in reports and telemetry.
    pub name: String,
    /// The faults, applied in order.
    pub faults: Vec<Fault>,
}

impl FaultProfile {
    /// A profile with no faults (the clean baseline of a sweep).
    pub fn clean() -> Self {
        FaultProfile {
            name: "clean".to_string(),
            faults: Vec::new(),
        }
    }

    /// Builds a named profile from a list of faults.
    pub fn new(name: &str, faults: Vec<Fault>) -> Self {
        FaultProfile {
            name: name.to_string(),
            faults,
        }
    }

    /// Sample dropout at `intensity` (the per-sample drop probability).
    pub fn dropout(intensity: f64) -> Self {
        Self::new("dropout", vec![Fault::Dropout { rate: intensity }])
    }

    /// One gyro axis (gx) stuck at its first sample. `intensity` ≥ 0.5
    /// additionally freezes gy — a fully failed gyro die.
    pub fn stuck_gyro(intensity: f64) -> Self {
        let mut faults = vec![Fault::StuckAxis {
            axis: 3,
            value: None,
        }];
        if intensity >= 0.5 {
            faults.push(Fault::StuckAxis {
                axis: 4,
                value: None,
            });
        }
        Self::new("stuck_gyro", faults)
    }

    /// Clipping: `intensity` in `0.0..=1.0` shrinks the full-scale limit
    /// from a generous 20 000 LSB down towards 500 LSB.
    pub fn clipping(intensity: f64) -> Self {
        let limit = 20_000.0 - 19_500.0 * intensity.clamp(0.0, 1.0);
        Self::new("clipping", vec![Fault::Clipping { limit_lsb: limit }])
    }

    /// NaN burst corruption at `intensity` (per-sample probability).
    pub fn non_finite(intensity: f64) -> Self {
        Self::new(
            "non_finite",
            vec![Fault::NonFiniteBurst {
                rate: intensity,
                nan: true,
            }],
        )
    }

    /// Truncated capture: `intensity` is the fraction *lost* from the
    /// end (0.0 keeps everything).
    pub fn truncate(intensity: f64) -> Self {
        Self::new(
            "truncate",
            vec![Fault::Truncate {
                keep: 1.0 - intensity.clamp(0.0, 1.0),
            }],
        )
    }

    /// Gain drift: `intensity` is the total relative gain change.
    pub fn gain_drift(intensity: f64) -> Self {
        Self::new("gain_drift", vec![Fault::GainDrift { drift: intensity }])
    }

    /// The ageing-hardware ramp the live-monitoring demo drives: gain
    /// drift plus sample dropout growing together with `intensity`
    /// (`0.0..=1.0`). Distinct from [`sweep_profiles`], which varies one
    /// fault at a time — a drifting, flaky earphone shows both at once.
    ///
    /// The dropout ceiling (0.8) is chosen so the top of the ramp drops
    /// a default ~0.6 s capture below the quality gate's `min_samples`,
    /// while the bottom half only thins and rescales it — the monitor
    /// must see a distance shift first and hard rejects later.
    pub fn degradation_ramp(intensity: f64) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        Self::new(
            "degradation_ramp",
            vec![
                Fault::GainDrift {
                    drift: 3.0 * intensity,
                },
                Fault::Dropout {
                    rate: 0.8 * intensity,
                },
            ],
        )
    }

    /// Whether this profile does nothing.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies the profile to a recording, returning the faulted copy.
    ///
    /// Deterministic in `(recording, seed)`: the RNG stream depends on
    /// the seed and profile only, never on the sample values.
    pub fn apply(&self, recording: &Recording, seed: u64) -> Recording {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6661_756c_7473_7631);
        let mut axes: Vec<Vec<f64>> = recording.axes().to_vec();
        for fault in &self.faults {
            fault.apply(&mut axes, &mut rng);
        }
        // The injectors preserve the shape invariants from_parts checks
        // (six equal-length non-empty tracks), so this cannot fail.
        Recording::from_parts(
            recording.sample_rate_hz(),
            axes,
            recording.condition(),
            recording.user_id(),
        )
        .unwrap_or_else(|e| unreachable!("fault injectors preserve recording shape: {e}"))
    }
}

/// A [`Recorder`] that applies a [`FaultProfile`] to every recording.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyRecorder {
    /// The clean physics recorder being wrapped.
    pub inner: Recorder,
    /// The fault regime.
    pub profile: FaultProfile,
}

impl FaultyRecorder {
    /// Wraps `inner` with `profile`.
    pub fn new(inner: Recorder, profile: FaultProfile) -> Self {
        FaultyRecorder { inner, profile }
    }

    /// Records one attempt and applies the fault profile. The fault seed
    /// is derived from `session_seed` so the whole faulted recording is
    /// reproducible from the same triple as the clean one.
    pub fn record(&self, user: &UserProfile, condition: Condition, session_seed: u64) -> Recording {
        let clean = self.inner.record(user, condition, session_seed);
        self.profile.apply(&clean, session_seed)
    }
}

/// Returns the catalogue of intensity-parameterised profiles swept by
/// the robustness experiment, at a given `intensity` in `0.0..=1.0`.
pub fn sweep_profiles(intensity: f64) -> Vec<FaultProfile> {
    vec![
        FaultProfile::dropout(0.4 * intensity),
        FaultProfile::stuck_gyro(intensity),
        FaultProfile::clipping(intensity),
        FaultProfile::non_finite(0.2 * intensity),
        FaultProfile::truncate(0.85 * intensity),
        FaultProfile::gain_drift(1.5 * intensity),
    ]
}

/// Validates profile parameters (rates in range, axis indices in `0..6`).
///
/// # Errors
///
/// [`SimError::InvalidParameter`] naming the offending field.
pub fn validate_profile(profile: &FaultProfile) -> Result<(), SimError> {
    for fault in &profile.faults {
        match *fault {
            Fault::Dropout { rate } | Fault::NonFiniteBurst { rate, .. } => {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(SimError::InvalidParameter {
                        name: "rate",
                        value: rate,
                    });
                }
            }
            Fault::StuckAxis { axis, .. } => {
                if axis >= 6 {
                    return Err(SimError::InvalidParameter {
                        name: "axis",
                        value: axis as f64,
                    });
                }
            }
            Fault::Clipping { limit_lsb } => {
                if !(limit_lsb.is_finite() && limit_lsb > 0.0) {
                    return Err(SimError::InvalidParameter {
                        name: "limit_lsb",
                        value: limit_lsb,
                    });
                }
            }
            Fault::Truncate { keep } => {
                if !(0.0..=1.0).contains(&keep) {
                    return Err(SimError::InvalidParameter {
                        name: "keep",
                        value: keep,
                    });
                }
            }
            Fault::GainDrift { drift } => {
                if !drift.is_finite() {
                    return Err(SimError::InvalidParameter {
                        name: "drift",
                        value: drift,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;

    fn base_recording() -> Recording {
        let pop = Population::generate(2, 3);
        Recorder::default().record(&pop.users()[0], Condition::Normal, 9)
    }

    #[test]
    fn clean_profile_is_identity() {
        let rec = base_recording();
        let out = FaultProfile::clean().apply(&rec, 1);
        assert_eq!(rec, out);
    }

    #[test]
    fn application_is_deterministic_per_seed() {
        let rec = base_recording();
        let profile = FaultProfile::new(
            "mix",
            vec![
                Fault::Dropout { rate: 0.2 },
                Fault::NonFiniteBurst {
                    rate: 0.05,
                    nan: true,
                },
            ],
        );
        let a = profile.apply(&rec, 42);
        let b = profile.apply(&rec, 42);
        // NaN != NaN, so compare lengths and the bit patterns.
        assert_eq!(a.len(), b.len());
        for (xa, xb) in a.axes().iter().zip(b.axes()) {
            for (va, vb) in xa.iter().zip(xb) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
        let c = profile.apply(&rec, 43);
        let same = a.len() == c.len()
            && a.az()
                .iter()
                .zip(c.az())
                .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(!same, "different seeds must inject different faults");
    }

    #[test]
    fn dropout_shortens_all_axes_equally() {
        let rec = base_recording();
        let out = FaultProfile::dropout(0.3).apply(&rec, 7);
        assert!(out.len() < rec.len());
        assert!(out.axes().iter().all(|a| a.len() == out.len()));
    }

    #[test]
    fn stuck_axis_is_constant() {
        let rec = base_recording();
        let out = FaultProfile::stuck_gyro(0.0).apply(&rec, 7);
        let gx = &out.axes()[3];
        assert!(gx.iter().all(|&v| v == gx[0]));
        // The other gyro axes keep moving at low intensity.
        let gy = &out.axes()[4];
        assert!(gy.iter().any(|&v| v != gy[0]));
    }

    #[test]
    fn full_stuck_gyro_freezes_two_axes() {
        let rec = base_recording();
        let out = FaultProfile::stuck_gyro(1.0).apply(&rec, 7);
        for axis in [3, 4] {
            let t = &out.axes()[axis];
            assert!(t.iter().all(|&v| v == t[0]));
        }
    }

    #[test]
    fn clipping_bounds_samples() {
        let rec = base_recording();
        let out = FaultProfile::clipping(1.0).apply(&rec, 7);
        assert!(out.axes().iter().flatten().all(|v| v.abs() <= 500.0));
        // High intensity must actually clip something.
        assert_ne!(out, rec);
    }

    #[test]
    fn non_finite_burst_corrupts_samples() {
        let rec = base_recording();
        let out = FaultProfile::non_finite(0.5).apply(&rec, 7);
        let bad = out
            .axes()
            .iter()
            .flatten()
            .filter(|v| !v.is_finite())
            .count();
        assert!(bad > 0, "no non-finite samples injected");
    }

    #[test]
    fn truncate_keeps_leading_fraction() {
        let rec = base_recording();
        let out = FaultProfile::truncate(0.75).apply(&rec, 7);
        let expected = ((rec.len() as f64 * 0.25) as usize).max(1);
        assert_eq!(out.len(), expected);
        assert_eq!(out.az(), &rec.az()[..expected]);
    }

    #[test]
    fn gain_drift_amplifies_tail() {
        let rec = base_recording();
        let out = FaultProfile::gain_drift(1.0).apply(&rec, 7);
        let n = rec.len();
        assert_eq!(out.az()[0], rec.az()[0]);
        assert!((out.az()[n - 1] - 2.0 * rec.az()[n - 1]).abs() < 1e-9);
    }

    #[test]
    fn faulty_recorder_is_deterministic() {
        let pop = Population::generate(2, 3);
        let fr = FaultyRecorder::new(Recorder::default(), FaultProfile::dropout(0.2));
        let a = fr.record(&pop.users()[0], Condition::Normal, 11);
        let b = fr.record(&pop.users()[0], Condition::Normal, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_catalogue_has_at_least_five_profiles() {
        let profiles = sweep_profiles(0.5);
        assert!(profiles.len() >= 5);
        for p in &profiles {
            validate_profile(p).unwrap();
        }
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let bad = FaultProfile::new("bad", vec![Fault::Dropout { rate: 1.5 }]);
        assert!(validate_profile(&bad).is_err());
        let bad = FaultProfile::new(
            "bad",
            vec![Fault::StuckAxis {
                axis: 9,
                value: None,
            }],
        );
        assert!(validate_profile(&bad).is_err());
    }

    #[test]
    fn total_dropout_never_empties_recording() {
        let rec = base_recording();
        let out = FaultProfile::dropout(1.0).apply(&rec, 7);
        assert!(!out.is_empty());
    }

    #[test]
    fn degradation_ramp_is_valid_and_scales_with_intensity() {
        // Zero intensity validates and leaves the signal untouched.
        let zero = FaultProfile::degradation_ramp(0.0);
        validate_profile(&zero).unwrap();
        let rec = base_recording();
        assert_eq!(zero.apply(&rec, 3).axes(), rec.axes());
        // Full intensity combines gain drift with dropout, stays valid
        // (clamped), and is deterministic in (recording, seed).
        let full = FaultProfile::degradation_ramp(2.0);
        validate_profile(&full).unwrap();
        assert_eq!(full.faults.len(), 2);
        let a = full.apply(&rec, 11);
        let b = full.apply(&rec, 11);
        assert_eq!(a.axes(), b.axes());
        assert_ne!(a.axes(), rec.axes());
    }
}
