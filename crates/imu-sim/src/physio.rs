//! Physiological mandible parameters — the identity-bearing quantities of
//! the paper's §II.B vibration model.
//!
//! Equation 6 shows the received spectrum is governed by the mandible mass
//! `m`, the asymmetric damping factors `c1 ≠ c2`, and the spring constants
//! `k1, k2` of the surrounding tissue; these vary between persons and are
//! exactly what *MandiblePrint* encodes. Each synthetic user therefore
//! draws one [`MandibleProfile`] and keeps it (modulo slow long-term
//! drift).

use mandipass_util::rand::Rng;
use mandipass_util::rand_distr::{Distribution, Normal};

use crate::error::SimError;

/// Per-user mandible vibration parameters (`m, c1, c2, k1, k2` of Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MandibleProfile {
    /// Mandible component mass, kg.
    pub mass_kg: f64,
    /// Positive-direction damping factor, N·s/m.
    pub c1: f64,
    /// Negative-direction damping factor, N·s/m (≠ `c1`: the tissues on
    /// the two sides of the mandible are not symmetrical).
    pub c2: f64,
    /// First tissue spring constant, N/m.
    pub k1: f64,
    /// Second tissue spring constant, N/m.
    pub k2: f64,
}

impl MandibleProfile {
    /// Validates that all parameters are positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] naming the first offending
    /// field.
    pub fn validate(&self) -> Result<(), SimError> {
        let fields = [
            ("mass_kg", self.mass_kg),
            ("c1", self.c1),
            ("c2", self.c2),
            ("k1", self.k1),
            ("k2", self.k2),
        ];
        for (name, value) in fields {
            if !(value.is_finite() && value > 0.0) {
                return Err(SimError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }

    /// Samples a plausible adult mandible from population distributions.
    ///
    /// The combined stiffness is chosen so the undamped resonance lands in
    /// the few-hundred-hertz band where vocal-driven bone vibration lives;
    /// damping keeps the system underdamped so the onset transient rings.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let mass: f64 = Normal::new(0.085, 0.012).expect("valid normal").sample(rng);
        let mass = mass.clamp(0.05, 0.13);
        // Resonant frequency of the mandible-tissue assembly:
        // user-specific, 75-165 Hz, inside both the vocal excitation band
        // and the IMU's observable band, so the {m, k} identity
        // parameters shape the sampled waveform directly.
        let f_res: f64 = Normal::new(125.0, 30.0).expect("valid normal").sample(rng);
        let f_res = f_res.clamp(70.0, 180.0);
        let k_total = mass * (2.0 * std::f64::consts::PI * f_res).powi(2);
        // Split k_total asymmetrically between the two springs.
        let split = rng.gen_range(0.35..0.65);
        let k1 = k_total * split;
        let k2 = k_total - k1;
        // Lightly underdamped (damping ratio 0.008-0.045, asymmetric
        // between phases): the slow ring-in makes the |f0 - f_res| beat
        // envelope persist through the analysis window, which is where
        // the damping factors c1/c2 become observable.
        let critical = 2.0 * (mass * k_total).sqrt();
        let zeta1: f64 = rng.gen_range(0.008..0.045);
        let zeta2 = (zeta1 * rng.gen_range(0.6f64..1.6)).clamp(0.006, 0.06);
        MandibleProfile {
            mass_kg: mass,
            c1: zeta1 * critical,
            c2: zeta2 * critical,
            k1,
            k2,
        }
    }

    /// Undamped natural (angular) frequency `√((k1 + k2) / m)`, rad/s.
    pub fn natural_angular_frequency(&self) -> f64 {
        ((self.k1 + self.k2) / self.mass_kg).sqrt()
    }

    /// Undamped natural frequency in Hz.
    pub fn natural_frequency_hz(&self) -> f64 {
        self.natural_angular_frequency() / (2.0 * std::f64::consts::PI)
    }

    /// Damping ratio during the positive-direction phase.
    pub fn damping_ratio_positive(&self) -> f64 {
        self.c1 / (2.0 * (self.mass_kg * (self.k1 + self.k2)).sqrt())
    }

    /// Damping ratio during the negative-direction phase.
    pub fn damping_ratio_negative(&self) -> f64 {
        self.c2 / (2.0 * (self.mass_kg * (self.k1 + self.k2)).sqrt())
    }

    /// Returns this profile after `days` of physiological drift — a tiny
    /// deterministic-by-seed random walk used by the long-term experiment
    /// (§VII.F). Mandible physiology is stable after puberty, so drift is
    /// a fraction of a percent per week.
    pub fn drifted<R: Rng>(&self, days: f64, rng: &mut R) -> MandibleProfile {
        let scale = 0.0004 * days.max(0.0).sqrt();
        let jitter =
            |rng: &mut R, v: f64| v * (1.0 + Normal::new(0.0, scale).expect("valid").sample(rng));
        MandibleProfile {
            mass_kg: jitter(rng, self.mass_kg),
            c1: jitter(rng, self.c1),
            c2: jitter(rng, self.c2),
            k1: jitter(rng, self.k1),
            k2: jitter(rng, self.k2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_util::rand::rngs::StdRng;
    use mandipass_util::rand::SeedableRng;

    #[test]
    fn sampled_profiles_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = MandibleProfile::sample(&mut rng);
            p.validate().unwrap();
        }
    }

    #[test]
    fn resonance_lies_in_design_band() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let p = MandibleProfile::sample(&mut rng);
            let f = p.natural_frequency_hz();
            assert!((60.0..200.0).contains(&f), "resonance {f} Hz");
        }
    }

    #[test]
    fn sampled_system_is_underdamped() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = MandibleProfile::sample(&mut rng);
            assert!(p.damping_ratio_positive() < 0.2);
            assert!(p.damping_ratio_negative() < 0.2);
        }
    }

    #[test]
    fn damping_is_asymmetric_for_most_users() {
        let mut rng = StdRng::seed_from_u64(4);
        let asym = (0..50)
            .map(|_| MandibleProfile::sample(&mut rng))
            .filter(|p| (p.c1 - p.c2).abs() / p.c1 > 0.01)
            .count();
        assert!(asym > 40, "only {asym}/50 asymmetric");
    }

    #[test]
    fn profiles_differ_between_users() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = MandibleProfile::sample(&mut rng);
        let b = MandibleProfile::sample(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn validate_rejects_nonpositive_fields() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = MandibleProfile::sample(&mut rng);
        p.c1 = 0.0;
        assert!(matches!(
            p.validate(),
            Err(SimError::InvalidParameter { name: "c1", .. })
        ));
        p.c1 = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn two_week_drift_is_small() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = MandibleProfile::sample(&mut rng);
        let d = p.drifted(14.0, &mut rng);
        let rel = (d.mass_kg - p.mass_kg).abs() / p.mass_kg;
        assert!(rel < 0.02, "mass drifted {rel}");
        let rel_f =
            (d.natural_frequency_hz() - p.natural_frequency_hz()).abs() / p.natural_frequency_hz();
        assert!(rel_f < 0.02, "resonance drifted {rel_f}");
    }

    #[test]
    fn zero_day_drift_is_tiny() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = MandibleProfile::sample(&mut rng);
        let d = p.drifted(0.0, &mut rng);
        assert!((d.mass_kg - p.mass_kg).abs() < 1e-12);
    }
}
