//! Body-motion interference: the low-frequency components (LFC) that
//! walking and running add to the IMU stream.
//!
//! The paper cites prior work showing body-movement components are mostly
//! below 10 Hz, which is why the preprocessing chain high-passes at 20 Hz.
//! The walk/run generators here produce gait-locked sinusoid stacks (step
//! fundamental plus harmonics) whose energy sits squarely in that band.

use mandipass_util::rand::Rng;

/// A locomotion activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Standing or sitting still — no gait interference.
    Static,
    /// Walking: ~2 Hz step rate.
    Walk,
    /// Running: ~2.8 Hz step rate.
    Run,
}

impl Activity {
    /// Step fundamental frequency band, Hz.
    pub fn step_band(self) -> (f64, f64) {
        match self {
            Activity::Static => (0.0, 0.0),
            Activity::Walk => (1.7, 2.2),
            Activity::Run => (2.4, 2.9),
        }
    }

    /// Peak gait acceleration at the head, raw LSB. Kept below the level
    /// that would false-trigger the §IV start detector (windowed σ > 250)
    /// while remaining an order of magnitude above sensor noise.
    pub fn amplitude_lsb(self) -> f64 {
        match self {
            Activity::Static => 0.0,
            Activity::Walk => 500.0,
            Activity::Run => 580.0,
        }
    }
}

/// Generates `len` samples of gait interference for one axis at
/// `sample_rate_hz`, using a per-recording random gait phase and step
/// frequency inside the activity band.
pub fn gait_interference<R: Rng>(
    activity: Activity,
    len: usize,
    sample_rate_hz: f64,
    axis_coupling: f64,
    rng: &mut R,
) -> Vec<f64> {
    if activity == Activity::Static || len == 0 {
        return vec![0.0; len];
    }
    let (lo, hi) = activity.step_band();
    let step_hz = rng.gen_range(lo..hi);
    let amp = activity.amplitude_lsb() * axis_coupling;
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    // Step fundamental + two harmonics with decaying weight; all < 10 Hz.
    let weights = [1.0, 0.35, 0.12];
    (0..len)
        .map(|i| {
            let t = i as f64 / sample_rate_hz;
            weights
                .iter()
                .enumerate()
                .map(|(h, w)| {
                    let order = (h + 1) as f64;
                    amp * w * (std::f64::consts::TAU * step_hz * order * t + phase * order).sin()
                })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_util::rand::rngs::StdRng;
    use mandipass_util::rand::SeedableRng;

    #[test]
    fn static_activity_is_silent() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = gait_interference(Activity::Static, 100, 350.0, 1.0, &mut rng);
        assert_eq!(out, vec![0.0; 100]);
    }

    #[test]
    fn walk_energy_is_below_ten_hz() {
        let mut rng = StdRng::seed_from_u64(2);
        let fs = 350.0;
        let out = gait_interference(Activity::Walk, 4096, fs, 1.0, &mut rng);
        // Goertzel-style energy sums below and above 10 Hz.
        let energy = |f_lo: f64, f_hi: f64| -> f64 {
            let n = out.len();
            let mut e = 0.0;
            for k in 1..n / 2 {
                let f = k as f64 * fs / n as f64;
                if f < f_lo || f > f_hi {
                    continue;
                }
                let (mut re, mut im) = (0.0, 0.0);
                for (i, &x) in out.iter().enumerate() {
                    let ang = -std::f64::consts::TAU * k as f64 * i as f64 / n as f64;
                    re += x * ang.cos();
                    im += x * ang.sin();
                }
                e += re * re + im * im;
            }
            e
        };
        let low = energy(0.1, 10.0);
        let high = energy(10.0, 175.0);
        assert!(low > 100.0 * high.max(1.0), "low {low} vs high {high}");
    }

    #[test]
    fn run_is_stronger_and_faster_than_walk() {
        assert!(Activity::Run.amplitude_lsb() > Activity::Walk.amplitude_lsb());
        assert!(Activity::Run.step_band().0 > Activity::Walk.step_band().1);
    }

    #[test]
    fn windowed_std_stays_below_start_threshold() {
        // The gait interference must not false-trigger the paper's
        // vibration detector (window σ > 250 starts an event).
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            for activity in [Activity::Walk, Activity::Run] {
                let out = gait_interference(activity, 700, 350.0, 1.0, &mut rng);
                for win in out.chunks(10) {
                    let mean: f64 = win.iter().sum::<f64>() / win.len() as f64;
                    let var: f64 =
                        win.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / win.len() as f64;
                    assert!(var.sqrt() < 250.0, "{activity:?} windowed σ {}", var.sqrt());
                }
            }
        }
    }

    #[test]
    fn coupling_scales_amplitude() {
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        let full = gait_interference(Activity::Walk, 256, 350.0, 1.0, &mut rng_a);
        let half = gait_interference(Activity::Walk, 256, 350.0, 0.5, &mut rng_b);
        for (f, h) in full.iter().zip(&half) {
            assert!((f * 0.5 - h).abs() < 1e-9);
        }
    }

    #[test]
    fn different_recordings_have_different_phase() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = gait_interference(Activity::Walk, 256, 350.0, 1.0, &mut rng);
        let b = gait_interference(Activity::Walk, 256, 350.0, 1.0, &mut rng);
        assert_ne!(a, b);
    }
}
