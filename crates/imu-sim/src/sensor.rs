//! IMU sensor models: sampling, quantisation, noise floors.
//!
//! The paper evaluates with two commodity IMUs, the MPU-9250 (default)
//! and the MPU-6050, and finds near-identical EERs (1.28 % vs 1.29 %).
//! Both parts filter the signal band with an internal digital low-pass
//! (DLPF) before decimating to the output rate; residual content between
//! the DLPF cutoff and the input Nyquist still aliases. We reproduce both
//! effects: a high-rate physics track runs through the DLPF model, then
//! sample-and-hold decimation.

use crate::error::SimError;
use crate::vibration::INTERNAL_RATE_HZ;

/// A commodity IMU model.
#[derive(Debug, Clone, PartialEq)]
pub struct ImuModel {
    /// Human-readable part name.
    pub name: String,
    /// Output data rate, Hz. The paper's overhead arithmetic
    /// (0.2 s = 60 samples) implies ≈ 350 Hz.
    pub sample_rate_hz: f64,
    /// White-noise standard deviation on accelerometer axes, raw LSB.
    pub accel_noise_lsb: f64,
    /// White-noise standard deviation on gyroscope axes, raw LSB.
    pub gyro_noise_lsb: f64,
    /// Probability that any one output sample is an outlier spike
    /// (hardware imperfection; §IV's MAD stage exists to remove these).
    pub outlier_probability: f64,
    /// Peak amplitude of outlier spikes, raw LSB.
    pub outlier_amplitude_lsb: f64,
    /// Whether outputs are quantised to integer LSB.
    pub quantize: bool,
    /// Cutoff of the part's internal digital low-pass filter (DLPF), Hz.
    /// Both MPU parts filter the signal band before decimation (the
    /// MPU-9250/6050 DLPF tops out around 184 Hz); `None` disables the
    /// filter, exposing raw aliasing (the `ablation_sampling` experiment
    /// measures how much that costs).
    pub dlpf_cutoff_hz: Option<f64>,
}

impl ImuModel {
    /// The MPU-9250 — the paper's default sensor.
    pub fn mpu9250() -> Self {
        ImuModel {
            name: "MPU-9250".to_string(),
            sample_rate_hz: 350.0,
            accel_noise_lsb: 7.0,
            gyro_noise_lsb: 5.0,
            outlier_probability: 0.0015,
            outlier_amplitude_lsb: 2500.0,
            quantize: true,
            dlpf_cutoff_hz: Some(170.0),
        }
    }

    /// The MPU-6050 — the paper's second sensor, slightly noisier.
    pub fn mpu6050() -> Self {
        ImuModel {
            name: "MPU-6050".to_string(),
            sample_rate_hz: 350.0,
            accel_noise_lsb: 9.5,
            gyro_noise_lsb: 6.5,
            outlier_probability: 0.0022,
            outlier_amplitude_lsb: 3000.0,
            quantize: true,
            dlpf_cutoff_hz: Some(170.0),
        }
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a non-positive sample
    /// rate or negative noise terms.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.sample_rate_hz.is_finite() && self.sample_rate_hz > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "sample_rate_hz",
                value: self.sample_rate_hz,
            });
        }
        if self.accel_noise_lsb < 0.0 {
            return Err(SimError::InvalidParameter {
                name: "accel_noise_lsb",
                value: self.accel_noise_lsb,
            });
        }
        if self.gyro_noise_lsb < 0.0 {
            return Err(SimError::InvalidParameter {
                name: "gyro_noise_lsb",
                value: self.gyro_noise_lsb,
            });
        }
        if !(0.0..=1.0).contains(&self.outlier_probability) {
            return Err(SimError::InvalidParameter {
                name: "outlier_probability",
                value: self.outlier_probability,
            });
        }
        Ok(())
    }

    /// Decimation of a high-rate track (at [`INTERNAL_RATE_HZ`]) down to
    /// this sensor's output rate: the part's internal DLPF (when
    /// configured) runs at the high rate, then the output register is
    /// sampled-and-held. Content above the DLPF cutoff is attenuated;
    /// content between the cutoff and the input Nyquist still aliases, as
    /// on the real part.
    pub fn sample_track(&self, high_rate: &[f64]) -> Vec<f64> {
        let filtered: Vec<f64> = match self.dlpf_cutoff_hz {
            Some(cutoff) => {
                let lp = mandipass_dsp::filter::Butterworth::lowpass(
                    2,
                    cutoff.min(INTERNAL_RATE_HZ / 2.0 - 1.0),
                    INTERNAL_RATE_HZ,
                )
                .expect("valid DLPF design");
                lp.filter(high_rate)
            }
            None => high_rate.to_vec(),
        };
        let step = INTERNAL_RATE_HZ / self.sample_rate_hz;
        let count = (filtered.len() as f64 / step).floor() as usize;
        (0..count)
            .map(|i| {
                let idx = (i as f64 * step).floor() as usize;
                filtered[idx.min(filtered.len() - 1)]
            })
            .collect()
    }

    /// Quantises a value to integer LSB when the model quantises.
    pub fn quantize_value(&self, v: f64) -> f64 {
        if self.quantize {
            v.round()
        } else {
            v
        }
    }
}

impl Default for ImuModel {
    fn default() -> Self {
        Self::mpu9250()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_models_validate() {
        ImuModel::mpu9250().validate().unwrap();
        ImuModel::mpu6050().validate().unwrap();
    }

    #[test]
    fn mpu6050_is_noisier_than_mpu9250() {
        assert!(ImuModel::mpu6050().accel_noise_lsb > ImuModel::mpu9250().accel_noise_lsb);
    }

    #[test]
    fn sample_track_produces_expected_count() {
        let model = ImuModel::mpu9250();
        let one_second = vec![0.0; INTERNAL_RATE_HZ as usize];
        let out = model.sample_track(&one_second);
        assert_eq!(out.len(), 350);
    }

    #[test]
    fn sample_track_holds_values_without_dlpf() {
        let mut model = ImuModel::mpu9250();
        model.dlpf_cutoff_hz = None;
        // A ramp: with the DLPF off, the decimated output must be a
        // subsequence of the input (pure sample-and-hold).
        let ramp: Vec<f64> = (0..INTERNAL_RATE_HZ as usize).map(|i| i as f64).collect();
        let out = model.sample_track(&ramp);
        for w in out.windows(2) {
            assert!(w[1] > w[0]);
            assert!(w[0].fract() == 0.0);
        }
    }

    #[test]
    fn dlpf_attenuates_above_cutoff_content() {
        // A 600 Hz tone (above the 170 Hz DLPF) must come out far weaker
        // than a 60 Hz tone (below it).
        let model = ImuModel::mpu9250();
        let tone = |hz: f64| -> Vec<f64> {
            (0..INTERNAL_RATE_HZ as usize)
                .map(|i| (std::f64::consts::TAU * hz * i as f64 / INTERNAL_RATE_HZ).sin())
                .collect()
        };
        let rms = |xs: &[f64]| -> f64 {
            (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let low = model.sample_track(&tone(60.0));
        let high = model.sample_track(&tone(600.0));
        assert!(
            rms(&high[100..]) < 0.25 * rms(&low[100..]),
            "high band leaked: {} vs {}",
            rms(&high[100..]),
            rms(&low[100..])
        );
    }

    #[test]
    fn aliasing_is_present_for_tones_above_nyquist() {
        // A 300 Hz tone sampled at 350 Hz aliases to 50 Hz: the decimated
        // track must NOT be constant and must be periodic at ~50 Hz.
        // The DLPF is disabled so the raw aliasing path is exercised.
        let mut model = ImuModel::mpu9250();
        model.dlpf_cutoff_hz = None;
        let tone: Vec<f64> = (0..INTERNAL_RATE_HZ as usize)
            .map(|i| (2.0 * std::f64::consts::PI * 300.0 * i as f64 / INTERNAL_RATE_HZ).sin())
            .collect();
        let out = model.sample_track(&tone);
        let spectrum = mandipass_dsp_free_dominant(&out, 350.0);
        assert!((spectrum - 50.0).abs() < 4.0, "aliased to {spectrum} Hz");
    }

    // Minimal DFT peak-finder to avoid a dev-dependency cycle with the dsp
    // crate (which depends on nothing, but keeping imu-sim self-contained).
    fn mandipass_dsp_free_dominant(signal: &[f64], fs: f64) -> f64 {
        let n = signal.len();
        let mut best = (0.0f64, 0.0f64);
        for k in 1..n / 2 {
            let f = k as f64 * fs / n as f64;
            let (mut re, mut im) = (0.0, 0.0);
            for (i, &x) in signal.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64;
                re += x * ang.cos();
                im += x * ang.sin();
            }
            let mag = (re * re + im * im).sqrt();
            if mag > best.1 {
                best = (f, mag);
            }
        }
        best.0
    }

    #[test]
    fn quantize_rounds_when_enabled() {
        let mut model = ImuModel::mpu9250();
        assert_eq!(model.quantize_value(1.4), 1.0);
        model.quantize = false;
        assert_eq!(model.quantize_value(1.4), 1.4);
    }

    #[test]
    fn invalid_rate_is_rejected() {
        let mut model = ImuModel::mpu9250();
        model.sample_rate_hz = 0.0;
        assert!(model.validate().is_err());
    }
}
