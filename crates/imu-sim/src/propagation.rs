//! Attenuation of the vibration along the throat → mandible → ear path.
//!
//! §II.A's feasibility experiment (Fig. 1) taps the signal at three
//! locations and observes the standard deviation of `az` decaying:
//! roughly 3805 at the throat, 1050 at the mandible, 761 at the ear. Eq. 3
//! models the decay as `Y(w) = X(w)·e^{-αd}`; we apply the same
//! exponential law with per-user attenuation.

/// A tap point on the propagation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathLocation {
    /// At the vibration source (Fig. 1 location 1).
    Throat,
    /// Mid-path on the jaw bone (Fig. 1 location 2).
    Mandible,
    /// At the earphone (Fig. 1 location 3) — where MandiPass listens.
    Ear,
}

impl PathLocation {
    /// All locations in path order.
    pub const ALL: [PathLocation; 3] = [
        PathLocation::Throat,
        PathLocation::Mandible,
        PathLocation::Ear,
    ];
}

/// Per-user propagation model: attenuation coefficient `α` (1/m) and the
/// distances from the throat to each tap point (m).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagationModel {
    /// Attenuation coefficient `α`, 1/m.
    pub alpha: f64,
    /// Throat → mandible distance, m.
    pub throat_to_mandible_m: f64,
    /// Mandible → ear distance, m.
    pub mandible_to_ear_m: f64,
}

impl PropagationModel {
    /// A typical adult head with attenuation calibrated so the Fig. 1
    /// σ-ratios (≈ 1 : 0.28 : 0.20 from throat to ear) are reproduced.
    pub fn typical() -> Self {
        // e^{-α·d1} ≈ 0.28 at d1 = 0.09 m  ⇒ α ≈ 14.1 /m;
        // e^{-α·(d1+d2)} ≈ 0.20 at d1+d2 = 0.115 m.
        PropagationModel {
            alpha: 14.1,
            throat_to_mandible_m: 0.090,
            mandible_to_ear_m: 0.025,
        }
    }

    /// Samples a per-user model: head geometry and tissue attenuation vary
    /// a little between people.
    pub fn sample<R: mandipass_util::rand::Rng>(rng: &mut R) -> Self {
        let t = Self::typical();
        PropagationModel {
            alpha: t.alpha * rng.gen_range(0.85..1.15),
            throat_to_mandible_m: t.throat_to_mandible_m * rng.gen_range(0.9..1.1),
            mandible_to_ear_m: t.mandible_to_ear_m * rng.gen_range(0.9..1.1),
        }
    }

    /// Distance from the throat to `location`, m.
    pub fn distance_to(&self, location: PathLocation) -> f64 {
        match location {
            PathLocation::Throat => 0.0,
            PathLocation::Mandible => self.throat_to_mandible_m,
            PathLocation::Ear => self.throat_to_mandible_m + self.mandible_to_ear_m,
        }
    }

    /// Amplitude gain `e^{-α·d}` at `location` (1.0 at the throat).
    pub fn gain_at(&self, location: PathLocation) -> f64 {
        (-self.alpha * self.distance_to(location)).exp()
    }

    /// Applies the attenuation to a waveform, returning the signal as
    /// observed at `location`.
    pub fn attenuate(&self, signal: &[f64], location: PathLocation) -> Vec<f64> {
        let g = self.gain_at(location);
        signal.iter().map(|&x| x * g).collect()
    }
}

impl Default for PropagationModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_util::rand::rngs::StdRng;
    use mandipass_util::rand::SeedableRng;

    #[test]
    fn gain_decays_along_path() {
        let p = PropagationModel::typical();
        let g: Vec<f64> = PathLocation::ALL.iter().map(|&l| p.gain_at(l)).collect();
        assert_eq!(g[0], 1.0);
        assert!(g[0] > g[1] && g[1] > g[2]);
    }

    #[test]
    fn typical_ratios_match_figure_one() {
        // Paper Fig. 1: σ = 3805 / 1050 / 761 ⇒ ratios 1 : 0.276 : 0.200.
        let p = PropagationModel::typical();
        let mandible = p.gain_at(PathLocation::Mandible);
        let ear = p.gain_at(PathLocation::Ear);
        assert!(
            (mandible - 1050.0 / 3805.0).abs() < 0.03,
            "mandible gain {mandible}"
        );
        assert!((ear - 761.0 / 3805.0).abs() < 0.03, "ear gain {ear}");
    }

    #[test]
    fn attenuate_scales_uniformly() {
        let p = PropagationModel::typical();
        let sig = vec![1.0, -2.0, 3.0];
        let out = p.attenuate(&sig, PathLocation::Ear);
        let g = p.gain_at(PathLocation::Ear);
        for (o, s) in out.iter().zip(&sig) {
            assert!((o - s * g).abs() < 1e-12);
        }
    }

    #[test]
    fn sampled_models_stay_near_typical() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = PropagationModel::sample(&mut rng);
            let ear = p.gain_at(PathLocation::Ear);
            assert!((0.1..0.35).contains(&ear), "ear gain {ear}");
        }
    }

    #[test]
    fn distances_accumulate() {
        let p = PropagationModel::typical();
        assert!(
            (p.distance_to(PathLocation::Ear) - (p.throat_to_mandible_m + p.mandible_to_ear_m))
                .abs()
                < 1e-15
        );
    }
}
