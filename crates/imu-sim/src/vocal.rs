//! Glottal excitation model — the "EMM" voicing that drives the mandible.
//!
//! The paper treats the excitation parameters (`F_P(0)`, `F_N(0)`,
//! `Δt1`, `Δt2`, fundamental frequency) as identity-irrelevant but
//! *intra-user stable* nuisance terms: a person's speaking habit and vocal
//! fundamental remain stable after puberty, especially on a single-tone
//! hum. We model them as per-user constants with small per-recording
//! jitter, plus tone modifiers for the §VII.D experiment.

use mandipass_util::rand::Rng;
use mandipass_util::rand_distr::{Distribution, Normal};

use crate::error::SimError;

/// Biological sex of a simulated volunteer; only used to condition the
/// vocal fundamental frequency distribution (the paper checks VSR fairness
/// across 28 male and 6 female volunteers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sex {
    /// Male: fundamental roughly 105-145 Hz.
    Male,
    /// Female: fundamental roughly 170-225 Hz.
    Female,
}

/// Tone modifier for the §VII.D tone-of-voicing experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tone {
    /// The user's natural hum.
    Normal,
    /// Intentionally raised tone (~+15 % fundamental, louder).
    High,
    /// Intentionally lowered tone (~−12 % fundamental, softer).
    Low,
}

impl Tone {
    /// Multiplier applied to the fundamental frequency. An intentional
    /// tone change while humming the same closed-mouth "EMM" spans about
    /// a semitone.
    pub fn frequency_factor(self) -> f64 {
        match self {
            Tone::Normal => 1.0,
            Tone::High => 1.07,
            Tone::Low => 0.94,
        }
    }

    /// Multiplier applied to the driving-force amplitude.
    pub fn amplitude_factor(self) -> f64 {
        match self {
            Tone::Normal => 1.0,
            Tone::High => 1.12,
            Tone::Low => 0.90,
        }
    }
}

/// Per-user voicing profile for the "EMM" hum.
#[derive(Debug, Clone, PartialEq)]
pub struct VocalProfile {
    /// Fundamental frequency of vocal-fold vibration, Hz.
    pub f0_hz: f64,
    /// Constant positive-direction driving force `F_P(0)` (arbitrary force
    /// units; the sensor scale maps them to raw LSB).
    pub force_positive: f64,
    /// Constant negative-direction driving force `F_N(0)`.
    pub force_negative: f64,
    /// Fraction of the vibration period spent in the positive phase
    /// (`Δt1 / (Δt1 + Δt2)`).
    pub positive_phase_fraction: f64,
    /// Relative amplitudes of glottal harmonics 1, 2, 3, … (a personal
    /// timbre; normalised so harmonic 1 is 1.0).
    pub harmonics: Vec<f64>,
    /// Onset attack duration in seconds — how quickly this user's hum
    /// reaches full amplitude (a stable speaking habit).
    pub attack_seconds: f64,
}

impl VocalProfile {
    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive frequency,
    /// forces or attack, or an out-of-range phase fraction.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.f0_hz.is_finite() && self.f0_hz > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "f0_hz",
                value: self.f0_hz,
            });
        }
        if self.force_positive.is_nan() || self.force_positive <= 0.0 {
            return Err(SimError::InvalidParameter {
                name: "force_positive",
                value: self.force_positive,
            });
        }
        if self.force_negative.is_nan() || self.force_negative <= 0.0 {
            return Err(SimError::InvalidParameter {
                name: "force_negative",
                value: self.force_negative,
            });
        }
        if !(self.positive_phase_fraction > 0.0 && self.positive_phase_fraction < 1.0) {
            return Err(SimError::InvalidParameter {
                name: "positive_phase_fraction",
                value: self.positive_phase_fraction,
            });
        }
        if self.attack_seconds.is_nan() || self.attack_seconds <= 0.0 {
            return Err(SimError::InvalidParameter {
                name: "attack_seconds",
                value: self.attack_seconds,
            });
        }
        Ok(())
    }

    /// Samples a voicing profile conditioned on `sex`.
    pub fn sample<R: Rng>(rng: &mut R, sex: Sex) -> Self {
        let f0 = match sex {
            Sex::Male => rng.gen_range(105.0..145.0),
            Sex::Female => rng.gen_range(170.0..225.0),
        };
        let force = rng.gen_range(0.8..1.3);
        // Phase asymmetry: the positive/negative driving forces differ.
        let asym = rng.gen_range(0.8..1.25);
        let n_harmonics = 6;
        let rolloff: f64 = rng.gen_range(0.35..0.85);
        let harmonics: Vec<f64> = (0..n_harmonics)
            .map(|h| {
                let base: f64 = rolloff.powi(h);
                base * rng.gen_range(0.75..1.25)
            })
            .collect();
        VocalProfile {
            f0_hz: f0,
            force_positive: force,
            force_negative: force * asym,
            positive_phase_fraction: rng.gen_range(0.38..0.62),
            harmonics,
            attack_seconds: rng.gen_range(0.025..0.09),
        }
    }

    /// A per-recording realisation of this profile: small jitter in
    /// fundamental and force (humans do not hum identically twice), plus
    /// the tone modifier.
    pub fn session_instance<R: Rng>(&self, rng: &mut R, tone: Tone) -> VocalProfile {
        self.session_instance_scaled(rng, tone, 1.0)
    }

    /// [`VocalProfile::session_instance`] with the jitter magnitudes
    /// multiplied by `scale` (0 disables session variability; used by the
    /// simulator-ablation experiments).
    pub fn session_instance_scaled<R: Rng>(
        &self,
        rng: &mut R,
        tone: Tone,
        scale: f64,
    ) -> VocalProfile {
        let jitter = |rng: &mut R, v: f64, sigma: f64| {
            if sigma * scale <= 0.0 {
                return v;
            }
            v * (1.0
                + Normal::new(0.0, sigma * scale)
                    .expect("valid normal")
                    .sample(rng))
        };
        VocalProfile {
            f0_hz: jitter(rng, self.f0_hz, 0.0025) * tone.frequency_factor(),
            force_positive: jitter(rng, self.force_positive, 0.04) * tone.amplitude_factor(),
            force_negative: jitter(rng, self.force_negative, 0.04) * tone.amplitude_factor(),
            positive_phase_fraction: (self.positive_phase_fraction
                + Normal::new(0.0, (0.004 * scale).max(1e-12))
                    .expect("valid normal")
                    .sample(rng))
            .clamp(0.3, 0.7),
            harmonics: self
                .harmonics
                .iter()
                .map(|&h| (jitter(rng, h.max(1e-6), 0.02)).max(0.0))
                .collect(),
            attack_seconds: jitter(rng, self.attack_seconds, 0.025).clamp(0.015, 0.12),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_util::rand::rngs::StdRng;
    use mandipass_util::rand::SeedableRng;

    #[test]
    fn sampled_profiles_validate() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            VocalProfile::sample(&mut rng, Sex::Male)
                .validate()
                .unwrap();
            VocalProfile::sample(&mut rng, Sex::Female)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn fundamental_bands_respect_sex() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let m = VocalProfile::sample(&mut rng, Sex::Male);
            let f = VocalProfile::sample(&mut rng, Sex::Female);
            assert!((105.0..145.0).contains(&m.f0_hz));
            assert!((170.0..225.0).contains(&f.f0_hz));
        }
    }

    #[test]
    fn session_jitter_is_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = VocalProfile::sample(&mut rng, Sex::Male);
        for _ in 0..50 {
            let inst = base.session_instance(&mut rng, Tone::Normal);
            assert!((inst.f0_hz - base.f0_hz).abs() / base.f0_hz < 0.05);
            assert!((inst.force_positive - base.force_positive).abs() / base.force_positive < 0.3);
        }
    }

    #[test]
    fn tone_shifts_fundamental() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = VocalProfile::sample(&mut rng, Sex::Female);
        let high = base.session_instance(&mut rng, Tone::High);
        let low = base.session_instance(&mut rng, Tone::Low);
        assert!(high.f0_hz > base.f0_hz * 1.04);
        assert!(low.f0_hz < base.f0_hz * 0.97);
    }

    #[test]
    fn harmonics_roll_off() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = VocalProfile::sample(&mut rng, Sex::Male);
        assert!(p.harmonics[0] > *p.harmonics.last().unwrap());
    }

    #[test]
    fn validate_catches_bad_fields() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = VocalProfile::sample(&mut rng, Sex::Male);
        p.positive_phase_fraction = 1.2;
        assert!(p.validate().is_err());
        p.positive_phase_fraction = 0.5;
        p.f0_hz = -5.0;
        assert!(p.validate().is_err());
    }
}
