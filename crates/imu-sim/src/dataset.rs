//! Labelled recording corpora — the simulator's stand-in for the paper's
//! 23 408-array collection campaign.
//!
//! A [`DatasetSpec`] describes a collection campaign (which users, which
//! conditions, how many probes each); [`RecordingDataset`] holds the
//! resulting labelled recordings and can be serialised for offline reuse,
//! so expensive corpora are generated once and shared between
//! experiments.

use crate::conditions::Condition;
use crate::population::Population;
use crate::recorder::{Recorder, Recording};

/// A collection campaign description.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Number of probes collected per user and condition.
    pub probes_per_user: usize,
    /// The conditions each user records under.
    pub conditions: Vec<Condition>,
    /// Base seed; sessions derive from it deterministically.
    pub seed: u64,
}

impl DatasetSpec {
    /// A normal-condition campaign of `probes_per_user` probes.
    pub fn normal(probes_per_user: usize, seed: u64) -> Self {
        DatasetSpec {
            probes_per_user,
            conditions: vec![Condition::Normal],
            seed,
        }
    }

    /// The paper's robustness campaign: normal plus every §VII condition.
    pub fn robustness(probes_per_user: usize, seed: u64) -> Self {
        DatasetSpec {
            probes_per_user,
            conditions: vec![
                Condition::Normal,
                Condition::Lollipop,
                Condition::Water,
                Condition::Walk,
                Condition::Run,
                Condition::ToneHigh,
                Condition::ToneLow,
                Condition::Orientation(90),
                Condition::Orientation(180),
                Condition::Orientation(270),
                Condition::LeftEar,
            ],
            seed,
        }
    }
}

/// One labelled recording of a corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledRecording {
    /// The user id (dense label).
    pub user_id: u32,
    /// The condition recorded under.
    pub condition: Condition,
    /// Session index within `(user, condition)`.
    pub session: u32,
    /// The raw six-axis recording.
    pub recording: Recording,
}

/// A labelled recording corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingDataset {
    spec: DatasetSpec,
    items: Vec<LabelledRecording>,
}

impl RecordingDataset {
    /// Runs the collection campaign over `population` with `recorder`.
    pub fn collect(population: &Population, recorder: &Recorder, spec: DatasetSpec) -> Self {
        let mut items =
            Vec::with_capacity(population.len() * spec.conditions.len() * spec.probes_per_user);
        for user in population.users() {
            for (c_idx, &condition) in spec.conditions.iter().enumerate() {
                for session in 0..spec.probes_per_user {
                    let session_seed =
                        spec.seed ^ ((session as u64) << 16) ^ ((c_idx as u64) << 48) ^ 0x6461_7461;
                    items.push(LabelledRecording {
                        user_id: user.id,
                        condition,
                        session: session as u32,
                        recording: recorder.record(user, condition, session_seed),
                    });
                }
            }
        }
        RecordingDataset { spec, items }
    }

    /// The campaign description.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// All labelled recordings.
    pub fn items(&self) -> &[LabelledRecording] {
        &self.items
    }

    /// Number of recordings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Recordings of one user, across all conditions.
    pub fn by_user(&self, user_id: u32) -> impl Iterator<Item = &LabelledRecording> {
        self.items.iter().filter(move |i| i.user_id == user_id)
    }

    /// Recordings made under one condition, across all users.
    pub fn by_condition(&self, condition: Condition) -> impl Iterator<Item = &LabelledRecording> {
        self.items.iter().filter(move |i| i.condition == condition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> RecordingDataset {
        let pop = Population::generate(3, 61);
        RecordingDataset::collect(&pop, &Recorder::default(), DatasetSpec::normal(4, 9))
    }

    #[test]
    fn collects_expected_count() {
        let ds = small_corpus();
        assert_eq!(ds.len(), 3 * 4);
        assert!(!ds.is_empty());
        assert_eq!(ds.spec().probes_per_user, 4);
    }

    #[test]
    fn collection_is_deterministic() {
        let pop = Population::generate(2, 62);
        let a = RecordingDataset::collect(&pop, &Recorder::default(), DatasetSpec::normal(2, 1));
        let b = RecordingDataset::collect(&pop, &Recorder::default(), DatasetSpec::normal(2, 1));
        assert_eq!(a, b);
    }

    #[test]
    fn sessions_differ_within_user() {
        let ds = small_corpus();
        let user0: Vec<_> = ds.by_user(0).collect();
        assert_eq!(user0.len(), 4);
        assert_ne!(user0[0].recording, user0[1].recording);
    }

    #[test]
    fn filters_select_correct_subsets() {
        let pop = Population::generate(2, 63);
        let spec = DatasetSpec {
            probes_per_user: 2,
            conditions: vec![Condition::Normal, Condition::Walk],
            seed: 3,
        };
        let ds = RecordingDataset::collect(&pop, &Recorder::default(), spec);
        assert_eq!(ds.len(), 2 * 2 * 2);
        assert_eq!(ds.by_condition(Condition::Walk).count(), 4);
        assert!(ds
            .by_condition(Condition::Walk)
            .all(|i| i.recording.condition() == Condition::Walk));
        assert_eq!(ds.by_user(1).count(), 4);
    }

    #[test]
    fn robustness_spec_covers_all_paper_conditions() {
        let spec = DatasetSpec::robustness(1, 0);
        assert_eq!(spec.conditions.len(), 11);
        assert!(spec.conditions.contains(&Condition::LeftEar));
        assert!(spec.conditions.contains(&Condition::Orientation(270)));
    }
}
