//! Recording conditions covering every robustness experiment in §VII.
//!
//! Each condition bundles the physical modifiers the recorder applies:
//! gait interference (walk/run), mandible damping changes (food in the
//! mouth), tone shifts, earphone rotation, and ear-side mirroring.

use crate::motion::Activity;
use crate::vocal::Tone;

/// Which ear the earphone is worn in (§VII.B's ear-side experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EarSide {
    /// The paper's default collection side.
    Right,
    /// Mirror-geometry side; VSR stays high (98.02 % in the paper).
    Left,
}

/// A recording condition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum Condition {
    /// Quiet, static, natural tone, right ear — the default.
    #[default]
    Normal,
    /// A lollipop in the mouth (Fig. 12(a)): slightly increased damping.
    Lollipop,
    /// Water in the mouth (Fig. 12(b)): added mass and damping.
    Water,
    /// Walking while authenticating (Fig. 12(c)).
    Walk,
    /// Running while authenticating (Fig. 12(d)).
    Run,
    /// Intentionally raised tone (Fig. 14).
    ToneHigh,
    /// Intentionally lowered tone (Fig. 14).
    ToneLow,
    /// Earphone rotated about the ear canal by the given degrees
    /// (Fig. 13 uses 0/90/180/270).
    Orientation(i32),
    /// Worn in the left ear (§VII.B).
    LeftEar,
}

impl Condition {
    /// Locomotion activity implied by the condition.
    pub fn activity(self) -> Activity {
        match self {
            Condition::Walk => Activity::Walk,
            Condition::Run => Activity::Run,
            _ => Activity::Static,
        }
    }

    /// Voicing tone implied by the condition.
    pub fn tone(self) -> Tone {
        match self {
            Condition::ToneHigh => Tone::High,
            Condition::ToneLow => Tone::Low,
            _ => Tone::Normal,
        }
    }

    /// Earphone rotation about the ear canal, degrees.
    pub fn rotation_degrees(self) -> f64 {
        match self {
            Condition::Orientation(deg) => f64::from(deg),
            _ => 0.0,
        }
    }

    /// Which ear the probe is collected from.
    pub fn ear_side(self) -> EarSide {
        match self {
            Condition::LeftEar => EarSide::Left,
            _ => EarSide::Right,
        }
    }

    /// Multiplier on both damping factors from food/drink in the mouth.
    ///
    /// A lollipop stiffens the oral cavity slightly; held water adds
    /// viscous damping. Both effects are small — the paper measures a
    /// negligible impact, which our magnitudes preserve.
    pub fn damping_factor(self) -> f64 {
        match self {
            Condition::Lollipop => 1.06,
            Condition::Water => 1.10,
            _ => 1.0,
        }
    }

    /// Additional mandible-component mass from food/drink, as a fraction.
    pub fn mass_factor(self) -> f64 {
        match self {
            Condition::Lollipop => 1.015,
            Condition::Water => 1.03,
            _ => 1.0,
        }
    }

    /// The four orientations of the Fig. 13 experiment.
    pub fn orientation_groups() -> [Condition; 4] {
        [
            Condition::Orientation(0),
            Condition::Orientation(90),
            Condition::Orientation(180),
            Condition::Orientation(270),
        ]
    }
}

impl std::fmt::Display for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Condition::Normal => write!(f, "normal"),
            Condition::Lollipop => write!(f, "lollipop"),
            Condition::Water => write!(f, "water"),
            Condition::Walk => write!(f, "walk"),
            Condition::Run => write!(f, "run"),
            Condition::ToneHigh => write!(f, "tone-high"),
            Condition::ToneLow => write!(f, "tone-low"),
            Condition::Orientation(deg) => write!(f, "orientation-{deg}"),
            Condition::LeftEar => write!(f, "left-ear"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_condition_has_no_modifiers() {
        let c = Condition::Normal;
        assert_eq!(c.activity(), Activity::Static);
        assert_eq!(c.tone(), Tone::Normal);
        assert_eq!(c.rotation_degrees(), 0.0);
        assert_eq!(c.ear_side(), EarSide::Right);
        assert_eq!(c.damping_factor(), 1.0);
        assert_eq!(c.mass_factor(), 1.0);
    }

    #[test]
    fn motion_conditions_map_to_activities() {
        assert_eq!(Condition::Walk.activity(), Activity::Walk);
        assert_eq!(Condition::Run.activity(), Activity::Run);
    }

    #[test]
    fn tone_conditions_map_to_tones() {
        assert_eq!(Condition::ToneHigh.tone(), Tone::High);
        assert_eq!(Condition::ToneLow.tone(), Tone::Low);
    }

    #[test]
    fn food_effects_are_small() {
        for c in [Condition::Lollipop, Condition::Water] {
            assert!(c.damping_factor() > 1.0 && c.damping_factor() < 1.2);
            assert!(c.mass_factor() > 1.0 && c.mass_factor() < 1.05);
        }
    }

    #[test]
    fn orientation_groups_are_quarter_turns() {
        let degs: Vec<f64> = Condition::orientation_groups()
            .iter()
            .map(|c| c.rotation_degrees())
            .collect();
        assert_eq!(degs, vec![0.0, 90.0, 180.0, 270.0]);
    }

    #[test]
    fn left_ear_changes_side_only() {
        let c = Condition::LeftEar;
        assert_eq!(c.ear_side(), EarSide::Left);
        assert_eq!(c.activity(), Activity::Static);
    }

    #[test]
    fn display_names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<String> = [
            Condition::Normal,
            Condition::Lollipop,
            Condition::Water,
            Condition::Walk,
            Condition::Run,
            Condition::ToneHigh,
            Condition::ToneLow,
            Condition::Orientation(90),
            Condition::LeftEar,
        ]
        .iter()
        .map(|c| c.to_string())
        .collect();
        assert_eq!(names.len(), 9);
    }
}
