//! End-to-end recording assembly: physics → propagation → coupling →
//! sensor → noise, under a chosen [`Condition`].

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::{Rng, SeedableRng};

use crate::conditions::{Condition, EarSide};
use crate::error::SimError;
use crate::motion::gait_interference;
use crate::noise::{add_white_noise, inject_outliers};
use crate::orientation::Rotation;
use crate::physio::MandibleProfile;
use crate::population::UserProfile;
use crate::propagation::PathLocation;
use crate::sensor::ImuModel;
use crate::vibration::{simulate_vibration, INTERNAL_RATE_HZ};

/// A raw six-axis IMU recording of one authentication attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    sample_rate_hz: f64,
    axes: Vec<Vec<f64>>, // 6 × n, paper axis order
    condition: Condition,
    user_id: u32,
}

impl Recording {
    /// Assembles a recording from raw parts, validating its shape: six
    /// non-empty axis tracks of equal length and a finite positive
    /// sample rate. Sample *values* are not validated — fault injection
    /// deliberately produces non-finite and saturated samples, and the
    /// downstream quality gate must be able to see them.
    ///
    /// # Errors
    ///
    /// [`SimError::MalformedRecording`] when the shape is invalid,
    /// [`SimError::InvalidParameter`] for a bad sample rate.
    pub fn from_parts(
        sample_rate_hz: f64,
        axes: Vec<Vec<f64>>,
        condition: Condition,
        user_id: u32,
    ) -> Result<Self, SimError> {
        if !(sample_rate_hz.is_finite() && sample_rate_hz > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "sample_rate_hz",
                value: sample_rate_hz,
            });
        }
        if axes.len() != 6 {
            return Err(SimError::MalformedRecording {
                reason: "expected exactly six axis tracks",
            });
        }
        let n = axes[0].len();
        if n == 0 {
            return Err(SimError::MalformedRecording {
                reason: "axis tracks are empty",
            });
        }
        if axes.iter().any(|a| a.len() != n) {
            return Err(SimError::MalformedRecording {
                reason: "axis tracks have unequal lengths",
            });
        }
        Ok(Recording {
            sample_rate_hz,
            axes,
            condition,
            user_id,
        })
    }

    /// Output sample rate, Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// The six axis tracks in paper order (`ax, ay, az, gx, gy, gz`).
    pub fn axes(&self) -> &[Vec<f64>] {
        &self.axes
    }

    /// The `az` track the paper uses for vibration detection.
    pub fn az(&self) -> &[f64] {
        &self.axes[2]
    }

    /// The condition the recording was made under.
    pub fn condition(&self) -> Condition {
        self.condition
    }

    /// The id of the recorded user.
    pub fn user_id(&self) -> u32 {
        self.user_id
    }

    /// Number of samples per axis.
    pub fn len(&self) -> usize {
        self.axes[0].len()
    }

    /// Whether the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.axes[0].is_empty()
    }
}

/// Per-session variability switches. Every field defaults to realistic
/// (fully enabled); the simulator-ablation experiments turn individual
/// sources off to attribute intra-user variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionJitter {
    /// Scale of the vocal session jitter (f0, force, timbre; 1.0 = real).
    pub vocal: f64,
    /// Scale of the re-wearing jitter (coupling geometry and pose bias).
    pub wear: f64,
    /// Whether the session start offset varies between recordings.
    pub start_offset: bool,
    /// Whether sensor white noise is added.
    pub sensor_noise: bool,
    /// Whether hardware outlier spikes are injected.
    pub outliers: bool,
}

impl Default for SessionJitter {
    fn default() -> Self {
        SessionJitter {
            vocal: 1.0,
            wear: 1.0,
            start_offset: true,
            sensor_noise: true,
            outliers: true,
        }
    }
}

impl SessionJitter {
    /// Everything off: recordings of a user differ only through the
    /// explicit condition (used to sanity-check the pipeline).
    pub fn none() -> Self {
        SessionJitter {
            vocal: 0.0,
            wear: 0.0,
            start_offset: false,
            sensor_noise: false,
            outliers: false,
        }
    }
}

/// Recording parameters: timings and the sensor in use.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    /// The IMU model to record with.
    pub imu: ImuModel,
    /// Silence before the hum starts, seconds (randomised per recording
    /// so the detector's alignment is actually exercised).
    pub silence_seconds: f64,
    /// Duration of the "EMM" hum, seconds. The paper's probe is ~0.2 s of
    /// signal; we record a little more so the detector always has its `n`
    /// samples after the start.
    pub voicing_seconds: f64,
    /// Where on the propagation path the sensor sits (the ear for the
    /// real system; the Fig. 1 experiment taps the other locations).
    pub location: PathLocation,
    /// Session-variability switches (all enabled by default).
    pub jitter: SessionJitter,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            imu: ImuModel::mpu9250(),
            silence_seconds: 0.18,
            voicing_seconds: 0.42,
            location: PathLocation::Ear,
            jitter: SessionJitter::default(),
        }
    }
}

impl Recorder {
    /// Records one authentication attempt of `user` under `condition`.
    ///
    /// `session_seed` individualises the recording (per-session vocal
    /// jitter, re-wearing, sensor noise); the same `(user, condition,
    /// seed)` triple reproduces the identical recording.
    pub fn record(&self, user: &UserProfile, condition: Condition, session_seed: u64) -> Recording {
        let mut rng = StdRng::seed_from_u64(
            session_seed ^ (u64::from(user.id) << 32) ^ 0x6d70_7265_636f_7264,
        );

        // --- Session realisations of the stable per-user traits. ---
        let vocal =
            user.vocal
                .session_instance_scaled(&mut rng, condition.tone(), self.jitter.vocal);
        let mandible = MandibleProfile {
            mass_kg: user.mandible.mass_kg * condition.mass_factor(),
            c1: user.mandible.c1 * condition.damping_factor(),
            c2: user.mandible.c2 * condition.damping_factor(),
            k1: user.mandible.k1,
            k2: user.mandible.k2,
        };
        let base_coupling = match condition.ear_side() {
            EarSide::Right => user.coupling,
            EarSide::Left => user.coupling_left,
        };
        let coupling = base_coupling.rewear_scaled(&mut rng, self.jitter.wear);
        let bias = user.bias.rewear_scaled(&mut rng, self.jitter.wear);

        // --- High-rate physics, then attenuation to the tap location. ---
        let voicing = simulate_vibration(&mandible, &vocal, self.voicing_seconds);
        let gain = user.propagation.gain_at(self.location) * user.source_scale_lsb;
        let accel_track: Vec<f64> = voicing.iter().map(|s| s.acceleration * gain).collect();
        // Gyro couples to the angular component; velocity is the right
        // kinematic quantity, rescaled so gyro LSBs are comparable.
        let omega = mandible.natural_angular_frequency();
        let gyro_track: Vec<f64> = voicing
            .iter()
            .map(|s| s.velocity * gain * omega * 0.35)
            .collect();

        // --- Silence prefix. Real sessions start at an arbitrary offset;
        // the detector then snaps the segment to its 10-sample window
        // grid, so the *effective* alignment jitter is the offset of the
        // voicing onset inside one window. We model the session start in
        // window-grid units plus a sub-sample residual: the grid part
        // exercises the detector across different recording lengths, the
        // residual keeps probes from being bit-identical in phase.
        let window_internal = (10.0 / self.imu.sample_rate_hz * INTERNAL_RATE_HZ).round() as usize;
        let base_windows = (self.silence_seconds * self.imu.sample_rate_hz / 10.0)
            .round()
            .max(1.0) as usize;
        let (extra_windows, residual) = if self.jitter.start_offset {
            (
                rng.gen_range(0..4),
                rng.gen_range(0..(INTERNAL_RATE_HZ / self.imu.sample_rate_hz) as usize),
            )
        } else {
            (0, 0)
        };
        let n_windows = base_windows + extra_windows;
        let silence_high = vec![0.0f64; n_windows * window_internal + residual];

        // --- Decimate to the IMU rate (sample-and-hold, no anti-alias). --
        let mut accel_full = silence_high.clone();
        accel_full.extend_from_slice(&accel_track);
        let mut gyro_full = silence_high;
        gyro_full.extend_from_slice(&gyro_track);
        let accel_sampled = self.imu.sample_track(&accel_full);
        let gyro_sampled = self.imu.sample_track(&gyro_full);
        let n = accel_sampled.len().min(gyro_sampled.len());

        // --- Project onto the six axes. ---
        let mut accel_axes: [Vec<f64>; 3] = [
            accel_sampled[..n]
                .iter()
                .map(|&v| v * coupling.accel[0])
                .collect(),
            accel_sampled[..n]
                .iter()
                .map(|&v| v * coupling.accel[1])
                .collect(),
            accel_sampled[..n]
                .iter()
                .map(|&v| v * coupling.accel[2])
                .collect(),
        ];
        let mut gyro_axes: [Vec<f64>; 3] = [
            gyro_sampled[..n]
                .iter()
                .map(|&v| v * coupling.gyro[0])
                .collect(),
            gyro_sampled[..n]
                .iter()
                .map(|&v| v * coupling.gyro[1])
                .collect(),
            gyro_sampled[..n]
                .iter()
                .map(|&v| v * coupling.gyro[2])
                .collect(),
        ];

        // --- Earphone orientation (rotates the sensed vectors). ---
        let deg = condition.rotation_degrees();
        if deg != 0.0 {
            let rot = Rotation::about_ear_canal(deg);
            rot.apply_tracks(&mut accel_axes);
            rot.apply_tracks(&mut gyro_axes);
        }

        // --- Gait interference, bias, noise, outliers, quantisation. ---
        let fs = self.imu.sample_rate_hz;
        let activity = condition.activity();
        let mut axes = Vec::with_capacity(6);
        for (idx, mut track) in accel_axes.into_iter().chain(gyro_axes).enumerate() {
            let is_accel = idx < 3;
            if is_accel {
                let gait_coupling = rng.gen_range(0.5..1.0);
                let gait = gait_interference(activity, n, fs, gait_coupling, &mut rng);
                for (t, g) in track.iter_mut().zip(&gait) {
                    *t += g;
                }
            }
            let dc = bias.for_axis(idx);
            for t in track.iter_mut() {
                *t += dc;
            }
            if self.jitter.sensor_noise {
                let sigma = if is_accel {
                    self.imu.accel_noise_lsb
                } else {
                    self.imu.gyro_noise_lsb
                };
                add_white_noise(&mut track, sigma, &mut rng);
            }
            if self.jitter.outliers {
                inject_outliers(
                    &mut track,
                    self.imu.outlier_probability,
                    self.imu.outlier_amplitude_lsb,
                    &mut rng,
                );
            }
            for t in track.iter_mut() {
                *t = self.imu.quantize_value(*t);
            }
            axes.push(track);
        }

        Recording {
            sample_rate_hz: fs,
            axes,
            condition,
            user_id: user.id,
        }
    }

    /// Records the Fig. 1 feasibility experiment: the same voicing tapped
    /// at the three path locations. Returns recordings in path order.
    pub fn record_at_all_locations(&self, user: &UserProfile, session_seed: u64) -> Vec<Recording> {
        PathLocation::ALL
            .iter()
            .map(|&location| {
                let tapped = Recorder {
                    location,
                    ..self.clone()
                };
                tapped.record(user, Condition::Normal, session_seed)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;

    fn setup() -> (Population, Recorder) {
        (Population::generate(4, 11), Recorder::default())
    }

    fn std_of(xs: &[f64]) -> f64 {
        let m: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
    }

    #[test]
    fn recording_has_six_axes_and_enough_samples() {
        let (pop, rec) = setup();
        let r = rec.record(&pop.users()[0], Condition::Normal, 1);
        assert_eq!(r.axes().len(), 6);
        // 0.18·0.7 s silence + 0.42 s voicing at 350 Hz ≥ 60 + margin.
        assert!(r.len() > 150, "{} samples", r.len());
        assert!(!r.is_empty());
        assert_eq!(r.sample_rate_hz(), 350.0);
        assert_eq!(r.user_id(), 0);
        assert_eq!(r.condition(), Condition::Normal);
    }

    #[test]
    fn recording_is_deterministic_per_seed() {
        let (pop, rec) = setup();
        let a = rec.record(&pop.users()[1], Condition::Normal, 5);
        let b = rec.record(&pop.users()[1], Condition::Normal, 5);
        assert_eq!(a, b);
        let c = rec.record(&pop.users()[1], Condition::Normal, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn az_burst_exceeds_detection_threshold() {
        let (pop, rec) = setup();
        for user in pop.users() {
            let r = rec.record(user, Condition::Normal, 3);
            // Somewhere in the recording a 10-sample window of az must
            // have σ > 250 (the paper's start rule).
            let max_std = r
                .az()
                .chunks(10)
                .filter(|c| c.len() == 10)
                .map(std_of)
                .fold(0.0f64, f64::max);
            assert!(max_std > 250.0, "user {} max window σ {max_std}", user.id);
        }
    }

    #[test]
    fn silence_prefix_stays_below_threshold() {
        let (pop, rec) = setup();
        let r = rec.record(&pop.users()[0], Condition::Normal, 4);
        // The first ~0.1 s is silence: windows there must not trigger.
        let quiet = &r.az()[..35];
        for c in quiet.chunks(10).filter(|c| c.len() == 10) {
            assert!(std_of(c) < 250.0, "silence window σ {}", std_of(c));
        }
    }

    #[test]
    fn axes_start_from_different_baselines() {
        let (pop, rec) = setup();
        let r = rec.record(&pop.users()[2], Condition::Normal, 5);
        let starts: Vec<f64> = r
            .axes()
            .iter()
            .map(|a| a[..20].iter().sum::<f64>() / 20.0)
            .collect();
        let spread = starts.iter().cloned().fold(f64::MIN, f64::max)
            - starts.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 500.0, "baseline spread {spread}");
    }

    #[test]
    fn figure_one_attenuation_ordering() {
        let (pop, rec) = setup();
        let locs = rec.record_at_all_locations(&pop.users()[0], 6);
        let stds: Vec<f64> = locs.iter().map(|r| std_of(r.az())).collect();
        assert!(
            stds[0] > stds[1] && stds[1] > stds[2],
            "σ along path: {stds:?}"
        );
    }

    #[test]
    fn walk_does_not_false_trigger_before_voicing() {
        let (pop, mut rec) = setup();
        // Outlier spikes are a separate (MAD-cleaned) interference source
        // and can land in any window; this test isolates gait energy.
        rec.jitter.outliers = false;
        for seed in 0..5 {
            let r = rec.record(&pop.users()[0], Condition::Walk, seed);
            let quiet = &r.az()[..30];
            for c in quiet.chunks(10).filter(|c| c.len() == 10) {
                assert!(std_of(c) < 250.0, "walk false trigger σ {}", std_of(c));
            }
        }
    }

    #[test]
    fn orientation_rotates_but_preserves_magnitude() {
        let (pop, rec) = setup();
        let normal = rec.record(&pop.users()[0], Condition::Normal, 9);
        let rotated = rec.record(&pop.users()[0], Condition::Orientation(90), 9);
        // The per-sample 3-vector norms of the *vibration* match before
        // noise, so overall accel energy should be comparable (within
        // noise and bias differences).
        let energy = |r: &Recording| -> f64 { (0..3).map(|a| std_of(&r.axes()[a])).sum::<f64>() };
        let en = energy(&normal);
        let er = energy(&rotated);
        assert!((en / er - 1.0).abs() < 0.8, "energy {en} vs {er}");
    }

    #[test]
    fn quantisation_yields_integer_samples() {
        let (pop, rec) = setup();
        let r = rec.record(&pop.users()[3], Condition::Normal, 10);
        for axis in r.axes() {
            assert!(axis.iter().all(|v| v.fract() == 0.0));
        }
    }

    #[test]
    fn different_users_produce_different_recordings() {
        let (pop, rec) = setup();
        let a = rec.record(&pop.users()[0], Condition::Normal, 7);
        let b = rec.record(&pop.users()[1], Condition::Normal, 7);
        assert_ne!(a.az(), b.az());
    }
}
