//! Physics-driven earphone-IMU simulator for the MandiPass reproduction.
//!
//! The paper's evaluation uses 34 human volunteers wearing an MPU-9250 /
//! MPU-6050 IMU. That data cannot be re-collected here, so this crate
//! substitutes a generative model built from the paper's own feasibility
//! analysis (§II):
//!
//! * each synthetic user owns the §II.B one-degree-of-freedom, two-phase
//!   mandible parameters `m, c1, c2, k1, k2` ([`physio`]),
//! * a personal glottal excitation (fundamental frequency, harmonic mix,
//!   phase-asymmetric driving forces `F_P(0)`, `F_N(0)`) ([`vocal`]),
//! * the oscillator is integrated in the time domain ([`vibration`]),
//!   attenuated along the throat → mandible → ear path ([`propagation`]),
//! * projected onto the six IMU axes through a personal coupling geometry
//!   and corrupted by a realistic sensor model — sampling without
//!   anti-aliasing, quantisation, noise, bias, outlier spikes
//!   ([`sensor`], [`noise`]),
//! * with condition generators for every robustness experiment the paper
//!   runs: walking/running ([`motion`]), food, tone changes, earphone
//!   orientation ([`orientation`]), ear side, IMU model, long-term drift
//!   ([`conditions`]).
//!
//! [`recorder`] assembles these into complete recordings and
//! [`population`] samples user cohorts (the paper's 34 volunteers:
//! 28 male, 6 female, aged 20-45).
//!
//! # Example
//!
//! ```
//! use mandipass_imu_sim::population::Population;
//! use mandipass_imu_sim::recorder::Recorder;
//! use mandipass_imu_sim::conditions::Condition;
//!
//! let pop = Population::generate(4, 42);
//! let recorder = Recorder::default();
//! let rec = recorder.record(&pop.users()[0], Condition::Normal, 7);
//! assert_eq!(rec.axes().len(), 6);
//! ```

pub mod axis;
pub mod conditions;
pub mod dataset;
pub mod error;
pub mod faults;
pub mod motion;
pub mod noise;
pub mod orientation;
pub mod physio;
pub mod population;
pub mod propagation;
pub mod recorder;
pub mod sensor;
pub mod vibration;
pub mod vocal;

pub use axis::Axis;
pub use conditions::Condition;
pub use error::SimError;
pub use faults::{Fault, FaultProfile, FaultyRecorder};
pub use population::{Population, UserProfile};
pub use recorder::{Recorder, Recording};
pub use sensor::ImuModel;
