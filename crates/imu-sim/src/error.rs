//! Error type for the IMU simulator.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring or running the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A physical parameter was non-positive or non-finite.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A requested duration produced zero output samples.
    EmptyDuration {
        /// Requested duration in seconds.
        seconds: f64,
    },
    /// A recording's shape is invalid (wrong axis count, unequal or
    /// empty axis tracks, bad sample rate).
    MalformedRecording {
        /// What is wrong with the recording.
        reason: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter { name, value } => {
                write!(f, "invalid simulator parameter {name} = {value}")
            }
            SimError::EmptyDuration { seconds } => {
                write!(f, "duration {seconds} s yields no output samples")
            }
            SimError::MalformedRecording { reason } => {
                write!(f, "malformed recording: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::InvalidParameter {
            name: "mass",
            value: -1.0,
        };
        assert!(e.to_string().contains("mass"));
        let e = SimError::EmptyDuration { seconds: 0.0 };
        assert!(e.to_string().contains("0 s"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
