//! From-scratch neural-network substrate for the MandiPass reproduction.
//!
//! The paper builds its biometric extractor in PyTorch; no comparable Rust
//! framework fits this reproduction's constraints, so this crate implements
//! exactly the pieces the extractor needs, with full backpropagation:
//!
//! * a dense row-major [`Tensor`](tensor::Tensor),
//! * [`Conv2d`](conv::Conv2d) with padding and rectangular stride (the
//!   paper uses 3×3 kernels with stride 1×2),
//! * [`BatchNorm2d`](batchnorm::BatchNorm2d) with running statistics,
//! * [`ReLU`](activation::ReLU) and [`Sigmoid`](activation::Sigmoid),
//! * [`Linear`](linear::Linear) and [`Flatten`](flatten::Flatten),
//! * softmax [`cross_entropy`](loss::cross_entropy) loss,
//! * [`Adam`](optim::Adam) and [`Sgd`](optim::Sgd) optimisers,
//! * binary parameter (de)serialisation ([`serialize`]),
//! * mini-batch helpers ([`data`]),
//! * a zero-allocation inference fast path: scratch arenas ([`infer`]),
//!   an im2col + blocked-GEMM convolution kernel ([`gemm`]) and
//!   deployment-time conv+batch-norm fusion
//!   ([`Sequential::fuse`](sequential::Sequential::fuse)).
//!
//! # Example
//!
//! ```
//! use mandipass_nn::prelude::*;
//!
//! // A small MLP on 4-dimensional inputs, 3 classes.
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 16, 1)),
//!     Box::new(ReLU::new()),
//!     Box::new(Linear::new(16, 3, 2)),
//! ]);
//! let x = Tensor::from_vec(vec![2, 4], vec![0.1; 8]).unwrap();
//! let logits = net.forward(&x, true);
//! assert_eq!(logits.shape(), &[2, 3]);
//! ```

pub mod activation;
pub mod batchnorm;
pub mod conv;
pub mod data;
pub mod error;
pub mod flatten;
pub mod gemm;
pub mod infer;
pub mod init;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod optim;
pub mod sequential;
pub mod serialize;
pub mod tensor;

pub use error::NnError;

/// Convenient glob import of the common types.
pub mod prelude {
    pub use crate::activation::{ReLU, Sigmoid};
    pub use crate::batchnorm::BatchNorm2d;
    pub use crate::conv::Conv2d;
    pub use crate::flatten::Flatten;
    pub use crate::infer::{ArenaStats, InferCtx, Shape};
    pub use crate::layer::Layer;
    pub use crate::linear::Linear;
    pub use crate::loss::cross_entropy;
    pub use crate::optim::{Adam, Optimizer, Sgd};
    pub use crate::sequential::Sequential;
    pub use crate::tensor::Tensor;
}
