//! The [`Layer`] trait and parameter access for optimisers.

use crate::infer::{InferCtx, Shape};
use crate::tensor::Tensor;

/// A mutable view of one learnable parameter tensor and its gradient
/// accumulator, handed to optimisers.
#[derive(Debug)]
pub struct Param<'a> {
    /// The parameter values.
    pub value: &'a mut Tensor,
    /// The accumulated gradient of the loss with respect to `value`.
    pub grad: &'a mut Tensor,
    /// Stable name for serialisation, unique within a model
    /// (e.g. `"conv1.weight"`).
    pub name: String,
}

/// A differentiable network layer.
///
/// Layers cache whatever they need during [`Layer::forward`] and consume
/// that cache in [`Layer::backward`]. Gradients accumulate into the layer's
/// grad buffers; call [`Layer::zero_grad`] between optimiser steps.
///
/// Layers are `Send + Sync`: the deployed inference path
/// ([`Layer::infer`]) takes `&self` and a trained model is shared
/// read-only across verify-server worker threads, so every layer must be
/// plain data (no `Rc`/`RefCell`-style interior mutability).
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// A short stable kind label (e.g. `"conv2d"`), used as the
    /// telemetry span name for per-layer inference timing.
    fn name(&self) -> &'static str {
        "layer"
    }

    /// Computes the layer output. `train` selects training behaviour
    /// (e.g. batch statistics in batch norm) and enables caching for the
    /// backward pass.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Computes the layer output in evaluation mode without touching any
    /// mutable state: no backward cache, no running-statistic updates.
    /// Equals `forward(input, false)` for every layer; this is the
    /// deployed verification path, where the trained model is shared.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Backpropagates `grad_output` (gradient of the loss with respect to
    /// this layer's output), accumulating parameter gradients and returning
    /// the gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Implementations may panic when called without a preceding
    /// training-mode `forward` (no cache).
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to all learnable parameters, in a stable order.
    fn params(&mut self) -> Vec<Param<'_>>;

    /// Mutable access to everything that must persist across
    /// serialisation: the learnable parameters plus any non-learnable
    /// buffers (e.g. batch-norm running statistics). Optimisers use
    /// [`Layer::params`]; (de)serialisation uses this.
    fn state_params(&mut self) -> Vec<Param<'_>> {
        self.params()
    }

    /// Clears all accumulated gradients.
    fn zero_grad(&mut self) {
        for p in self.params() {
            p.grad.zero();
        }
    }

    /// Number of learnable scalar parameters.
    fn param_count(&mut self) -> usize {
        self.params().iter().map(|p| p.value.len()).sum()
    }

    /// Clones this layer into a fresh boxed trait object, duplicating
    /// parameters, buffers and caches. Makes `Box<dyn Layer>` (and thus
    /// whole models) cloneable, so one trained network can be handed to
    /// several consumers without retraining.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Evaluation-mode forward on the scratch arena: consumes a
    /// ctx-owned input buffer and returns a ctx-owned output buffer
    /// (possibly the input itself, for in-place layers). Semantically
    /// identical to [`Layer::infer`]; the hot-path layers override this
    /// with kernels that allocate nothing once `ctx` is warm. The
    /// default bridges through `infer` so exotic layers stay correct
    /// (at Tensor-path cost) and feed their buffers into the pool.
    fn infer_fast(&self, input: Vec<f32>, shape: Shape, ctx: &mut InferCtx) -> (Vec<f32>, Shape) {
        let tensor =
            Tensor::from_vec(shape.to_vec(), input).expect("arena buffer matches its shape");
        let out = self.infer(&tensor);
        ctx.release(tensor.into_data());
        let out_shape = Shape::from_dims(out.shape());
        (out.into_data(), out_shape)
    }

    /// One-time deployment hook: precomputes derived inference-only
    /// data (e.g. a transposed weight copy for the GEMM kernel). Safe to
    /// call repeatedly; layers invalidate the derived data whenever
    /// their parameters are exposed mutably ([`Layer::params`] /
    /// [`Layer::state_params`]), so call this again after any training
    /// step or parameter load.
    fn prepare_inference(&mut self) {}

    /// Per-channel `(scale, shift)` of an evaluation-mode affine layer
    /// (batch norm running statistics) that a preceding convolution can
    /// absorb: `y[c] = scale[c] · x[c] + shift[c]`. `None` for layers
    /// that are not foldable affines.
    fn fold_affine(&self) -> Option<(Vec<f32>, Vec<f32>)> {
        None
    }

    /// Absorbs a following affine layer's per-channel `(scale, shift)`
    /// into this layer's weights and bias. Returns `false` when this
    /// layer cannot absorb (not a convolution, or channel mismatch),
    /// leaving it unchanged.
    fn absorb_affine(&mut self, scale: &[f32], shift: &[f32]) -> bool {
        let _ = (scale, shift);
        false
    }

    /// Whether a training-mode forward cache is pending (a backward
    /// pass is still owed). Deployment-time transforms such as
    /// [`Sequential::fuse`](crate::sequential::Sequential::fuse) refuse
    /// to run in this state.
    fn training_cache_active(&self) -> bool {
        false
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
