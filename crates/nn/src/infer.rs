//! Scratch arenas for the zero-allocation inference fast path.
//!
//! The deployed verify path runs the same network on the same input
//! shape thousands of times per second; allocating fresh activation
//! tensors on every forward is pure overhead. [`InferCtx`] is a
//! per-worker pool of `Vec<f32>` buffers: layers acquire their output
//! buffer from the pool and release their input back into it, so after
//! one warm-up pass every acquisition is served from a buffer whose
//! capacity already fits and steady-state inference performs no heap
//! allocation at all. The pool tracks a high-water mark and a count of
//! growth events so the steady-state claim is observable (the extractor
//! exports both through telemetry gauges).
//!
//! [`Shape`] is the companion `Copy` shape type: a fixed `[usize; 4]`
//! plus rank, so passing shapes between layers never allocates either.

/// A tensor shape of rank ≤ 4 that is `Copy` (no `Vec` allocation on the
/// hot path). Dimensions beyond the rank are zero and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    dims: [usize; 4],
    rank: usize,
}

impl Shape {
    /// A rank-2 shape `[n, features]`.
    pub fn d2(n: usize, features: usize) -> Shape {
        Shape {
            dims: [n, features, 0, 0],
            rank: 2,
        }
    }

    /// A rank-4 shape `[n, c, h, w]`.
    pub fn d4(n: usize, c: usize, h: usize, w: usize) -> Shape {
        Shape {
            dims: [n, c, h, w],
            rank: 4,
        }
    }

    /// Builds a shape from a slice.
    ///
    /// # Panics
    ///
    /// Panics when `dims` has more than 4 dimensions (no layer in this
    /// crate produces rank > 4).
    pub fn from_dims(dims: &[usize]) -> Shape {
        assert!(dims.len() <= 4, "inference shapes are rank <= 4");
        let mut out = Shape {
            dims: [0; 4],
            rank: dims.len(),
        };
        out.dims[..dims.len()].copy_from_slice(dims);
        out
    }

    /// The dimensions as a slice of length `rank`.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Whether the shape holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dimensions as an owned `Vec` (for bridging into [`Tensor`]
    /// fallback paths; allocates, so not for the hot loop).
    ///
    /// [`Tensor`]: crate::tensor::Tensor
    pub fn to_vec(&self) -> Vec<usize> {
        self.dims().to_vec()
    }
}

/// A snapshot of an arena's allocation behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Heap growth events (fresh buffer or capacity growth) since the
    /// arena was created or [`InferCtx::reset_growth`] was last called.
    /// Zero across a steady-state window is the zero-allocation claim.
    pub growth_events: u64,
    /// Buffers currently parked in the pool.
    pub pooled_buffers: usize,
    /// Total capacity (bytes) currently parked in the pool.
    pub pooled_bytes: usize,
    /// Maximum combined capacity (bytes) of pooled plus lent-out buffers
    /// ever observed — the arena's memory footprint.
    pub high_water_bytes: usize,
}

/// A per-worker scratch arena: a free list of `f32` buffers reused
/// across inference calls.
///
/// Layers call [`InferCtx::acquire`] for their output and
/// [`InferCtx::release`] for buffers they are done with. The pool is
/// intentionally dumb — best-fit over a handful of buffers — because a
/// fixed network acquires the same sequence of sizes every forward, so
/// after one pass each request is served by the buffer that served it
/// last time.
#[derive(Debug, Default)]
pub struct InferCtx {
    pool: Vec<Vec<f32>>,
    growth_events: u64,
    lent_bytes: usize,
    pooled_bytes: usize,
    high_water_bytes: usize,
}

fn cap_bytes(buf: &Vec<f32>) -> usize {
    buf.capacity() * std::mem::size_of::<f32>()
}

impl InferCtx {
    /// Creates an empty arena.
    pub fn new() -> Self {
        InferCtx::default()
    }

    /// Hands out a zero-filled buffer of length `len`, reusing pooled
    /// capacity when any fits (best fit; otherwise the largest pooled
    /// buffer grows in place).
    pub fn acquire(&mut self, len: usize) -> Vec<f32> {
        let pick = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)
            .or_else(|| {
                self.pool
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i)
            });
        let mut buf = match pick {
            Some(i) => {
                let buf = self.pool.swap_remove(i);
                self.pooled_bytes -= cap_bytes(&buf);
                buf
            }
            None => {
                self.growth_events += 1;
                Vec::with_capacity(len)
            }
        };
        if buf.capacity() < len {
            self.growth_events += 1;
        }
        buf.clear();
        buf.resize(len, 0.0);
        self.lent_bytes += cap_bytes(&buf);
        self.high_water_bytes = self
            .high_water_bytes
            .max(self.lent_bytes + self.pooled_bytes);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn release(&mut self, buf: Vec<f32>) {
        let bytes = cap_bytes(&buf);
        self.lent_bytes = self.lent_bytes.saturating_sub(bytes);
        self.pooled_bytes += bytes;
        self.high_water_bytes = self
            .high_water_bytes
            .max(self.lent_bytes + self.pooled_bytes);
        self.pool.push(buf);
    }

    /// Current allocation statistics.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            growth_events: self.growth_events,
            pooled_buffers: self.pool.len(),
            pooled_bytes: self.pooled_bytes,
            high_water_bytes: self.high_water_bytes,
        }
    }

    /// Zeroes the growth-event counter, marking the start of a
    /// steady-state observation window (call after warm-up).
    pub fn reset_growth(&mut self) {
        self.growth_events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_round_trips_dims() {
        let s = Shape::d4(2, 3, 4, 5);
        assert_eq!(s.dims(), &[2, 3, 4, 5]);
        assert_eq!(s.len(), 120);
        assert!(!s.is_empty());
        assert_eq!(Shape::from_dims(&[7, 9]), Shape::d2(7, 9));
        assert_eq!(Shape::d2(7, 9).to_vec(), vec![7, 9]);
    }

    #[test]
    fn acquire_zero_fills_reused_buffers() {
        let mut ctx = InferCtx::new();
        let mut a = ctx.acquire(4);
        a.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        ctx.release(a);
        let b = ctx.acquire(3);
        assert_eq!(b, vec![0.0; 3]);
    }

    #[test]
    fn steady_state_stops_growing() {
        let mut ctx = InferCtx::new();
        // Warm-up: the sequence a fixed network would request.
        for _ in 0..2 {
            let a = ctx.acquire(100);
            let b = ctx.acquire(37);
            ctx.release(a);
            let c = ctx.acquire(64);
            ctx.release(b);
            ctx.release(c);
        }
        ctx.reset_growth();
        for _ in 0..10 {
            let a = ctx.acquire(100);
            let b = ctx.acquire(37);
            ctx.release(a);
            let c = ctx.acquire(64);
            ctx.release(b);
            ctx.release(c);
        }
        assert_eq!(ctx.stats().growth_events, 0, "steady state reallocated");
        // Max concurrent footprint: `a` (100) is released before `c`
        // (64) is acquired, so `c` best-fits into `a`'s pooled capacity
        // and the peak is 100 + 37 floats.
        assert!(ctx.stats().high_water_bytes >= 137 * 4);
        assert_eq!(ctx.stats().pooled_buffers, 2);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ctx = InferCtx::new();
        let big = ctx.acquire(1000);
        let small = ctx.acquire(10);
        ctx.release(big);
        ctx.release(small);
        ctx.reset_growth();
        let buf = ctx.acquire(8);
        assert!(buf.capacity() < 1000, "best fit picked the big buffer");
        assert_eq!(ctx.stats().growth_events, 0);
    }
}
