//! Weight initialisation schemes.

use mandipass_util::rand::Rng;
use mandipass_util::rand_distr::{Distribution, Normal, Uniform};

/// Kaiming (He) normal initialisation for layers followed by ReLU:
/// `N(0, sqrt(2 / fan_in))`.
pub fn kaiming_normal<R: Rng>(rng: &mut R, fan_in: usize, len: usize) -> Vec<f32> {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    let dist = Normal::new(0.0, std).expect("std is finite and positive");
    (0..len).map(|_| dist.sample(rng) as f32).collect()
}

/// Xavier (Glorot) uniform initialisation:
/// `U(−sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize, len: usize) -> Vec<f32> {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    let dist = Uniform::new_inclusive(-bound, bound);
    (0..len).map(|_| dist.sample(rng) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_util::rand::rngs::StdRng;
    use mandipass_util::rand::SeedableRng;

    #[test]
    fn kaiming_std_is_close_to_design() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = kaiming_normal(&mut rng, 128, 50_000);
        let mean: f64 = w.iter().map(|&x| x as f64).sum::<f64>() / w.len() as f64;
        let var: f64 = w.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / w.len() as f64;
        let design = 2.0 / 128.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - design).abs() / design < 0.1, "var {var} vs {design}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(8);
        let bound = (6.0f64 / (64 + 32) as f64).sqrt() as f32;
        let w = xavier_uniform(&mut rng, 64, 32, 10_000);
        assert!(w.iter().all(|&x| x.abs() <= bound + f32::EPSILON));
        // Should actually use the range, not collapse near zero.
        assert!(w.iter().any(|&x| x.abs() > bound * 0.9));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(
            kaiming_normal(&mut a, 10, 100),
            kaiming_normal(&mut b, 10, 100)
        );
    }
}
