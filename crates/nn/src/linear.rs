//! Fully connected (dense) layer.

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::SeedableRng;

use crate::gemm::gemm_acc;
use crate::infer::{InferCtx, Shape};
use crate::init::kaiming_normal;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A fully connected layer: `y = x · Wᵀ + b`.
///
/// Input shape `[N, in_features]`, output shape `[N, out_features]`.
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    // Deployment-only transposed weight copy `[in, out]` built by
    // `prepare_inference`, letting the fast path run as a k-outer GEMM
    // (contiguous, autovectorized) instead of latency-bound scalar dot
    // products. Invalidated whenever the weights are exposed mutably.
    packed_t: Option<Vec<f32>>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-normal weights and zero bias,
    /// deterministically initialised from `seed`.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let weight = Tensor::from_vec(
            vec![out_features, in_features],
            kaiming_normal(&mut rng, in_features, in_features * out_features),
        )
        .expect("weight shape matches generated data");
        Linear {
            in_features,
            out_features,
            weight,
            bias: Tensor::zeros(vec![out_features]),
            grad_weight: Tensor::zeros(vec![out_features, in_features]),
            grad_bias: Tensor::zeros(vec![out_features]),
            cached_input: None,
            packed_t: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Read access to the weight matrix `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Layer for Linear {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = self.infer(input);
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "linear expects [N, in] input");
        assert_eq!(input.shape()[1], self.in_features, "input feature mismatch");
        let n = input.shape()[0];
        let mut out = Tensor::zeros(vec![n, self.out_features]);
        let x = input.data();
        let w = self.weight.data();
        let b = self.bias.data();
        let y = out.data_mut();
        for i in 0..n {
            let xi = &x[i * self.in_features..(i + 1) * self.in_features];
            let yi = &mut y[i * self.out_features..(i + 1) * self.out_features];
            for o in 0..self.out_features {
                let wo = &w[o * self.in_features..(o + 1) * self.in_features];
                let mut acc = b[o];
                for (xv, wv) in xi.iter().zip(wo) {
                    acc += xv * wv;
                }
                yi[o] = acc;
            }
        }
        out
    }

    fn infer_fast(&self, input: Vec<f32>, shape: Shape, ctx: &mut InferCtx) -> (Vec<f32>, Shape) {
        let dims = shape.dims();
        assert_eq!(dims.len(), 2, "linear expects [N, in] input");
        assert_eq!(dims[1], self.in_features, "input feature mismatch");
        let n = dims[0];
        let mut out = ctx.acquire(n * self.out_features);
        let b = self.bias.data();
        match &self.packed_t {
            Some(wt) => {
                {
                    let _span = mandipass_telemetry::span("bias_act");
                    for row in out.chunks_exact_mut(self.out_features) {
                        row.copy_from_slice(b);
                    }
                }
                // Same per-output accumulation order as the scalar dot
                // (bias first, k ascending) — bit-exact against `infer`.
                let _span = mandipass_telemetry::span("gemm");
                gemm_acc(n, self.in_features, self.out_features, &input, wt, &mut out);
            }
            None => {
                // No packed copy (training just touched the weights):
                // replicate the naive loop into the arena buffer.
                let w = self.weight.data();
                for i in 0..n {
                    let xi = &input[i * self.in_features..(i + 1) * self.in_features];
                    let yi = &mut out[i * self.out_features..(i + 1) * self.out_features];
                    for (o, yv) in yi.iter_mut().enumerate() {
                        let wo = &w[o * self.in_features..(o + 1) * self.in_features];
                        let mut acc = b[o];
                        for (xv, wv) in xi.iter().zip(wo) {
                            acc += xv * wv;
                        }
                        *yv = acc;
                    }
                }
            }
        }
        ctx.release(input);
        (out, Shape::d2(n, self.out_features))
    }

    fn prepare_inference(&mut self) {
        let w = self.weight.data();
        let mut packed = vec![0.0f32; w.len()];
        for o in 0..self.out_features {
            for k in 0..self.in_features {
                packed[k * self.out_features + o] = w[o * self.in_features + k];
            }
        }
        self.packed_t = Some(packed);
    }

    fn training_cache_active(&self) -> bool {
        self.cached_input.is_some()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward requires a preceding training-mode forward");
        let n = input.shape()[0];
        assert_eq!(grad_output.shape(), &[n, self.out_features]);
        let x = input.data();
        let go = grad_output.data();
        let w = self.weight.data();

        // Parameter gradients.
        {
            let gw = self.grad_weight.data_mut();
            let gb = self.grad_bias.data_mut();
            for i in 0..n {
                let xi = &x[i * self.in_features..(i + 1) * self.in_features];
                let gi = &go[i * self.out_features..(i + 1) * self.out_features];
                for o in 0..self.out_features {
                    let g = gi[o];
                    gb[o] += g;
                    let gwo = &mut gw[o * self.in_features..(o + 1) * self.in_features];
                    for (gw_v, x_v) in gwo.iter_mut().zip(xi) {
                        *gw_v += g * x_v;
                    }
                }
            }
        }

        // Input gradient: dL/dx = dL/dy · W.
        let mut grad_input = Tensor::zeros(vec![n, self.in_features]);
        let gx = grad_input.data_mut();
        for i in 0..n {
            let gi = &go[i * self.out_features..(i + 1) * self.out_features];
            let gxi = &mut gx[i * self.in_features..(i + 1) * self.in_features];
            for o in 0..self.out_features {
                let g = gi[o];
                let wo = &w[o * self.in_features..(o + 1) * self.in_features];
                for (gx_v, w_v) in gxi.iter_mut().zip(wo) {
                    *gx_v += g * w_v;
                }
            }
        }
        grad_input
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        // Mutable parameter access (optimiser step, parameter load)
        // invalidates the inference-only packed transpose; the fast
        // path falls back to the scalar kernel until the next
        // `prepare_inference`.
        self.packed_t = None;
        vec![
            Param {
                value: &mut self.weight,
                grad: &mut self.grad_weight,
                name: "weight".into(),
            },
            Param {
                value: &mut self.bias,
                grad: &mut self.grad_bias,
                name: "bias".into(),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;

    #[test]
    fn forward_matches_hand_computation() {
        let mut layer = Linear::new(2, 2, 0);
        layer.weight = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        layer.bias = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn param_count_is_correct() {
        let mut layer = Linear::new(10, 4, 0);
        assert_eq!(layer.param_count(), 44);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Linear::new(3, 2, 42);
        let x = Tensor::from_vec(vec![2, 3], vec![0.3, -0.1, 0.5, 0.7, 0.2, -0.4]).unwrap();
        let labels = [0usize, 1usize];

        // Analytic gradients.
        layer.zero_grad();
        let logits = layer.forward(&x, true);
        let (_, grad) = cross_entropy(&logits, &labels);
        let grad_input = layer.backward(&grad);

        let eps = 1e-3f32;
        // Check weight gradients via central differences.
        let analytic_gw = layer.grad_weight.clone();
        for idx in 0..6 {
            let orig = layer.weight.data()[idx];
            layer.weight.data_mut()[idx] = orig + eps;
            let (lp, _) = cross_entropy(&layer.forward(&x, false), &labels);
            layer.weight.data_mut()[idx] = orig - eps;
            let (lm, _) = cross_entropy(&layer.forward(&x, false), &labels);
            layer.weight.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic_gw.data()[idx]).abs() < 2e-3,
                "weight[{idx}]: fd {fd} vs analytic {}",
                analytic_gw.data()[idx]
            );
        }

        // Check input gradients the same way.
        let mut x_var = x.clone();
        for idx in 0..6 {
            let orig = x_var.data()[idx];
            x_var.data_mut()[idx] = orig + eps;
            let (lp, _) = cross_entropy(&layer.forward(&x_var, false), &labels);
            x_var.data_mut()[idx] = orig - eps;
            let (lm, _) = cross_entropy(&layer.forward(&x_var, false), &labels);
            x_var.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad_input.data()[idx]).abs() < 2e-3,
                "input[{idx}]: fd {fd} vs analytic {}",
                grad_input.data()[idx]
            );
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut layer = Linear::new(2, 2, 1);
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        let g = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        layer.forward(&x, true);
        layer.backward(&g);
        let after_one = layer.grad_bias.clone();
        layer.forward(&x, true);
        layer.backward(&g);
        for (a, b) in layer.grad_bias.data().iter().zip(after_one.data()) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
        layer.zero_grad();
        assert!(layer.grad_bias.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "backward requires a preceding training-mode forward")]
    fn backward_without_forward_panics() {
        let mut layer = Linear::new(2, 2, 0);
        let g = Tensor::zeros(vec![1, 2]);
        let _ = layer.backward(&g);
    }

    #[test]
    fn deterministic_initialisation() {
        let a = Linear::new(5, 3, 99);
        let b = Linear::new(5, 3, 99);
        assert_eq!(a.weight(), b.weight());
    }

    #[test]
    fn packed_fast_path_is_bit_exact() {
        let mut layer = Linear::new(48, 17, 5);
        layer.prepare_inference();
        let x = Tensor::from_vec(
            vec![3, 48],
            (0..3 * 48).map(|i| ((i as f32) * 0.17).cos()).collect(),
        )
        .unwrap();
        let reference = layer.infer(&x);
        let mut ctx = InferCtx::new();
        let mut buf = ctx.acquire(x.len());
        buf.copy_from_slice(x.data());
        let (fast, shape) = layer.infer_fast(buf, Shape::d2(3, 48), &mut ctx);
        assert_eq!(shape.dims(), reference.shape());
        assert_eq!(&fast[..], reference.data());
    }

    #[test]
    fn params_access_invalidates_packed_weights() {
        let mut layer = Linear::new(4, 2, 0);
        layer.prepare_inference();
        assert!(layer.packed_t.is_some());
        let _ = layer.params();
        assert!(
            layer.packed_t.is_none(),
            "stale packed weights would desync from trained weights"
        );
        // The unpacked fallback still matches the reference path.
        let x = Tensor::from_vec(vec![1, 4], vec![0.1, -0.2, 0.3, -0.4]).unwrap();
        let reference = layer.infer(&x);
        let mut ctx = InferCtx::new();
        let mut buf = ctx.acquire(4);
        buf.copy_from_slice(x.data());
        let (fast, _) = layer.infer_fast(buf, Shape::d2(1, 4), &mut ctx);
        assert_eq!(&fast[..], reference.data());
    }
}
