//! Error type for the neural-network substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and model (de)serialisation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor was built with a shape whose element count does not match
    /// the provided data length.
    ShapeMismatch {
        /// Element count implied by the shape.
        expected: usize,
        /// Length of the data actually provided.
        got: usize,
    },
    /// A serialised parameter blob was malformed or truncated.
    MalformedBlob {
        /// Human-readable reason.
        reason: String,
    },
    /// A parameter blob was produced by a model with a different layout.
    LayoutMismatch {
        /// Parameter count expected by the receiving model.
        expected: usize,
        /// Parameter count found in the blob.
        got: usize,
    },
    /// Conv+batch-norm fusion was requested while a training-mode
    /// forward cache is pending (a backward pass is still owed);
    /// rewriting weights mid-step would corrupt the gradients.
    FusePendingBackward,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, got } => {
                write!(f, "shape implies {expected} elements but data has {got}")
            }
            NnError::MalformedBlob { reason } => write!(f, "malformed parameter blob: {reason}"),
            NnError::LayoutMismatch { expected, got } => {
                write!(
                    f,
                    "parameter layout mismatch: model has {expected} tensors, blob has {got}"
                )
            }
            NnError::FusePendingBackward => {
                write!(
                    f,
                    "cannot fuse while a training-mode forward cache is pending"
                )
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NnError::ShapeMismatch {
            expected: 6,
            got: 5,
        };
        assert!(e.to_string().contains('6') && e.to_string().contains('5'));
        let e = NnError::MalformedBlob {
            reason: "truncated".into(),
        };
        assert!(e.to_string().contains("truncated"));
        let e = NnError::LayoutMismatch {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("layout"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
