//! Binary (de)serialisation of model parameters.
//!
//! The paper reports the extractor needs ≈ 5 MB of parameter storage on
//! the earphone; a compact little-endian binary blob (rather than JSON)
//! keeps this reproduction in the same ballpark and lets the overhead
//! experiment (§VII.E) measure a realistic size.
//!
//! Blob layout:
//!
//! ```text
//! magic  u32 = 0x4d50_4e4e  ("MPNN")
//! count  u32                 number of tensors
//! per tensor:
//!   name_len u32, name bytes (UTF-8)
//!   rank u32, dims u32 × rank
//!   data f32 × product(dims), little-endian
//! ```

use mandipass_util::bytebuf::{ByteReader, ByteWriter};

use crate::error::NnError;
use crate::layer::Layer;
use crate::tensor::Tensor;

const MAGIC: u32 = 0x4d50_4e4e;

/// Serialises the full persistent state of `layer` (learnable parameters
/// plus buffers such as batch-norm running statistics) into a binary
/// blob.
pub fn save_params(layer: &mut dyn Layer) -> Vec<u8> {
    let params = layer.state_params();
    let mut buf = ByteWriter::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(params.len() as u32);
    for p in &params {
        buf.put_u32_le(p.name.len() as u32);
        buf.put_slice(p.name.as_bytes());
        buf.put_u32_le(p.value.shape().len() as u32);
        for &d in p.value.shape() {
            buf.put_u32_le(d as u32);
        }
        for &v in p.value.data() {
            buf.put_f32_le(v);
        }
    }
    buf.into_vec()
}

/// Restores parameters previously produced by [`save_params`] into
/// `layer`, matching tensors by position and validating names and shapes.
///
/// # Errors
///
/// * [`NnError::MalformedBlob`] for truncated or corrupt input.
/// * [`NnError::LayoutMismatch`] when tensor counts differ.
/// * [`NnError::MalformedBlob`] when a name or shape disagrees with the
///   receiving model.
pub fn load_params(layer: &mut dyn Layer, blob: &[u8]) -> Result<(), NnError> {
    let mut buf = ByteReader::new(blob);
    let malformed = |reason: &str| NnError::MalformedBlob {
        reason: reason.to_string(),
    };
    if buf.remaining() < 8 {
        return Err(malformed("blob shorter than header"));
    }
    if buf.get_u32_le() != MAGIC {
        return Err(malformed("bad magic"));
    }
    let count = buf.get_u32_le() as usize;
    let mut params = layer.state_params();
    if count != params.len() {
        return Err(NnError::LayoutMismatch {
            expected: params.len(),
            got: count,
        });
    }
    for p in params.iter_mut() {
        if buf.remaining() < 4 {
            return Err(malformed("truncated before name"));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(malformed("truncated name"));
        }
        let name_bytes = buf.take(name_len);
        let name = std::str::from_utf8(name_bytes).map_err(|_| malformed("name not UTF-8"))?;
        if name != p.name {
            return Err(malformed(&format!(
                "tensor name {name} does not match {}",
                p.name
            )));
        }
        if buf.remaining() < 4 {
            return Err(malformed("truncated before rank"));
        }
        let rank = buf.get_u32_le() as usize;
        if buf.remaining() < rank * 4 {
            return Err(malformed("truncated shape"));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(buf.get_u32_le() as usize);
        }
        if shape != p.value.shape() {
            return Err(malformed(&format!(
                "tensor {} shape {:?} does not match {:?}",
                p.name,
                shape,
                p.value.shape()
            )));
        }
        let n: usize = shape.iter().product();
        if buf.remaining() < n * 4 {
            return Err(malformed("truncated data"));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(buf.get_f32_le());
        }
        *p.value = Tensor::from_vec(shape, data).expect("validated shape");
    }
    if buf.has_remaining() {
        return Err(malformed("trailing bytes after last tensor"));
    }
    Ok(())
}

/// Size in bytes that [`save_params`] would produce for `layer`, without
/// building the blob.
pub fn serialized_size(layer: &mut dyn Layer) -> usize {
    let params = layer.state_params();
    8 + params
        .iter()
        .map(|p| 4 + p.name.len() + 4 + 4 * p.value.shape().len() + 4 * p.value.len())
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::sequential::Sequential;

    fn small_net(seed: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Linear::new(3, 4, seed)),
            Box::new(Linear::new(4, 2, seed + 1)),
        ])
    }

    #[test]
    fn round_trip_restores_weights() {
        let mut a = small_net(1);
        let mut b = small_net(2);
        let blob = save_params(&mut a);
        load_params(&mut b, &blob).unwrap();
        let x = Tensor::from_vec(vec![1, 3], vec![0.5, -0.5, 1.0]).unwrap();
        use crate::layer::Layer;
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn size_estimate_matches_blob() {
        let mut net = small_net(3);
        let blob = save_params(&mut net);
        assert_eq!(blob.len(), serialized_size(&mut net));
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let mut net = small_net(4);
        let blob = save_params(&mut net);
        let res = load_params(&mut net, &blob[..blob.len() - 3]);
        assert!(matches!(res, Err(NnError::MalformedBlob { .. })));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut net = small_net(5);
        let mut blob = save_params(&mut net);
        blob[0] ^= 0xff;
        assert!(matches!(
            load_params(&mut net, &blob),
            Err(NnError::MalformedBlob { .. })
        ));
    }

    #[test]
    fn layout_mismatch_is_detected() {
        let mut a = small_net(6);
        let mut single = Sequential::new(vec![Box::new(Linear::new(3, 4, 0)) as _]);
        let blob = save_params(&mut a);
        assert!(matches!(
            load_params(&mut single, &blob),
            Err(NnError::LayoutMismatch {
                expected: 2,
                got: 4
            })
        ));
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let mut a = Sequential::new(vec![Box::new(Linear::new(3, 4, 0)) as _]);
        let mut b = Sequential::new(vec![Box::new(Linear::new(4, 3, 0)) as _]);
        let blob = save_params(&mut a);
        assert!(matches!(
            load_params(&mut b, &blob),
            Err(NnError::MalformedBlob { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut net = small_net(7);
        let mut blob = save_params(&mut net);
        blob.push(0);
        assert!(matches!(
            load_params(&mut net, &blob),
            Err(NnError::MalformedBlob { .. })
        ));
    }
}
