//! 2-D convolution with padding and rectangular stride.
//!
//! The paper's extractor uses 3×3 kernels with a stride of 1×2 (stride 1
//! across axes, 2 across time), so stride and padding are independent per
//! dimension here.

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::SeedableRng;

use crate::gemm::gemm_acc;
use crate::infer::{InferCtx, Shape};
use crate::init::kaiming_normal;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A 2-D convolution layer.
///
/// Input shape `[N, in_channels, H, W]`, output shape
/// `[N, out_channels, H_out, W_out]` with
/// `H_out = (H + 2·pad_h − kh) / stride_h + 1` (and likewise for `W`).
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    weight: Tensor, // [out_c, in_c, kh, kw]
    bias: Tensor,   // [out_c]
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-normal weights and zero
    /// bias, deterministically initialised from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any kernel or stride dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        seed: u64,
    ) -> Self {
        assert!(
            kernel.0 > 0 && kernel.1 > 0,
            "kernel dimensions must be positive"
        );
        assert!(
            stride.0 > 0 && stride.1 > 0,
            "stride dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_channels * kernel.0 * kernel.1;
        let len = out_channels * fan_in;
        let weight = Tensor::from_vec(
            vec![out_channels, in_channels, kernel.0, kernel.1],
            kaiming_normal(&mut rng, fan_in, len),
        )
        .expect("weight shape matches generated data");
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight,
            bias: Tensor::zeros(vec![out_channels]),
            grad_weight: Tensor::zeros(vec![out_channels, in_channels, kernel.0, kernel.1]),
            grad_bias: Tensor::zeros(vec![out_channels]),
            cached_input: None,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding.0).saturating_sub(self.kernel.0) / self.stride.0 + 1;
        let ow = (w + 2 * self.padding.1).saturating_sub(self.kernel.1) / self.stride.1 + 1;
        (oh, ow)
    }

    /// The number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_input(&self, input: &Tensor) -> (usize, usize, usize) {
        let s = input.shape();
        assert_eq!(s.len(), 4, "conv2d expects [N, C, H, W] input");
        assert_eq!(s[1], self.in_channels, "input channel mismatch");
        (s[0], s[2], s[3])
    }
}

/// Packs one `[in_c, h, w]` image into the im2col matrix
/// `col: [in_c·kh·kw, oh·ow]`, row `((ic·kh)+ky)·kw+kx`, column
/// `oy·ow+ox`. Padding taps become explicit zeros, which keeps the
/// following GEMM's accumulation order identical to the naive kernel's
/// skip-out-of-bounds loop (`x + ±0.0` only ever flips a `-0.0` to
/// `+0.0`, invisible to `f32` equality).
#[allow(clippy::too_many_arguments)]
fn im2col(
    x: &[f32],
    (in_c, h, w): (usize, usize, usize),
    (kh, kw): (usize, usize),
    (sh, sw): (usize, usize),
    (ph, pw): (usize, usize),
    (oh, ow): (usize, usize),
    col: &mut [f32],
) {
    let out_plane = oh * ow;
    let mut row = 0usize;
    for ic in 0..in_c {
        let x_plane = &x[ic * h * w..(ic + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let dst = &mut col[row * out_plane..(row + 1) * out_plane];
                row += 1;
                // Valid ox range: 0 <= ox·sw + kx − pw < w, hoisted out
                // of the inner loop so the copies run branch-free.
                let lo = if kx >= pw {
                    0
                } else {
                    (pw - kx).div_ceil(sw).min(ow)
                };
                let hi = if w + pw > kx {
                    ((w - 1 + pw - kx) / sw + 1).min(ow)
                } else {
                    0
                }
                .max(lo);
                for oy in 0..oh {
                    let iy = oy * sh + ky;
                    let d = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < ph || iy >= h + ph {
                        d.fill(0.0);
                        continue;
                    }
                    let src_row = &x_plane[(iy - ph) * w..(iy - ph + 1) * w];
                    d[..lo].fill(0.0);
                    d[hi..].fill(0.0);
                    if hi == lo {
                        continue;
                    }
                    if sw == 1 {
                        let start = lo + kx - pw;
                        d[lo..hi].copy_from_slice(&src_row[start..start + (hi - lo)]);
                    } else {
                        let mut ix = lo * sw + kx - pw;
                        for v in &mut d[lo..hi] {
                            *v = src_row[ix];
                            ix += sw;
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = self.infer(input);
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let (n, h, w) = self.check_input(input);
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let (ph, pw) = self.padding;
        let (oh, ow) = self.output_size(h, w);
        let mut out = Tensor::zeros(vec![n, self.out_channels, oh, ow]);
        let x = input.data();
        let wt = self.weight.data();
        let b = self.bias.data();
        let y = out.data_mut();

        let in_plane = h * w;
        let out_plane = oh * ow;
        for img in 0..n {
            for (oc, &bias_oc) in b.iter().enumerate() {
                let y_base = (img * self.out_channels + oc) * out_plane;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias_oc;
                        // Top-left corner of the receptive field in padded coords.
                        let iy0 = oy * sh;
                        let ix0 = ox * sw;
                        for ic in 0..self.in_channels {
                            let x_base = (img * self.in_channels + ic) * in_plane;
                            let w_base = ((oc * self.in_channels + ic) * kh) * kw;
                            for ky in 0..kh {
                                let iy = iy0 + ky;
                                if iy < ph || iy >= h + ph {
                                    continue;
                                }
                                let row = x_base + (iy - ph) * w;
                                let w_row = w_base + ky * kw;
                                for kx in 0..kw {
                                    let ix = ix0 + kx;
                                    if ix < pw || ix >= w + pw {
                                        continue;
                                    }
                                    acc += x[row + (ix - pw)] * wt[w_row + kx];
                                }
                            }
                        }
                        y[y_base + oy * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn infer_fast(&self, input: Vec<f32>, shape: Shape, ctx: &mut InferCtx) -> (Vec<f32>, Shape) {
        let dims = shape.dims();
        assert_eq!(dims.len(), 4, "conv2d expects [N, C, H, W] input");
        assert_eq!(dims[1], self.in_channels, "input channel mismatch");
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let (oh, ow) = self.output_size(h, w);
        let out_plane = oh * ow;
        let k = self.in_channels * self.kernel.0 * self.kernel.1;
        let mut out = ctx.acquire(n * self.out_channels * out_plane);
        let mut col = ctx.acquire(k * out_plane);
        let in_plane = h * w;
        let wt = self.weight.data();
        let b = self.bias.data();
        for img in 0..n {
            let x_img = &input[img * self.in_channels * in_plane..];
            let y_img = &mut out
                [img * self.out_channels * out_plane..(img + 1) * self.out_channels * out_plane];
            {
                let _span = mandipass_telemetry::span("im2col");
                im2col(
                    x_img,
                    (self.in_channels, h, w),
                    self.kernel,
                    self.stride,
                    self.padding,
                    (oh, ow),
                    &mut col,
                );
            }
            {
                let _span = mandipass_telemetry::span("bias_act");
                for (oc, &bias_oc) in b.iter().enumerate() {
                    y_img[oc * out_plane..(oc + 1) * out_plane].fill(bias_oc);
                }
            }
            {
                let _span = mandipass_telemetry::span("gemm");
                gemm_acc(self.out_channels, k, out_plane, wt, &col, y_img);
            }
        }
        ctx.release(col);
        ctx.release(input);
        (out, Shape::d4(n, self.out_channels, oh, ow))
    }

    fn absorb_affine(&mut self, scale: &[f32], shift: &[f32]) -> bool {
        if scale.len() != self.out_channels || shift.len() != self.out_channels {
            return false;
        }
        let per_oc = self.in_channels * self.kernel.0 * self.kernel.1;
        let wt = self.weight.data_mut();
        for (oc, &s) in scale.iter().enumerate() {
            for v in &mut wt[oc * per_oc..(oc + 1) * per_oc] {
                *v *= s;
            }
        }
        for ((bv, &s), &t) in self.bias.data_mut().iter_mut().zip(scale).zip(shift) {
            *bv = *bv * s + t;
        }
        true
    }

    fn training_cache_active(&self) -> bool {
        self.cached_input.is_some()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward requires a preceding training-mode forward");
        let (n, h, w) = self.check_input(&input);
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let (ph, pw) = self.padding;
        let (oh, ow) = self.output_size(h, w);
        assert_eq!(grad_output.shape(), &[n, self.out_channels, oh, ow]);

        let x = input.data();
        let wt = self.weight.data();
        let go = grad_output.data();
        let mut grad_input = Tensor::zeros(vec![n, self.in_channels, h, w]);
        let gx = grad_input.data_mut();
        let gw = self.grad_weight.data_mut();
        let gb = self.grad_bias.data_mut();

        let in_plane = h * w;
        let out_plane = oh * ow;
        for img in 0..n {
            for (oc, gb_oc) in gb.iter_mut().enumerate() {
                let go_base = (img * self.out_channels + oc) * out_plane;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[go_base + oy * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        *gb_oc += g;
                        let iy0 = oy * sh;
                        let ix0 = ox * sw;
                        for ic in 0..self.in_channels {
                            let x_base = (img * self.in_channels + ic) * in_plane;
                            let w_base = ((oc * self.in_channels + ic) * kh) * kw;
                            for ky in 0..kh {
                                let iy = iy0 + ky;
                                if iy < ph || iy >= h + ph {
                                    continue;
                                }
                                let row = x_base + (iy - ph) * w;
                                let w_row = w_base + ky * kw;
                                for kx in 0..kw {
                                    let ix = ix0 + kx;
                                    if ix < pw || ix >= w + pw {
                                        continue;
                                    }
                                    let xi = row + (ix - pw);
                                    gw[w_row + kx] += g * x[xi];
                                    gx[xi] += g * wt[w_row + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                value: &mut self.weight,
                grad: &mut self.grad_weight,
                name: "weight".into(),
            },
            Param {
                value: &mut self.bias,
                grad: &mut self.grad_bias,
                name: "bias".into(),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;

    #[test]
    fn output_size_matches_formula() {
        let conv = Conv2d::new(1, 1, (3, 3), (1, 2), (1, 1), 0);
        // The paper's first layer on a (6, 30) direction plane.
        assert_eq!(conv.output_size(6, 30), (6, 15));
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut conv = Conv2d::new(1, 1, (1, 1), (1, 1), (0, 0), 0);
        conv.weight = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 3]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn box_kernel_sums_receptive_field() {
        let mut conv = Conv2d::new(1, 1, (2, 2), (1, 1), (0, 0), 0);
        conv.weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[10.0]);
    }

    #[test]
    fn padding_extends_with_zeros() {
        let mut conv = Conv2d::new(1, 1, (3, 3), (1, 1), (1, 1), 0);
        conv.weight = Tensor::from_vec(vec![1, 1, 3, 3], vec![1.0; 9]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 1, 1], vec![5.0]).unwrap();
        let y = conv.forward(&x, false);
        // Single pixel, full padding: sum over receptive field is just 5.
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[5.0]);
    }

    #[test]
    fn bias_is_added_per_output_channel() {
        let mut conv = Conv2d::new(1, 2, (1, 1), (1, 1), (0, 0), 0);
        conv.weight = Tensor::from_vec(vec![2, 1, 1, 1], vec![0.0, 0.0]).unwrap();
        conv.bias = Tensor::from_vec(vec![2], vec![1.5, -2.5]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 1, 2], vec![9.0, 9.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), &[1.5, 1.5, -2.5, -2.5]);
    }

    #[test]
    fn stride_subsamples_output() {
        let mut conv = Conv2d::new(1, 1, (1, 1), (1, 2), (0, 0), 0);
        conv.weight = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 1, 6], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 3]);
        assert_eq!(y.data(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Small conv + flatten-as-logits so we can reuse cross_entropy.
        let mut conv = Conv2d::new(2, 2, (2, 2), (1, 1), (1, 1), 7);
        let x_data: Vec<f32> = (0..2 * 2 * 3 * 3)
            .map(|i| ((i * 13 % 17) as f32 - 8.0) / 10.0)
            .collect();
        let x = Tensor::from_vec(vec![2, 2, 3, 3], x_data).unwrap();
        let labels = [3usize, 11usize];

        let flatten_logits = |t: Tensor| {
            let n = t.shape()[0];
            let f = t.len() / n;
            t.reshape(vec![n, f]).unwrap()
        };

        conv.zero_grad();
        let out = conv.forward(&x, true);
        let n_feats = out.len() / 2;
        let logits = flatten_logits(out);
        let (_, grad) = cross_entropy(&logits, &labels);
        let grad4 = grad.reshape(vec![2, 2, 4, n_feats / 8]).unwrap();
        let grad_input = conv.backward(&grad4);

        let eps = 1e-2f32;
        let analytic_gw = conv.grad_weight.clone();
        for idx in (0..conv.weight.len()).step_by(3) {
            let orig = conv.weight.data()[idx];
            conv.weight.data_mut()[idx] = orig + eps;
            let (lp, _) = cross_entropy(&flatten_logits(conv.forward(&x, false)), &labels);
            conv.weight.data_mut()[idx] = orig - eps;
            let (lm, _) = cross_entropy(&flatten_logits(conv.forward(&x, false)), &labels);
            conv.weight.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic_gw.data()[idx]).abs() < 5e-3,
                "weight[{idx}]: fd {fd} vs analytic {}",
                analytic_gw.data()[idx]
            );
        }

        let mut x_var = x.clone();
        for idx in (0..x.len()).step_by(5) {
            let orig = x_var.data()[idx];
            x_var.data_mut()[idx] = orig + eps;
            let (lp, _) = cross_entropy(&flatten_logits(conv.forward(&x_var, false)), &labels);
            x_var.data_mut()[idx] = orig - eps;
            let (lm, _) = cross_entropy(&flatten_logits(conv.forward(&x_var, false)), &labels);
            x_var.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad_input.data()[idx]).abs() < 5e-3,
                "input[{idx}]: fd {fd} vs analytic {}",
                grad_input.data()[idx]
            );
        }
    }

    #[test]
    fn multi_channel_forward_sums_channels() {
        let mut conv = Conv2d::new(2, 1, (1, 1), (1, 1), (0, 0), 0);
        conv.weight = Tensor::from_vec(vec![1, 2, 1, 1], vec![1.0, 10.0]).unwrap();
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), &[31.0, 42.0]);
    }

    #[test]
    fn param_count_matches_design() {
        let mut conv = Conv2d::new(8, 16, (3, 3), (1, 2), (1, 1), 0);
        assert_eq!(conv.param_count(), 16 * 8 * 9 + 16);
    }

    #[test]
    fn infer_never_caches_and_eval_forward_never_clones() {
        // Regression: eval-shaped calls must not pay the training-cache
        // clone of the input.
        let mut conv = Conv2d::new(1, 2, (3, 3), (1, 2), (1, 1), 3);
        let x = Tensor::from_vec(vec![1, 1, 4, 6], (0..24).map(|i| i as f32).collect()).unwrap();
        let _ = conv.infer(&x);
        assert!(!conv.training_cache_active(), "infer cached its input");
        let _ = conv.forward(&x, false);
        assert!(
            !conv.training_cache_active(),
            "eval-mode forward cloned the input into the cache"
        );
        let _ = conv.forward(&x, true);
        assert!(conv.training_cache_active(), "training forward must cache");
        let g = Tensor::zeros(vec![1, 2, 4, 3]);
        let _ = conv.backward(&g);
        assert!(!conv.training_cache_active(), "backward consumes the cache");
    }

    #[test]
    fn fast_path_is_bit_exact_on_paper_geometry() {
        let conv = Conv2d::new(8, 16, (3, 3), (1, 2), (1, 1), 21);
        let x = Tensor::from_vec(
            vec![2, 8, 6, 15],
            (0..2 * 8 * 6 * 15)
                .map(|i| ((i as f32) * 0.731).sin())
                .collect(),
        )
        .unwrap();
        let reference = conv.infer(&x);
        let mut ctx = InferCtx::new();
        let buf = {
            let mut b = ctx.acquire(x.len());
            b.copy_from_slice(x.data());
            b
        };
        let (fast, shape) = conv.infer_fast(buf, Shape::from_dims(x.shape()), &mut ctx);
        assert_eq!(shape.dims(), reference.shape());
        assert_eq!(&fast[..], reference.data());
    }

    #[test]
    fn absorb_affine_rejects_channel_mismatch() {
        let mut conv = Conv2d::new(1, 2, (1, 1), (1, 1), (0, 0), 0);
        assert!(!conv.absorb_affine(&[1.0; 3], &[0.0; 3]));
        assert!(conv.absorb_affine(&[2.0, 3.0], &[0.5, -0.5]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mandipass_util::proptest::prelude::*;

    proptest! {
        // The im2col+GEMM fast path matches the naive oracle bit for bit
        // across randomized shapes, rectangular strides and asymmetric
        // padding — including kernels larger than the padded input edge
        // (where `output_size` saturates and the sums are partial).
        #[test]
        fn im2col_gemm_matches_naive_oracle(
            n in 1usize..3,
            in_c in 1usize..4,
            out_c in 1usize..4,
            h in 1usize..7,
            w in 1usize..9,
            kh in 1usize..5,
            kw in 1usize..5,
            sh in 1usize..4,
            sw in 1usize..4,
            ph in 0usize..3,
            pw in 0usize..3,
            seed in 0u64..64,
        ) {
            let conv = Conv2d::new(in_c, out_c, (kh, kw), (sh, sw), (ph, pw), seed);
            let len = n * in_c * h * w;
            let x = Tensor::from_vec(
                vec![n, in_c, h, w],
                (0..len).map(|i| ((i as f32) + seed as f32).sin() * 2.0 - 0.5).collect(),
            ).unwrap();
            let reference = conv.infer(&x);
            let mut ctx = InferCtx::new();
            let mut buf = ctx.acquire(len);
            buf.copy_from_slice(x.data());
            let (fast, shape) = conv.infer_fast(buf, Shape::from_dims(x.shape()), &mut ctx);
            prop_assert_eq!(shape.dims(), reference.shape());
            prop_assert_eq!(&fast[..], reference.data());
        }
    }
}
