//! 2-D convolution with padding and rectangular stride.
//!
//! The paper's extractor uses 3×3 kernels with a stride of 1×2 (stride 1
//! across axes, 2 across time), so stride and padding are independent per
//! dimension here.

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::SeedableRng;

use crate::init::kaiming_normal;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A 2-D convolution layer.
///
/// Input shape `[N, in_channels, H, W]`, output shape
/// `[N, out_channels, H_out, W_out]` with
/// `H_out = (H + 2·pad_h − kh) / stride_h + 1` (and likewise for `W`).
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    weight: Tensor, // [out_c, in_c, kh, kw]
    bias: Tensor,   // [out_c]
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-normal weights and zero
    /// bias, deterministically initialised from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any kernel or stride dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        seed: u64,
    ) -> Self {
        assert!(
            kernel.0 > 0 && kernel.1 > 0,
            "kernel dimensions must be positive"
        );
        assert!(
            stride.0 > 0 && stride.1 > 0,
            "stride dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_channels * kernel.0 * kernel.1;
        let len = out_channels * fan_in;
        let weight = Tensor::from_vec(
            vec![out_channels, in_channels, kernel.0, kernel.1],
            kaiming_normal(&mut rng, fan_in, len),
        )
        .expect("weight shape matches generated data");
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight,
            bias: Tensor::zeros(vec![out_channels]),
            grad_weight: Tensor::zeros(vec![out_channels, in_channels, kernel.0, kernel.1]),
            grad_bias: Tensor::zeros(vec![out_channels]),
            cached_input: None,
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding.0).saturating_sub(self.kernel.0) / self.stride.0 + 1;
        let ow = (w + 2 * self.padding.1).saturating_sub(self.kernel.1) / self.stride.1 + 1;
        (oh, ow)
    }

    /// The number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_input(&self, input: &Tensor) -> (usize, usize, usize) {
        let s = input.shape();
        assert_eq!(s.len(), 4, "conv2d expects [N, C, H, W] input");
        assert_eq!(s[1], self.in_channels, "input channel mismatch");
        (s[0], s[2], s[3])
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = self.infer(input);
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let (n, h, w) = self.check_input(input);
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let (ph, pw) = self.padding;
        let (oh, ow) = self.output_size(h, w);
        let mut out = Tensor::zeros(vec![n, self.out_channels, oh, ow]);
        let x = input.data();
        let wt = self.weight.data();
        let b = self.bias.data();
        let y = out.data_mut();

        let in_plane = h * w;
        let out_plane = oh * ow;
        for img in 0..n {
            for (oc, &bias_oc) in b.iter().enumerate() {
                let y_base = (img * self.out_channels + oc) * out_plane;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias_oc;
                        // Top-left corner of the receptive field in padded coords.
                        let iy0 = oy * sh;
                        let ix0 = ox * sw;
                        for ic in 0..self.in_channels {
                            let x_base = (img * self.in_channels + ic) * in_plane;
                            let w_base = ((oc * self.in_channels + ic) * kh) * kw;
                            for ky in 0..kh {
                                let iy = iy0 + ky;
                                if iy < ph || iy >= h + ph {
                                    continue;
                                }
                                let row = x_base + (iy - ph) * w;
                                let w_row = w_base + ky * kw;
                                for kx in 0..kw {
                                    let ix = ix0 + kx;
                                    if ix < pw || ix >= w + pw {
                                        continue;
                                    }
                                    acc += x[row + (ix - pw)] * wt[w_row + kx];
                                }
                            }
                        }
                        y[y_base + oy * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward requires a preceding training-mode forward");
        let (n, h, w) = self.check_input(&input);
        let (kh, kw) = self.kernel;
        let (sh, sw) = self.stride;
        let (ph, pw) = self.padding;
        let (oh, ow) = self.output_size(h, w);
        assert_eq!(grad_output.shape(), &[n, self.out_channels, oh, ow]);

        let x = input.data();
        let wt = self.weight.data();
        let go = grad_output.data();
        let mut grad_input = Tensor::zeros(vec![n, self.in_channels, h, w]);
        let gx = grad_input.data_mut();
        let gw = self.grad_weight.data_mut();
        let gb = self.grad_bias.data_mut();

        let in_plane = h * w;
        let out_plane = oh * ow;
        for img in 0..n {
            for (oc, gb_oc) in gb.iter_mut().enumerate() {
                let go_base = (img * self.out_channels + oc) * out_plane;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[go_base + oy * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        *gb_oc += g;
                        let iy0 = oy * sh;
                        let ix0 = ox * sw;
                        for ic in 0..self.in_channels {
                            let x_base = (img * self.in_channels + ic) * in_plane;
                            let w_base = ((oc * self.in_channels + ic) * kh) * kw;
                            for ky in 0..kh {
                                let iy = iy0 + ky;
                                if iy < ph || iy >= h + ph {
                                    continue;
                                }
                                let row = x_base + (iy - ph) * w;
                                let w_row = w_base + ky * kw;
                                for kx in 0..kw {
                                    let ix = ix0 + kx;
                                    if ix < pw || ix >= w + pw {
                                        continue;
                                    }
                                    let xi = row + (ix - pw);
                                    gw[w_row + kx] += g * x[xi];
                                    gx[xi] += g * wt[w_row + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                value: &mut self.weight,
                grad: &mut self.grad_weight,
                name: "weight".into(),
            },
            Param {
                value: &mut self.bias,
                grad: &mut self.grad_bias,
                name: "bias".into(),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;

    #[test]
    fn output_size_matches_formula() {
        let conv = Conv2d::new(1, 1, (3, 3), (1, 2), (1, 1), 0);
        // The paper's first layer on a (6, 30) direction plane.
        assert_eq!(conv.output_size(6, 30), (6, 15));
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut conv = Conv2d::new(1, 1, (1, 1), (1, 1), (0, 0), 0);
        conv.weight = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 3]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn box_kernel_sums_receptive_field() {
        let mut conv = Conv2d::new(1, 1, (2, 2), (1, 1), (0, 0), 0);
        conv.weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[10.0]);
    }

    #[test]
    fn padding_extends_with_zeros() {
        let mut conv = Conv2d::new(1, 1, (3, 3), (1, 1), (1, 1), 0);
        conv.weight = Tensor::from_vec(vec![1, 1, 3, 3], vec![1.0; 9]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 1, 1], vec![5.0]).unwrap();
        let y = conv.forward(&x, false);
        // Single pixel, full padding: sum over receptive field is just 5.
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data(), &[5.0]);
    }

    #[test]
    fn bias_is_added_per_output_channel() {
        let mut conv = Conv2d::new(1, 2, (1, 1), (1, 1), (0, 0), 0);
        conv.weight = Tensor::from_vec(vec![2, 1, 1, 1], vec![0.0, 0.0]).unwrap();
        conv.bias = Tensor::from_vec(vec![2], vec![1.5, -2.5]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 1, 2], vec![9.0, 9.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), &[1.5, 1.5, -2.5, -2.5]);
    }

    #[test]
    fn stride_subsamples_output() {
        let mut conv = Conv2d::new(1, 1, (1, 1), (1, 2), (0, 0), 0);
        conv.weight = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 1, 6], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 3]);
        assert_eq!(y.data(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Small conv + flatten-as-logits so we can reuse cross_entropy.
        let mut conv = Conv2d::new(2, 2, (2, 2), (1, 1), (1, 1), 7);
        let x_data: Vec<f32> = (0..2 * 2 * 3 * 3)
            .map(|i| ((i * 13 % 17) as f32 - 8.0) / 10.0)
            .collect();
        let x = Tensor::from_vec(vec![2, 2, 3, 3], x_data).unwrap();
        let labels = [3usize, 11usize];

        let flatten_logits = |t: Tensor| {
            let n = t.shape()[0];
            let f = t.len() / n;
            t.reshape(vec![n, f]).unwrap()
        };

        conv.zero_grad();
        let out = conv.forward(&x, true);
        let n_feats = out.len() / 2;
        let logits = flatten_logits(out);
        let (_, grad) = cross_entropy(&logits, &labels);
        let grad4 = grad.reshape(vec![2, 2, 4, n_feats / 8]).unwrap();
        let grad_input = conv.backward(&grad4);

        let eps = 1e-2f32;
        let analytic_gw = conv.grad_weight.clone();
        for idx in (0..conv.weight.len()).step_by(3) {
            let orig = conv.weight.data()[idx];
            conv.weight.data_mut()[idx] = orig + eps;
            let (lp, _) = cross_entropy(&flatten_logits(conv.forward(&x, false)), &labels);
            conv.weight.data_mut()[idx] = orig - eps;
            let (lm, _) = cross_entropy(&flatten_logits(conv.forward(&x, false)), &labels);
            conv.weight.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic_gw.data()[idx]).abs() < 5e-3,
                "weight[{idx}]: fd {fd} vs analytic {}",
                analytic_gw.data()[idx]
            );
        }

        let mut x_var = x.clone();
        for idx in (0..x.len()).step_by(5) {
            let orig = x_var.data()[idx];
            x_var.data_mut()[idx] = orig + eps;
            let (lp, _) = cross_entropy(&flatten_logits(conv.forward(&x_var, false)), &labels);
            x_var.data_mut()[idx] = orig - eps;
            let (lm, _) = cross_entropy(&flatten_logits(conv.forward(&x_var, false)), &labels);
            x_var.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad_input.data()[idx]).abs() < 5e-3,
                "input[{idx}]: fd {fd} vs analytic {}",
                grad_input.data()[idx]
            );
        }
    }

    #[test]
    fn multi_channel_forward_sums_channels() {
        let mut conv = Conv2d::new(2, 1, (1, 1), (1, 1), (0, 0), 0);
        conv.weight = Tensor::from_vec(vec![1, 2, 1, 1], vec![1.0, 10.0]).unwrap();
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), &[31.0, 42.0]);
    }

    #[test]
    fn param_count_matches_design() {
        let mut conv = Conv2d::new(8, 16, (3, 3), (1, 2), (1, 1), 0);
        assert_eq!(conv.param_count(), 16 * 8 * 9 + 16);
    }
}
