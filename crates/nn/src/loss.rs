//! Softmax cross-entropy loss.

use crate::tensor::Tensor;

/// Softmax cross-entropy over logits `[N, classes]` against integer
/// `labels` (one per row).
///
/// Returns `(mean_loss, grad_logits)` where `grad_logits` is the gradient
/// of the mean loss with respect to the logits — ready to feed into
/// [`Layer::backward`](crate::layer::Layer::backward) of the final layer.
///
/// # Panics
///
/// Panics when `labels.len()` differs from the batch size or a label is out
/// of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(
        logits.shape().len(),
        2,
        "cross_entropy expects [N, classes] logits"
    );
    let n = logits.shape()[0];
    let classes = logits.shape()[1];
    assert_eq!(labels.len(), n, "one label per batch row required");

    let x = logits.data();
    let mut grad = Tensor::zeros(vec![n, classes]);
    let g = grad.data_mut();
    let mut total_loss = 0.0f64;

    for i in 0..n {
        let row = &x[i * classes..(i + 1) * classes];
        let label = labels[i];
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        // Numerically stable log-softmax.
        let max = row.iter().cloned().fold(f32::MIN, f32::max);
        let sum_exp: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        let log_sum = sum_exp.ln() + max;
        total_loss += f64::from(log_sum - row[label]);
        let grow = &mut g[i * classes..(i + 1) * classes];
        for (c, gv) in grow.iter_mut().enumerate() {
            let softmax = (row[c] - log_sum).exp();
            *gv = (softmax - if c == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((total_loss / n as f64) as f32, grad)
}

/// Classification accuracy of `logits` against `labels`: fraction of rows
/// whose arg-max equals the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(logits.shape().len(), 2);
    let n = logits.shape()[0];
    let classes = logits.shape()[1];
    assert_eq!(labels.len(), n);
    let x = logits.data();
    let mut correct = 0usize;
    for i in 0..n {
        let row = &x[i * classes..(i + 1) * classes];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("logits are finite"))
            .map(|(c, _)| c)
            .expect("row is non-empty");
        if pred == labels[i] {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor::zeros(vec![2, 4]);
        let (loss, _) = cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![1, 3], vec![10.0, 0.0, 0.0]).unwrap();
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0]).unwrap();
        let (_, grad) = cross_entropy(&logits, &[2, 0]);
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.3, -0.7, 1.1, -0.2, 0.9, 0.4]).unwrap();
        let labels = [1usize, 2usize];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (loss_p, _) = cross_entropy(&lp, &labels);
            let (loss_m, _) = cross_entropy(&lm, &labels);
            let fd = (loss_p - loss_m) / (2.0 * eps);
            assert!((fd - grad.data()[idx]).abs() < 1e-4, "idx {idx}");
        }
    }

    #[test]
    fn loss_is_stable_for_huge_logits() {
        let logits = Tensor::from_vec(vec![1, 2], vec![1e4, -1e4]).unwrap();
        let (loss, grad) = cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let logits = Tensor::zeros(vec![1, 2]);
        let _ = cross_entropy(&logits, &[5]);
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(vec![3, 2], vec![2.0, 1.0, 0.0, 5.0, 1.0, 0.0]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-12);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-12);
    }
}
