//! Optimisers: Adam (the paper's choice) and plain SGD.

use crate::layer::Param;

/// An optimiser that updates a fixed set of parameters in place.
///
/// The caller passes the *same* parameter list (same order) to every
/// [`Optimizer::step`]; stateful optimisers key their per-parameter state
/// by position.
pub trait Optimizer {
    /// Applies one update step to `params` using their accumulated
    /// gradients, then leaves the gradients untouched (callers clear them
    /// with [`Layer::zero_grad`](crate::layer::Layer::zero_grad)).
    fn step(&mut self, params: &mut [Param<'_>]);
}

/// Adam optimiser (Kingma & Ba), the update rule the paper trains with.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimiser with the given learning rate and the
    /// standard defaults `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Overrides the exponential-decay coefficients.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Param<'_>]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "parameter list changed between steps"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            assert_eq!(
                self.m[i].len(),
                p.value.len(),
                "parameter size changed between steps"
            );
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let values = p.value.data_mut();
            let grads = p.grad.data();
            for j in 0..values.len() {
                let g = grads[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                let m_hat = m[j] / b1t;
                let v_hat = v[j] / b2t;
                values[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimiser without momentum.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Enables classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Param<'_>]) {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "parameter list changed between steps"
        );
        for (i, p) in params.iter_mut().enumerate() {
            let vel = &mut self.velocity[i];
            let values = p.value.data_mut();
            let grads = p.grad.data();
            for j in 0..values.len() {
                vel[j] = self.momentum * vel[j] + grads[j];
                values[j] -= self.lr * vel[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn make_param(value: Vec<f32>, grad: Vec<f32>) -> (Tensor, Tensor) {
        let n = value.len();
        (
            Tensor::from_vec(vec![n], value).unwrap(),
            Tensor::from_vec(vec![n], grad).unwrap(),
        )
    }

    #[test]
    fn adam_first_step_matches_hand_computation() {
        // For the first step, m̂ = g and v̂ = g², so Δ = lr · g / (|g| + ε).
        let (mut val, mut grad) = make_param(vec![1.0, -2.0], vec![0.5, -0.5]);
        let mut adam = Adam::new(0.1);
        let mut params = vec![Param {
            value: &mut val,
            grad: &mut grad,
            name: "p".into(),
        }];
        adam.step(&mut params);
        assert!(
            (val.data()[0] - (1.0 - 0.1)).abs() < 1e-5,
            "{}",
            val.data()[0]
        );
        assert!(
            (val.data()[1] - (-2.0 + 0.1)).abs() < 1e-5,
            "{}",
            val.data()[1]
        );
    }

    #[test]
    fn adam_minimises_quadratic() {
        // Minimise f(x) = (x − 3)²; gradient 2(x − 3).
        let (mut val, mut grad) = make_param(vec![0.0], vec![0.0]);
        let mut adam = Adam::new(0.05);
        for _ in 0..2000 {
            let x = val.data()[0];
            grad.data_mut()[0] = 2.0 * (x - 3.0);
            let mut params = vec![Param {
                value: &mut val,
                grad: &mut grad,
                name: "x".into(),
            }];
            adam.step(&mut params);
        }
        assert!((val.data()[0] - 3.0).abs() < 1e-2, "{}", val.data()[0]);
    }

    #[test]
    fn sgd_step_is_lr_times_grad() {
        let (mut val, mut grad) = make_param(vec![1.0], vec![2.0]);
        let mut sgd = Sgd::new(0.5);
        let mut params = vec![Param {
            value: &mut val,
            grad: &mut grad,
            name: "p".into(),
        }];
        sgd.step(&mut params);
        assert_eq!(val.data()[0], 0.0);
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let (mut val, mut grad) = make_param(vec![0.0], vec![1.0]);
        let mut sgd = Sgd::new(1.0).with_momentum(0.5);
        for _ in 0..2 {
            let mut params = vec![Param {
                value: &mut val,
                grad: &mut grad,
                name: "p".into(),
            }];
            sgd.step(&mut params);
        }
        // Step 1: v = 1, x = −1. Step 2: v = 1.5, x = −2.5.
        assert_eq!(val.data()[0], -2.5);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut adam = Adam::new(0.1);
        adam.set_learning_rate(0.01);
        assert_eq!(adam.learning_rate(), 0.01);
    }

    #[test]
    #[should_panic(expected = "parameter list changed")]
    fn changing_param_count_panics() {
        let (mut v1, mut g1) = make_param(vec![0.0], vec![0.0]);
        let (mut v2, mut g2) = make_param(vec![0.0], vec![0.0]);
        let mut adam = Adam::new(0.1);
        let mut params = vec![Param {
            value: &mut v1,
            grad: &mut g1,
            name: "a".into(),
        }];
        adam.step(&mut params);
        let mut params = vec![
            Param {
                value: &mut v1,
                grad: &mut g1,
                name: "a".into(),
            },
            Param {
                value: &mut v2,
                grad: &mut g2,
                name: "b".into(),
            },
        ];
        adam.step(&mut params);
    }
}
