//! Blocked GEMM accumulation kernel for the inference fast path.
//!
//! `C[m×n] += A[m×k] · B[k×n]` over row-major slices, with `C`
//! pre-initialised by the caller (to the layer bias, matching the naive
//! kernels' `acc = bias` start). The loop nest is i–k–j with the `j`
//! loop innermost over contiguous rows of `B` and `C`, a plain
//! axpy the autovectorizer turns into SIMD; `k` ascends, so every
//! output element accumulates its products in exactly the order the
//! naive convolution/linear loop nests use — the fast path is bit-exact
//! against them. The `j` dimension is tiled so one strip of `C` and the
//! matching `B` columns stay cache-resident while the full `k` range
//! streams through.

/// Column-tile width: 256 floats = 1 KiB per row strip, comfortably
/// inside L1 alongside the streaming `B` rows.
pub const GEMM_TILE: usize = 256;

/// Accumulates `c += a · b` for row-major `a: [m, k]`, `b: [k, n]`,
/// `c: [m, n]`.
///
/// # Panics
///
/// Panics (in debug builds) when a slice is shorter than its shape
/// implies; release builds would panic on the out-of-range index.
pub fn gemm_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert!(a.len() >= m * k, "A is {} < {m}x{k}", a.len());
    debug_assert!(b.len() >= k * n, "B is {} < {k}x{n}", b.len());
    debug_assert!(c.len() >= m * n, "C is {} < {m}x{n}", c.len());
    let mut jb = 0;
    while jb < n {
        let je = (jb + GEMM_TILE).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n + jb..i * n + je];
            for (kk, &aik) in a_row.iter().enumerate() {
                let b_row = &b[kk * n + jb..kk * n + je];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
        jb = je;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
    }

    #[test]
    fn matches_naive_matmul() {
        let (m, k, n) = (3, 5, 7);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut c_fast = vec![0.5; m * n];
        let mut c_ref = vec![0.5; m * n];
        gemm_acc(m, k, n, &a, &b, &mut c_fast);
        naive(m, k, n, &a, &b, &mut c_ref);
        for (f, r) in c_fast.iter().zip(&c_ref) {
            assert!((f - r).abs() < 1e-5, "{f} vs {r}");
        }
    }

    #[test]
    fn tiling_boundary_is_exact() {
        // n spans multiple tiles including a ragged tail.
        let (m, k, n) = (2, 3, GEMM_TILE * 2 + 17);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i % 13) as f32) * 0.25).collect();
        let mut c_fast = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        gemm_acc(m, k, n, &a, &b, &mut c_fast);
        naive(m, k, n, &a, &b, &mut c_ref);
        assert_eq!(c_fast, c_ref);
    }

    #[test]
    fn accumulates_onto_existing_c() {
        let mut c = vec![1.0, 2.0];
        gemm_acc(1, 1, 2, &[3.0], &[10.0, 20.0], &mut c);
        assert_eq!(c, vec![31.0, 62.0]);
    }

    #[test]
    fn degenerate_dims_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm_acc(0, 4, 0, &[], &[], &mut c);
        let mut c = vec![7.0];
        gemm_acc(1, 0, 1, &[], &[], &mut c);
        assert_eq!(c, vec![7.0]);
    }
}
