//! Activation layers: ReLU and Sigmoid.

use crate::infer::{InferCtx, Shape};
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)` elementwise.
///
/// The paper places a ReLU after every batch-norm in the convolutional
/// branches to "decrease the inter-neuronal dependence".
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Layer for ReLU {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut out = input.clone();
        for v in out.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }

    fn infer_fast(
        &self,
        mut input: Vec<f32>,
        shape: Shape,
        ctx: &mut InferCtx,
    ) -> (Vec<f32>, Shape) {
        let _ = ctx;
        for v in &mut input {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        (input, shape)
    }

    fn training_cache_active(&self) -> bool {
        self.mask.is_some()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("backward requires a preceding training-mode forward");
        assert_eq!(mask.len(), grad_output.len(), "gradient shape mismatch");
        let mut grad = grad_output.clone();
        for (g, pass) in grad.data_mut().iter_mut().zip(&mask) {
            if !pass {
                *g = 0.0;
            }
        }
        grad
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }
}

/// Logistic sigmoid: `y = 1 / (1 + e^{−x})` elementwise.
///
/// The paper's MandiblePrint is the output of a sigmoid, so every
/// component of the biometric vector lies in `(0, 1)`.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid {
            cached_output: None,
        }
    }
}

impl Layer for Sigmoid {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = self.infer(input);
        if train {
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut out = input.clone();
        for v in out.data_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        out
    }

    fn infer_fast(
        &self,
        mut input: Vec<f32>,
        shape: Shape,
        ctx: &mut InferCtx,
    ) -> (Vec<f32>, Shape) {
        let _ = ctx;
        for v in &mut input {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        (input, shape)
    }

    fn training_cache_active(&self) -> bool {
        self.cached_output.is_some()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("backward requires a preceding training-mode forward");
        assert_eq!(y.len(), grad_output.len(), "gradient shape mismatch");
        let mut grad = grad_output.clone();
        for (g, &yv) in grad.data_mut().iter_mut().zip(y.data()) {
            *g *= yv * (1.0 - yv);
        }
        grad
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 0.5, 2.0]).unwrap();
        let y = relu.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 0.5, 2.0]).unwrap();
        relu.forward(&x, true);
        let g = Tensor::from_vec(vec![4], vec![1.0; 4]).unwrap();
        let gx = relu.backward(&g);
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sigmoid_maps_into_unit_interval() {
        let mut sig = Sigmoid::new();
        let x = Tensor::from_vec(vec![3], vec![-10.0, 0.0, 10.0]).unwrap();
        let y = sig.forward(&x, false);
        assert!(y.data()[0] < 1e-4);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-4);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        let mut sig = Sigmoid::new();
        let x = Tensor::from_vec(vec![3], vec![-0.7, 0.3, 1.2]).unwrap();
        sig.forward(&x, true);
        let g = Tensor::from_vec(vec![3], vec![1.0; 3]).unwrap();
        let gx = sig.backward(&g);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp: f32 = sig.forward(&xp, false).data()[i];
            let ym: f32 = sig.forward(&xm, false).data()[i];
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (fd - gx.data()[i]).abs() < 1e-4,
                "i={i}: fd {fd} vs {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(ReLU::new().param_count(), 0);
        assert_eq!(Sigmoid::new().param_count(), 0);
    }
}
