//! A dense row-major tensor of `f32` values.
//!
//! Deliberately minimal: shape bookkeeping, element access, and the handful
//! of arithmetic helpers the layers need. All layer math operates on the
//! flat data slice directly for speed.

use crate::error::NnError;

/// A dense, row-major, heap-allocated tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or any dimension is zero.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = checked_len(&shape);
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or any dimension is zero.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let len = checked_len(&shape);
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `data.len()` differs from the
    /// element count implied by `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, NnError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() || shape.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected,
                got: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for constructed
    /// tensors, kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat data slice, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self, NnError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() || shape.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected,
                got: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Element at a 2-D index `(row, col)`; the tensor must be rank 2.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank 2 or the index is out of range.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 requires a rank-2 tensor");
        self.data[row * self.shape[1] + col]
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign requires equal shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, factor: f32) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Sets every element to zero (used to clear gradients).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Concatenates rank-2 tensors along the feature (column) axis.
    ///
    /// All inputs must share the same number of rows. Used to merge the two
    /// CNN branch outputs before the fully connected layer.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty, any part is not rank 2, or row counts
    /// differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols needs at least one tensor");
        let rows = parts[0].shape()[0];
        for p in parts {
            assert_eq!(p.shape().len(), 2, "concat_cols requires rank-2 tensors");
            assert_eq!(p.shape()[0], rows, "concat_cols requires equal row counts");
        }
        let total_cols: usize = parts.iter().map(|p| p.shape()[1]).sum();
        let mut out = Tensor::zeros(vec![rows, total_cols]);
        for r in 0..rows {
            let mut col = 0;
            for p in parts {
                let c = p.shape()[1];
                out.data[r * total_cols + col..r * total_cols + col + c]
                    .copy_from_slice(&p.data[r * c..(r + 1) * c]);
                col += c;
            }
        }
        out
    }

    /// Splits a rank-2 tensor into column blocks of the given widths —
    /// the inverse of [`Tensor::concat_cols`].
    ///
    /// # Panics
    ///
    /// Panics when the widths do not sum to the column count.
    pub fn split_cols(&self, widths: &[usize]) -> Vec<Tensor> {
        assert_eq!(self.shape.len(), 2, "split_cols requires a rank-2 tensor");
        let rows = self.shape[0];
        let cols = self.shape[1];
        assert_eq!(
            widths.iter().sum::<usize>(),
            cols,
            "widths must sum to column count"
        );
        let mut out = Vec::with_capacity(widths.len());
        let mut offset = 0;
        for &w in widths {
            let mut t = Tensor::zeros(vec![rows, w]);
            for r in 0..rows {
                t.data[r * w..(r + 1) * w]
                    .copy_from_slice(&self.data[r * cols + offset..r * cols + offset + w]);
            }
            out.push(t);
            offset += w;
        }
        out
    }
}

fn checked_len(shape: &[usize]) -> usize {
    assert!(
        !shape.is_empty(),
        "tensor shape must have at least one dimension"
    );
    assert!(
        shape.iter().all(|&d| d > 0),
        "tensor dimensions must be positive"
    );
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_len() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&x| x == 0.0));
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![2, 2], vec![1.0; 5]),
            Err(NnError::ShapeMismatch {
                expected: 4,
                got: 5
            })
        ));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.clone().reshape(vec![3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn at2_indexes_row_major() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        assert_eq!(t.at2(0, 0), 0.0);
        assert_eq!(t.at2(1, 2), 5.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::full(vec![2, 2], 1.0);
        let b = Tensor::full(vec![2, 2], 2.0);
        a.add_assign(&b);
        a.scale(0.5);
        assert!(a.data().iter().all(|&x| x == 1.5));
    }

    #[test]
    fn zero_clears_data() {
        let mut t = Tensor::full(vec![3], 7.0);
        t.zero();
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn concat_and_split_round_trip() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 3], vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0]).unwrap();
        let cat = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(cat.shape(), &[2, 5]);
        assert_eq!(
            cat.data(),
            &[1.0, 2.0, 5.0, 6.0, 7.0, 3.0, 4.0, 8.0, 9.0, 10.0]
        );
        let parts = cat.split_cols(&[2, 3]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    #[should_panic(expected = "equal row counts")]
    fn concat_rejects_row_mismatch() {
        let a = Tensor::zeros(vec![2, 2]);
        let b = Tensor::zeros(vec![3, 2]);
        let _ = Tensor::concat_cols(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        let _ = Tensor::zeros(vec![2, 0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use mandipass_util::proptest::prelude::*;

    proptest! {
        #[test]
        fn concat_split_is_identity(
            rows in 1usize..5,
            w1 in 1usize..6,
            w2 in 1usize..6,
        ) {
            let a = Tensor::from_vec(vec![rows, w1], (0..rows * w1).map(|i| i as f32).collect()).unwrap();
            let b = Tensor::from_vec(vec![rows, w2], (0..rows * w2).map(|i| (i as f32) * -1.5).collect()).unwrap();
            let cat = Tensor::concat_cols(&[&a, &b]);
            let parts = cat.split_cols(&[w1, w2]);
            prop_assert_eq!(&parts[0], &a);
            prop_assert_eq!(&parts[1], &b);
        }

        #[test]
        fn reshape_round_trip(r in 1usize..6, c in 1usize..6) {
            let t = Tensor::from_vec(vec![r, c], (0..r * c).map(|i| i as f32).collect()).unwrap();
            let back = t.clone().reshape(vec![c, r]).unwrap().reshape(vec![r, c]).unwrap();
            prop_assert_eq!(t, back);
        }
    }
}
