//! Batch normalisation over the channel dimension of 4-D activations.
//!
//! The paper follows every convolution with a batch-norm "to prevent data
//! distribution from offset". Training mode normalises with batch
//! statistics and maintains exponential running statistics; evaluation mode
//! uses the running statistics, so single probes verify deterministically.

use crate::infer::{InferCtx, Shape};
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Batch normalisation for `[N, C, H, W]` activations, per channel.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor, // scale, [C]
    beta: Tensor,  // shift, [C]
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    // Dummy gradient buffers so the running statistics can be exposed as
    // serialisable state without ever being optimised (their gradients
    // stay zero).
    grad_running_mean: Tensor,
    grad_running_var: Tensor,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    normalized: Tensor,
    batch_var: Vec<f32>,
    shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels with the usual
    /// defaults (`eps = 1e-5`, `momentum = 0.1`, γ = 1, β = 0).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::full(vec![channels], 1.0),
            beta: Tensor::zeros(vec![channels]),
            grad_gamma: Tensor::zeros(vec![channels]),
            grad_beta: Tensor::zeros(vec![channels]),
            running_mean: Tensor::zeros(vec![channels]),
            running_var: Tensor::full(vec![channels], 1.0),
            grad_running_mean: Tensor::zeros(vec![channels]),
            grad_running_var: Tensor::zeros(vec![channels]),
            cache: None,
        }
    }

    /// The running per-channel means used in evaluation mode.
    pub fn running_mean(&self) -> &[f32] {
        self.running_mean.data()
    }

    /// The running per-channel variances used in evaluation mode.
    pub fn running_var(&self) -> &[f32] {
        self.running_var.data()
    }

    fn check_input(&self, input: &Tensor) -> (usize, usize) {
        let s = input.shape();
        assert_eq!(s.len(), 4, "batchnorm2d expects [N, C, H, W] input");
        assert_eq!(s[1], self.channels, "channel count mismatch");
        (s[0], s[2] * s[3])
    }
}

impl Layer for BatchNorm2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.infer(input);
        }
        let (n, plane) = self.check_input(input);
        let x = input.data();
        let mut out = input.clone();
        let count = (n * plane) as f32;

        let mut mean = vec![0.0f32; self.channels];
        let mut var = vec![0.0f32; self.channels];
        for img in 0..n {
            for (c, mean_c) in mean.iter_mut().enumerate() {
                let base = (img * self.channels + c) * plane;
                for i in 0..plane {
                    *mean_c += x[base + i];
                }
            }
        }
        for m in &mut mean {
            *m /= count;
        }
        for img in 0..n {
            for c in 0..self.channels {
                let base = (img * self.channels + c) * plane;
                for i in 0..plane {
                    let d = x[base + i] - mean[c];
                    var[c] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= count;
        }
        {
            let rm = self.running_mean.data_mut();
            let rv = self.running_var.data_mut();
            for c in 0..self.channels {
                rm[c] = (1.0 - self.momentum) * rm[c] + self.momentum * mean[c];
                rv[c] = (1.0 - self.momentum) * rv[c] + self.momentum * var[c];
            }
        }

        let gamma = self.gamma.data();
        let beta = self.beta.data();
        let y = out.data_mut();
        let mut normalized = vec![0.0f32; x.len()];
        for img in 0..n {
            for c in 0..self.channels {
                let base = (img * self.channels + c) * plane;
                let inv_std = 1.0 / (var[c] + self.eps).sqrt();
                for i in 0..plane {
                    let xh = (x[base + i] - mean[c]) * inv_std;
                    normalized[base + i] = xh;
                    y[base + i] = gamma[c] * xh + beta[c];
                }
            }
        }
        self.cache = Some(BnCache {
            normalized: Tensor::from_vec(input.shape().to_vec(), normalized)
                .expect("normalized matches input shape"),
            batch_var: var,
            shape: input.shape().to_vec(),
        });
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let (n, plane) = self.check_input(input);
        let x = input.data();
        let mut out = input.clone();
        let mean = self.running_mean.data();
        let var = self.running_var.data();
        let gamma = self.gamma.data();
        let beta = self.beta.data();
        let y = out.data_mut();
        for img in 0..n {
            for c in 0..self.channels {
                let base = (img * self.channels + c) * plane;
                let inv_std = 1.0 / (var[c] + self.eps).sqrt();
                for i in 0..plane {
                    y[base + i] = gamma[c] * ((x[base + i] - mean[c]) * inv_std) + beta[c];
                }
            }
        }
        out
    }

    fn infer_fast(
        &self,
        mut input: Vec<f32>,
        shape: Shape,
        ctx: &mut InferCtx,
    ) -> (Vec<f32>, Shape) {
        let _ = ctx;
        let dims = shape.dims();
        assert_eq!(dims.len(), 4, "batchnorm2d expects [N, C, H, W] input");
        assert_eq!(dims[1], self.channels, "channel count mismatch");
        let (n, plane) = (dims[0], dims[2] * dims[3]);
        let mean = self.running_mean.data();
        let var = self.running_var.data();
        let gamma = self.gamma.data();
        let beta = self.beta.data();
        // In place, with the exact expression `infer` uses so the two
        // paths agree bit for bit.
        for img in 0..n {
            for c in 0..self.channels {
                let base = (img * self.channels + c) * plane;
                let inv_std = 1.0 / (var[c] + self.eps).sqrt();
                for v in &mut input[base..base + plane] {
                    *v = gamma[c] * ((*v - mean[c]) * inv_std) + beta[c];
                }
            }
        }
        (input, shape)
    }

    fn fold_affine(&self) -> Option<(Vec<f32>, Vec<f32>)> {
        // y = γ·(x − μ)/√(σ² + ε) + β  ≡  scale·x + shift with
        // scale = γ/√(σ² + ε), shift = β − μ·scale.
        let mean = self.running_mean.data();
        let var = self.running_var.data();
        let gamma = self.gamma.data();
        let beta = self.beta.data();
        let mut scale = Vec::with_capacity(self.channels);
        let mut shift = Vec::with_capacity(self.channels);
        for c in 0..self.channels {
            let s = gamma[c] / (var[c] + self.eps).sqrt();
            scale.push(s);
            shift.push(beta[c] - mean[c] * s);
        }
        Some((scale, shift))
    }

    fn training_cache_active(&self) -> bool {
        self.cache.is_some()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("backward requires a preceding training-mode forward");
        assert_eq!(grad_output.shape(), cache.shape.as_slice());
        let n = cache.shape[0];
        let plane = cache.shape[2] * cache.shape[3];
        let count = (n * plane) as f32;
        let go = grad_output.data();
        let xh = cache.normalized.data();
        let gamma = self.gamma.data();

        // Per-channel sums needed by the batch-norm gradient formula.
        let mut sum_go = vec![0.0f32; self.channels];
        let mut sum_go_xh = vec![0.0f32; self.channels];
        for img in 0..n {
            for c in 0..self.channels {
                let base = (img * self.channels + c) * plane;
                for i in 0..plane {
                    sum_go[c] += go[base + i];
                    sum_go_xh[c] += go[base + i] * xh[base + i];
                }
            }
        }
        {
            let gg = self.grad_gamma.data_mut();
            let gb = self.grad_beta.data_mut();
            for c in 0..self.channels {
                gg[c] += sum_go_xh[c];
                gb[c] += sum_go[c];
            }
        }

        let mut grad_input = Tensor::zeros(cache.shape.clone());
        let gx = grad_input.data_mut();
        for img in 0..n {
            for c in 0..self.channels {
                let base = (img * self.channels + c) * plane;
                let inv_std = 1.0 / (cache.batch_var[c] + self.eps).sqrt();
                let k1 = gamma[c] * inv_std;
                for i in 0..plane {
                    gx[base + i] = k1
                        * (go[base + i] - sum_go[c] / count - xh[base + i] * sum_go_xh[c] / count);
                }
            }
        }
        grad_input
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                value: &mut self.gamma,
                grad: &mut self.grad_gamma,
                name: "gamma".into(),
            },
            Param {
                value: &mut self.beta,
                grad: &mut self.grad_beta,
                name: "beta".into(),
            },
        ]
    }

    fn state_params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                value: &mut self.gamma,
                grad: &mut self.grad_gamma,
                name: "gamma".into(),
            },
            Param {
                value: &mut self.beta,
                grad: &mut self.grad_beta,
                name: "beta".into(),
            },
            Param {
                value: &mut self.running_mean,
                grad: &mut self.grad_running_mean,
                name: "running_mean".into(),
            },
            Param {
                value: &mut self.running_var,
                grad: &mut self.grad_running_var,
                name: "running_var".into(),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> Tensor {
        let data: Vec<f32> = (0..2 * 2 * 2 * 3)
            .map(|i| ((i * 7 % 13) as f32) - 6.0)
            .collect();
        Tensor::from_vec(vec![2, 2, 2, 3], data).unwrap()
    }

    #[test]
    fn training_output_is_standardised_per_channel() {
        let mut bn = BatchNorm2d::new(2);
        let x = sample_input();
        let y = bn.forward(&x, true);
        // Each channel of the output should have ~zero mean and ~unit variance.
        for c in 0..2 {
            let mut vals = Vec::new();
            for img in 0..2 {
                for i in 0..6 {
                    vals.push(y.data()[(img * 2 + c) * 6 + i] as f64);
                }
            }
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let var: f64 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-5, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {c} var {var}");
        }
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut bn = BatchNorm2d::new(2);
        let x = sample_input();
        for _ in 0..200 {
            bn.forward(&x, true);
        }
        // After many identical batches the running stats equal batch stats.
        let y_eval = bn.forward(&x, false);
        let y_train = bn.forward(&x, true);
        for (a, b) in y_eval.data().iter().zip(y_train.data()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn eval_mode_is_deterministic_and_cache_free() {
        let mut bn = BatchNorm2d::new(2);
        let x = sample_input();
        let a = bn.forward(&x, false);
        let b = bn.forward(&x, false);
        assert_eq!(a, b);
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma = Tensor::from_vec(vec![1], vec![2.0]).unwrap();
        bn.beta = Tensor::from_vec(vec![1], vec![1.0]).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 1, 4], vec![-1.0, 0.0, 1.0, 2.0]).unwrap();
        let y = bn.forward(&x, true);
        // Standardised values scaled by 2 and shifted by 1: mean must be 1.
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut bn = BatchNorm2d::new(2);
        let x = sample_input();
        // Loss = weighted sum of outputs, weights fixed.
        let w: Vec<f32> = (0..x.len()).map(|i| ((i % 5) as f32 - 2.0) / 5.0).collect();
        let loss = |y: &Tensor| -> f32 { y.data().iter().zip(&w).map(|(a, b)| a * b).sum() };

        bn.zero_grad();
        let y = bn.forward(&x, true);
        let _ = y;
        let grad_out = Tensor::from_vec(x.shape().to_vec(), w.clone()).unwrap();
        let grad_input = bn.backward(&grad_out);

        let eps = 1e-2f32;
        for idx in (0..x.len()).step_by(3) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = loss(&bn.forward(&xp, true));
            bn.cache = None;
            let lm = loss(&bn.forward(&xm, true));
            bn.cache = None;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad_input.data()[idx]).abs() < 2e-3,
                "input[{idx}]: fd {fd} vs analytic {}",
                grad_input.data()[idx]
            );
        }
    }

    #[test]
    fn param_count_is_two_per_channel() {
        let mut bn = BatchNorm2d::new(16);
        assert_eq!(bn.param_count(), 32);
    }
}
