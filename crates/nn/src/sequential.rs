//! A sequential container of layers.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A stack of layers applied in order; itself a [`Layer`], so sequentials
/// compose (the two-branch extractor uses one sequential per branch plus a
/// sequential head).
#[derive(Debug, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential model from layers applied front to back.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut cur = input.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        for layer in &self.layers {
            let _span = mandipass_telemetry::span(layer.name());
            cur = layer.infer(&cur);
        }
        cur
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut cur = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            for mut p in layer.params() {
                p.name = format!("{i}.{}", p.name);
                out.push(p);
            }
        }
        out
    }

    fn state_params(&mut self) -> Vec<Param<'_>> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            for mut p in layer.state_params() {
                p.name = format!("{i}.{}", p.name);
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;
    use crate::linear::Linear;
    use crate::loss::cross_entropy;
    use crate::optim::{Adam, Optimizer};

    fn xor_data() -> (Tensor, Vec<usize>) {
        let x = Tensor::from_vec(vec![4, 2], vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn params_are_uniquely_named() {
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(2, 4, 0)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(4, 2, 1)),
        ]);
        let names: Vec<String> = net.params().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["0.weight", "0.bias", "2.weight", "2.bias"]);
    }

    #[test]
    fn learns_xor() {
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(2, 16, 10)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(16, 2, 11)),
        ]);
        let (x, labels) = xor_data();
        let mut adam = Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..300 {
            net.zero_grad();
            let logits = net.forward(&x, true);
            let (loss, grad) = cross_entropy(&logits, &labels);
            final_loss = loss;
            net.backward(&grad);
            adam.step(&mut net.params());
        }
        assert!(final_loss < 0.05, "loss {final_loss}");
        let logits = net.forward(&x, false);
        assert!((crate::loss::accuracy(&logits, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new(vec![]);
        assert!(net.is_empty());
        let x = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = net.forward(&x, true);
        assert_eq!(x, y);
        let g = net.backward(&y);
        assert_eq!(g, x);
    }

    #[test]
    fn len_reports_layer_count() {
        let net = Sequential::new(vec![Box::new(ReLU::new()), Box::new(ReLU::new())]);
        assert_eq!(net.len(), 2);
    }
}
