//! A sequential container of layers.

use crate::error::NnError;
use crate::infer::{InferCtx, Shape};
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// A stack of layers applied in order; itself a [`Layer`], so sequentials
/// compose (the two-branch extractor uses one sequential per branch plus a
/// sequential head).
#[derive(Debug, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential model from layers applied front to back.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Deployment-time fusion: folds every affine layer that follows an
    /// absorbing layer (in practice, each `BatchNorm2d`'s running
    /// statistics into the preceding `Conv2d`'s weights and bias) and
    /// removes the folded layer, so the deployed network runs fewer
    /// layers. Returns the number of layers folded away; idempotent (a
    /// second call finds nothing left to fold).
    ///
    /// Fusion uses the batch norms' *running* statistics, so it is an
    /// evaluation-mode transform: a fused network no longer updates
    /// those statistics in training mode. Outputs match the unfused
    /// network to floating-point reassociation tolerance (≈1e-6), not
    /// bit for bit — callers that need bit-exact parity with the
    /// training-time graph keep the unfused network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::FusePendingBackward`] when any layer still
    /// holds a training-mode forward cache (a backward pass is owed):
    /// rewriting weights mid-step would corrupt the gradients.
    pub fn fuse(&mut self) -> Result<usize, NnError> {
        if self.training_cache_active() {
            return Err(NnError::FusePendingBackward);
        }
        let mut fused = 0usize;
        let mut i = 0;
        while i < self.layers.len() {
            if i + 1 < self.layers.len() {
                if let Some((scale, shift)) = self.layers[i + 1].fold_affine() {
                    if self.layers[i].absorb_affine(&scale, &shift) {
                        self.layers.remove(i + 1);
                        fused += 1;
                        continue; // the next affine may fold into i too
                    }
                }
            }
            i += 1;
        }
        Ok(fused)
    }
}

impl Layer for Sequential {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut cur = input.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        for layer in &self.layers {
            let _span = mandipass_telemetry::span(layer.name());
            cur = layer.infer(&cur);
        }
        cur
    }

    fn infer_fast(&self, input: Vec<f32>, shape: Shape, ctx: &mut InferCtx) -> (Vec<f32>, Shape) {
        let mut cur = (input, shape);
        for layer in &self.layers {
            let _span = mandipass_telemetry::span(layer.name());
            cur = layer.infer_fast(cur.0, cur.1, ctx);
        }
        cur
    }

    fn prepare_inference(&mut self) {
        for layer in &mut self.layers {
            layer.prepare_inference();
        }
    }

    fn training_cache_active(&self) -> bool {
        self.layers.iter().any(|l| l.training_cache_active())
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut cur = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            for mut p in layer.params() {
                p.name = format!("{i}.{}", p.name);
                out.push(p);
            }
        }
        out
    }

    fn state_params(&mut self) -> Vec<Param<'_>> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            for mut p in layer.state_params() {
                p.name = format!("{i}.{}", p.name);
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;
    use crate::linear::Linear;
    use crate::loss::cross_entropy;
    use crate::optim::{Adam, Optimizer};

    fn xor_data() -> (Tensor, Vec<usize>) {
        let x = Tensor::from_vec(vec![4, 2], vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn params_are_uniquely_named() {
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(2, 4, 0)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(4, 2, 1)),
        ]);
        let names: Vec<String> = net.params().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["0.weight", "0.bias", "2.weight", "2.bias"]);
    }

    #[test]
    fn learns_xor() {
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(2, 16, 10)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(16, 2, 11)),
        ]);
        let (x, labels) = xor_data();
        let mut adam = Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..300 {
            net.zero_grad();
            let logits = net.forward(&x, true);
            let (loss, grad) = cross_entropy(&logits, &labels);
            final_loss = loss;
            net.backward(&grad);
            adam.step(&mut net.params());
        }
        assert!(final_loss < 0.05, "loss {final_loss}");
        let logits = net.forward(&x, false);
        assert!((crate::loss::accuracy(&logits, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new(vec![]);
        assert!(net.is_empty());
        let x = Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = net.forward(&x, true);
        assert_eq!(x, y);
        let g = net.backward(&y);
        assert_eq!(g, x);
    }

    #[test]
    fn len_reports_layer_count() {
        let net = Sequential::new(vec![Box::new(ReLU::new()), Box::new(ReLU::new())]);
        assert_eq!(net.len(), 2);
    }

    fn conv_bn_stack() -> (Sequential, Tensor) {
        use crate::batchnorm::BatchNorm2d;
        use crate::conv::Conv2d;
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 3, (3, 3), (1, 2), (1, 1), 40)),
            Box::new(BatchNorm2d::new(3)),
            Box::new(ReLU::new()),
            Box::new(Conv2d::new(3, 2, (3, 3), (1, 1), (1, 1), 41)),
            Box::new(BatchNorm2d::new(2)),
            Box::new(ReLU::new()),
        ]);
        let x = Tensor::from_vec(
            vec![2, 1, 4, 10],
            (0..80).map(|i| ((i as f32) * 0.43).sin()).collect(),
        )
        .unwrap();
        // A few training passes move the running statistics off their
        // init values, so fusion actually has something to fold.
        for _ in 0..5 {
            let y = net.forward(&x, true);
            let g = Tensor::full(y.shape().to_vec(), 0.1);
            net.backward(&g);
        }
        (net, x)
    }

    #[test]
    fn fuse_matches_unfused_within_tolerance() {
        let (mut net, x) = conv_bn_stack();
        let reference = net.infer(&x);
        let folded = net.fuse().expect("no pending training cache");
        assert_eq!(folded, 2, "both batch norms fold into their convs");
        assert_eq!(net.len(), 4);
        let fused = net.infer(&x);
        assert_eq!(fused.shape(), reference.shape());
        for (a, b) in fused.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-6, "fused {a} vs unfused {b}");
        }
    }

    #[test]
    fn fuse_is_idempotent() {
        let (mut net, x) = conv_bn_stack();
        net.fuse().expect("first fuse succeeds");
        let before = net.infer(&x);
        let folded_again = net.fuse().expect("second fuse succeeds");
        assert_eq!(folded_again, 0, "nothing left to fold");
        assert_eq!(net.infer(&x), before);
    }

    #[test]
    fn fuse_refuses_with_pending_training_cache() {
        let (mut net, x) = conv_bn_stack();
        let _ = net.forward(&x, true); // forward without backward: cache pending
        assert_eq!(net.fuse(), Err(NnError::FusePendingBackward));
    }

    #[test]
    fn fast_path_traverses_all_layers() {
        let (net, x) = conv_bn_stack();
        let reference = net.infer(&x);
        let mut ctx = crate::infer::InferCtx::new();
        let mut buf = ctx.acquire(x.len());
        buf.copy_from_slice(x.data());
        let (fast, shape) = net.infer_fast(buf, Shape::from_dims(x.shape()), &mut ctx);
        assert_eq!(shape.dims(), reference.shape());
        assert_eq!(&fast[..], reference.data());
    }
}
