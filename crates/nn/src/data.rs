//! Mini-batch helpers: shuffling, batching, and train/test splitting.

use mandipass_util::rand::seq::SliceRandom;
use mandipass_util::rand::Rng;

use crate::tensor::Tensor;

/// A labelled dataset of flat feature vectors.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// One feature vector per example, all of equal length.
    pub features: Vec<Vec<f32>>,
    /// One integer class label per example.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset, validating that features and labels agree in
    /// count and that feature vectors share one length.
    ///
    /// # Panics
    ///
    /// Panics on count or length mismatch.
    pub fn new(features: Vec<Vec<f32>>, labels: Vec<usize>) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "one label per feature vector required"
        );
        if let Some(first) = features.first() {
            let len = first.len();
            assert!(
                features.iter().all(|f| f.len() == len),
                "all feature vectors must have equal length"
            );
        }
        Dataset { features, labels }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct labels (`max + 1`; labels are assumed dense).
    pub fn class_count(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }

    /// Shuffles examples in place.
    pub fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        let mut index: Vec<usize> = (0..self.len()).collect();
        index.shuffle(rng);
        self.features = index.iter().map(|&i| self.features[i].clone()).collect();
        self.labels = index.iter().map(|&i| self.labels[i]).collect();
    }

    /// Splits into `(train, test)` with `train_fraction` of each class's
    /// examples (in current order) going to the train set — a stratified
    /// split so small classes keep test coverage.
    pub fn split_stratified(&self, train_fraction: f64) -> (Dataset, Dataset) {
        let classes = self.class_count();
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
        for (i, &l) in self.labels.iter().enumerate() {
            per_class[l].push(i);
        }
        let mut train = Dataset::default();
        let mut test = Dataset::default();
        for idxs in per_class {
            let cut = ((idxs.len() as f64) * train_fraction).round() as usize;
            for (k, &i) in idxs.iter().enumerate() {
                let target = if k < cut { &mut train } else { &mut test };
                target.features.push(self.features[i].clone());
                target.labels.push(self.labels[i]);
            }
        }
        (train, test)
    }

    /// Iterator over `(batch_tensor, batch_labels)` mini-batches with the
    /// feature vectors reshaped to `shape` (per example; the batch
    /// dimension is prepended).
    ///
    /// # Panics
    ///
    /// Panics when `shape` does not match the feature length.
    pub fn batches<'a>(
        &'a self,
        batch_size: usize,
        shape: &'a [usize],
    ) -> impl Iterator<Item = (Tensor, Vec<usize>)> + 'a {
        assert!(batch_size > 0, "batch size must be positive");
        let feat_len: usize = shape.iter().product();
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), feat_len, "shape does not match feature length");
        }
        (0..self.len()).step_by(batch_size).map(move |start| {
            let end = (start + batch_size).min(self.len());
            let mut data = Vec::with_capacity((end - start) * feat_len);
            for f in &self.features[start..end] {
                data.extend_from_slice(f);
            }
            let mut full_shape = vec![end - start];
            full_shape.extend_from_slice(shape);
            (
                Tensor::from_vec(full_shape, data).expect("validated feature length"),
                self.labels[start..end].to_vec(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_util::rand::rngs::StdRng;
    use mandipass_util::rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::new(
            (0..10).map(|i| vec![i as f32, 2.0 * i as f32]).collect(),
            (0..10).map(|i| i % 2).collect(),
        )
    }

    #[test]
    fn len_and_class_count() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.class_count(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn shuffle_preserves_pairing() {
        let mut d = toy();
        let mut rng = StdRng::seed_from_u64(0);
        d.shuffle(&mut rng);
        for (f, &l) in d.features.iter().zip(&d.labels) {
            // feature[0] is the original index; its parity is its label.
            assert_eq!((f[0] as usize) % 2, l);
        }
    }

    #[test]
    fn stratified_split_keeps_class_balance() {
        let d = toy();
        let (train, test) = d.split_stratified(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(train.labels.iter().filter(|&&l| l == 0).count(), 4);
        assert_eq!(test.labels.iter().filter(|&&l| l == 0).count(), 1);
    }

    #[test]
    fn batches_have_requested_shape() {
        let d = toy();
        let batches: Vec<_> = d.batches(4, &[2]).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.shape(), &[4, 2]);
        assert_eq!(batches[2].0.shape(), &[2, 2]); // remainder batch
        assert_eq!(batches[2].1.len(), 2);
    }

    #[test]
    fn batches_reshape_to_multidim() {
        let d = Dataset::new(vec![vec![0.0; 12]; 3], vec![0, 0, 0]);
        let batches: Vec<_> = d.batches(2, &[3, 2, 2]).collect();
        assert_eq!(batches[0].0.shape(), &[2, 3, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "one label per feature vector")]
    fn mismatched_counts_panic() {
        let _ = Dataset::new(vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_features_panic() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }
}
