//! Flattening of 4-D activations into 2-D feature matrices.

use crate::infer::{InferCtx, Shape};
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Flattens `[N, C, H, W]` (or any rank ≥ 2) into `[N, C·H·W]`.
///
/// The paper flattens each convolutional branch's output before
/// concatenating the two branches into one feature vector.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_shape = Some(input.shape().to_vec());
        }
        self.infer(input)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert!(shape.len() >= 2, "flatten expects rank >= 2 input");
        let n = shape[0];
        let features: usize = shape[1..].iter().product();
        input
            .clone()
            .reshape(vec![n, features])
            .expect("flatten preserves element count")
    }

    fn infer_fast(&self, input: Vec<f32>, shape: Shape, ctx: &mut InferCtx) -> (Vec<f32>, Shape) {
        let _ = ctx;
        let dims = shape.dims();
        assert!(dims.len() >= 2, "flatten expects rank >= 2 input");
        let features: usize = dims[1..].iter().product();
        // Row-major data is already in flattened order: only the shape
        // changes, no copy.
        (input, Shape::d2(dims[0], features))
    }

    fn training_cache_active(&self) -> bool {
        self.cached_shape.is_some()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .take()
            .expect("backward requires a preceding training-mode forward");
        grad_output
            .clone()
            .reshape(shape)
            .expect("gradient has the flattened element count")
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_to_batch_by_features() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 4, 5]);
        let y = fl.forward(&x, false);
        assert_eq!(y.shape(), &[2, 60]);
    }

    #[test]
    fn backward_restores_shape() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 2, 2]);
        let _ = fl.forward(&x, true);
        let g = Tensor::full(vec![2, 12], 1.0);
        let gx = fl.backward(&g);
        assert_eq!(gx.shape(), &[2, 3, 2, 2]);
    }

    #[test]
    fn data_order_is_preserved() {
        let mut fl = Flatten::new();
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = fl.forward(&x, false);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn has_no_params() {
        assert_eq!(Flatten::new().param_count(), 0);
    }
}
