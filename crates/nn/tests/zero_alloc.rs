//! The arena path's zero-allocation claim, enforced by a counting
//! global allocator: once the scratch arena is warm, a full fast-path
//! forward through a conv/bn/relu stack plus linear head performs no
//! heap allocation at all (telemetry silent, which is the deployed
//! steady state — spans are inert atomic loads when nothing captures).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mandipass_nn::prelude::*;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn paper_branch() -> Sequential {
    Sequential::new(vec![
        Box::new(Conv2d::new(1, 8, (3, 3), (1, 2), (1, 1), 1)),
        Box::new(BatchNorm2d::new(8)),
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(8, 16, (3, 3), (1, 2), (1, 1), 2)),
        Box::new(BatchNorm2d::new(16)),
        Box::new(ReLU::new()),
        Box::new(Conv2d::new(16, 32, (3, 3), (1, 2), (1, 1), 3)),
        Box::new(BatchNorm2d::new(32)),
        Box::new(ReLU::new()),
        Box::new(Flatten::new()),
    ])
}

#[test]
fn warm_arena_forward_allocates_nothing() {
    let branch = paper_branch();
    let mut head = Linear::new(32 * 6 * 4, 64, 9);
    head.prepare_inference();
    let act = Sigmoid::new();

    let input: Vec<f32> = (0..6 * 30).map(|i| ((i as f32) * 0.37).sin()).collect();
    let mut ctx = InferCtx::new();
    let run = |ctx: &mut InferCtx| {
        let mut buf = ctx.acquire(input.len());
        buf.copy_from_slice(&input);
        let (feat, fshape) = branch.infer_fast(buf, Shape::d4(1, 1, 6, 30), ctx);
        let (pre, pshape) = head.infer_fast(feat, fshape, ctx);
        let (emb, _) = act.infer_fast(pre, pshape, ctx);
        let sum: f32 = emb.iter().sum();
        ctx.release(emb);
        sum
    };

    // Warm-up: the pool grows to the network's working set.
    let warm = run(&mut ctx);
    let _ = run(&mut ctx);
    ctx.reset_growth();

    let before = ALLOCS.load(Ordering::Relaxed);
    let mut check = 0.0f32;
    for _ in 0..10 {
        check += run(&mut ctx);
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state fast path hit the heap allocator"
    );
    assert_eq!(
        ctx.stats().growth_events,
        0,
        "steady-state fast path grew the arena"
    );
    assert!((check - 10.0 * warm).abs() < 1e-3, "outputs drifted");
    assert!(ctx.stats().high_water_bytes > 0);
}
