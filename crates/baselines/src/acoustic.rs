//! A minimal synthetic acoustic channel shared by the two baselines.
//!
//! Each user owns a short impulse response (their skull / ear canal
//! acoustics). A probe signal convolves with that response; the
//! microphone additionally picks up ambient acoustic noise — the property
//! that breaks both baselines' noise immunity, and that an IMU-based
//! system does not share.

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::{Rng, SeedableRng};

/// Audio sample rate of the acoustic channel, Hz.
pub const AUDIO_RATE_HZ: f64 = 8000.0;

/// A user's head acoustics: a short impulse response.
#[derive(Debug, Clone, PartialEq)]
pub struct AcousticUser {
    /// Stable identifier.
    pub id: u32,
    ir: Vec<f64>,
    seed: u64,
}

impl AcousticUser {
    /// Samples a user's impulse response (length `taps`) from a seed.
    /// Responses decay exponentially with user-specific tap pattern.
    pub fn sample(id: u32, taps: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(id) << 24) ^ 0x6163_6f75);
        let ir = (0..taps)
            .map(|k| {
                let decay = (-(k as f64) / (taps as f64 / 3.0)).exp();
                rng.gen_range(-1.0..1.0) * decay
            })
            .collect();
        AcousticUser { id, ir, seed }
    }

    /// The user's impulse response taps.
    pub fn impulse_response(&self) -> &[f64] {
        &self.ir
    }

    /// A per-session realisation: the device never sits identically, so
    /// the effective response jitters a little.
    pub fn session_ir(&self, session_seed: u64, jitter: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ session_seed ^ 0x7365_7373);
        self.ir
            .iter()
            .map(|&t| t * (1.0 + rng.gen_range(-jitter..jitter)))
            .collect()
    }
}

/// The acoustic propagation channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcousticChannel {
    /// RMS amplitude of ambient acoustic noise added at the microphone
    /// (0.0 = quiet room).
    pub ambient_noise: f64,
}

impl AcousticChannel {
    /// A quiet room.
    pub fn quiet() -> Self {
        AcousticChannel { ambient_noise: 0.0 }
    }

    /// A noisy environment (street / café level relative to probe
    /// amplitude 1.0).
    pub fn noisy(level: f64) -> Self {
        AcousticChannel {
            ambient_noise: level,
        }
    }

    /// Plays `probe` through `ir` and records at the microphone,
    /// adding ambient noise.
    pub fn transmit(&self, probe: &[f64], ir: &[f64], noise_seed: u64) -> Vec<f64> {
        let mut out = convolve(probe, ir);
        if self.ambient_noise > 0.0 {
            let mut rng = StdRng::seed_from_u64(noise_seed ^ 0x616d_6269);
            for o in &mut out {
                *o += rng.gen_range(-1.0..1.0) * self.ambient_noise * 1.732; // uniform RMS match
            }
        }
        out
    }
}

/// Full linear convolution of `signal` with `kernel`.
pub fn convolve(signal: &[f64], kernel: &[f64]) -> Vec<f64> {
    if signal.is_empty() || kernel.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; signal.len() + kernel.len() - 1];
    for (i, &s) in signal.iter().enumerate() {
        for (j, &k) in kernel.iter().enumerate() {
            out[i + j] += s * k;
        }
    }
    out
}

/// A deterministic white-noise probe (SkullConduct's stimulus).
pub fn white_noise_probe(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7768_6974);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// A linear chirp probe (EarEcho's stimulus), 100 Hz → 3 kHz.
pub fn chirp_probe(len: usize) -> Vec<f64> {
    let f0 = 100.0;
    let f1 = 3000.0;
    let t_total = len as f64 / AUDIO_RATE_HZ;
    (0..len)
        .map(|i| {
            let t = i as f64 / AUDIO_RATE_HZ;
            let f = f0 + (f1 - f0) * t / t_total;
            (2.0 * std::f64::consts::PI * f * t).sin()
        })
        .collect()
}

/// Log-filterbank features: log energy in `bands` evenly spaced frequency
/// bands of the response spectrum — the feature both baselines verify on.
pub fn log_band_features(response: &[f64], bands: usize) -> Vec<f64> {
    let spectrum = mandipass_dsp::fft::magnitude_spectrum(response, AUDIO_RATE_HZ);
    let nyquist = AUDIO_RATE_HZ / 2.0;
    let mut energy = vec![0.0f64; bands];
    for (f, m) in spectrum {
        let band = ((f / nyquist) * bands as f64).min(bands as f64 - 1.0) as usize;
        energy[band] += m * m;
    }
    energy.iter().map(|&e| (e + 1e-12).ln()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolution_with_delta_is_identity() {
        let sig = vec![1.0, 2.0, 3.0];
        assert_eq!(convolve(&sig, &[1.0]), sig);
    }

    #[test]
    fn convolution_length_is_sum_minus_one() {
        let out = convolve(&[1.0; 5], &[1.0; 3]);
        assert_eq!(out.len(), 7);
        assert_eq!(out[3], 3.0); // full overlap
    }

    #[test]
    fn empty_inputs_convolve_to_empty() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    fn users_have_distinct_responses() {
        let a = AcousticUser::sample(0, 32, 9);
        let b = AcousticUser::sample(1, 32, 9);
        assert_ne!(a.impulse_response(), b.impulse_response());
    }

    #[test]
    fn session_ir_jitters_but_stays_close() {
        let u = AcousticUser::sample(0, 32, 10);
        let s = u.session_ir(5, 0.05);
        let max_rel: f64 = u
            .impulse_response()
            .iter()
            .zip(&s)
            .filter(|(o, _)| o.abs() > 1e-9)
            .map(|(o, n)| ((n - o) / o).abs())
            .fold(0.0, f64::max);
        assert!(max_rel <= 0.05 + 1e-12);
    }

    #[test]
    fn quiet_channel_is_noise_free() {
        let u = AcousticUser::sample(0, 16, 11);
        let probe = white_noise_probe(64, 1);
        let a = AcousticChannel::quiet().transmit(&probe, u.impulse_response(), 1);
        let b = AcousticChannel::quiet().transmit(&probe, u.impulse_response(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn noisy_channel_perturbs_response() {
        let u = AcousticUser::sample(0, 16, 12);
        let probe = white_noise_probe(64, 1);
        let quiet = AcousticChannel::quiet().transmit(&probe, u.impulse_response(), 1);
        let noisy = AcousticChannel::noisy(0.5).transmit(&probe, u.impulse_response(), 1);
        assert_ne!(quiet, noisy);
    }

    #[test]
    fn chirp_probe_sweeps_upward() {
        let probe = chirp_probe(4000);
        // Zero crossings accelerate over time for an up-chirp.
        let crossings = |s: &[f64]| s.windows(2).filter(|w| w[0] * w[1] < 0.0).count();
        let early = crossings(&probe[..1000]);
        let late = crossings(&probe[3000..]);
        assert!(late > early, "early {early} late {late}");
    }

    #[test]
    fn band_features_have_requested_size() {
        let u = AcousticUser::sample(0, 16, 13);
        let probe = white_noise_probe(256, 2);
        let resp = AcousticChannel::quiet().transmit(&probe, u.impulse_response(), 1);
        let feats = log_band_features(&resp, 16);
        assert_eq!(feats.len(), 16);
        assert!(feats.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn band_features_distinguish_users() {
        let probe = white_noise_probe(512, 3);
        let fa = log_band_features(
            &AcousticChannel::quiet().transmit(
                &probe,
                AcousticUser::sample(0, 32, 14).impulse_response(),
                1,
            ),
            16,
        );
        let fb = log_band_features(
            &AcousticChannel::quiet().transmit(
                &probe,
                AcousticUser::sample(1, 32, 14).impulse_response(),
                1,
            ),
            16,
        );
        let diff: f64 = fa.iter().zip(&fb).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1.0, "features too similar: {diff}");
    }
}
