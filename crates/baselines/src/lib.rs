//! Simplified reimplementations of the paper's two comparison systems
//! (Table I): **SkullConduct** (bone-conduction acoustic authentication on
//! eyewear) and **EarEcho** (ear-canal acoustic echo authentication on
//! earphones).
//!
//! Both are *acoustic* systems: a probe sound plays through the user's
//! head and a microphone records the response, so their features inherit
//! ambient acoustic noise, and neither deploys cancelable templates. The
//! Table I comparison measures four properties mechanically on all three
//! systems:
//!
//! * **RTC** — registration time cost (seconds of probe audio needed),
//! * **FRR** — false reject rate at the system's own EER threshold,
//! * **RARA** — replay-attack resilience (does a stolen template verify
//!   after revocation?),
//! * **IAN** — immunity against acoustic noise (does VSR survive ambient
//!   sound?).

pub mod acoustic;
pub mod comparison;
pub mod earecho;
pub mod skullconduct;

pub use acoustic::{AcousticChannel, AcousticUser};
pub use comparison::{ComparisonRow, SystemProperties};
pub use earecho::EarEcho;
pub use skullconduct::SkullConduct;
