//! A simplified SkullConduct: bone-conduction white-noise authentication.
//!
//! The original plays white noise through an eyewear bone-conduction
//! speaker and identifies the wearer from the skull's frequency response.
//! Our reimplementation keeps that structure: a fixed white-noise probe,
//! a per-user skull impulse response, log-filterbank features, and a
//! nearest-template cosine verifier. Registration needs a single short
//! probe (RTC ≤ 1 s); the feature template is *not* cancelable, and the
//! microphone inherits ambient acoustic noise.

use crate::acoustic::{
    log_band_features, white_noise_probe, AcousticChannel, AcousticUser, AUDIO_RATE_HZ,
};
use mandipass::similarity::cosine_distance;

/// Number of filterbank bands in the SkullConduct feature.
pub const BANDS: usize = 24;

/// Probe length in samples (0.5 s at the audio rate — under the 1 s RTC
/// budget).
pub const PROBE_LEN: usize = (AUDIO_RATE_HZ as usize) / 2;

/// Session-to-session wearing jitter of the skull response.
const SESSION_JITTER: f64 = 0.30;

/// The SkullConduct verifier.
#[derive(Debug, Clone)]
pub struct SkullConduct {
    probe: Vec<f64>,
    threshold: f64,
    template: Option<Vec<f64>>,
}

impl SkullConduct {
    /// Creates a verifier with the given decision threshold on cosine
    /// distance.
    pub fn new(threshold: f64) -> Self {
        SkullConduct {
            probe: white_noise_probe(PROBE_LEN, 0x736b_756c),
            threshold,
            template: None,
        }
    }

    /// Registration time cost in seconds: one probe.
    pub fn registration_seconds(&self) -> f64 {
        PROBE_LEN as f64 / AUDIO_RATE_HZ
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Extracts the feature of one authentication attempt.
    pub fn probe_features(
        &self,
        user: &AcousticUser,
        channel: &AcousticChannel,
        session_seed: u64,
    ) -> Vec<f64> {
        let ir = user.session_ir(session_seed, SESSION_JITTER);
        let response = channel.transmit(&self.probe, &ir, session_seed);
        log_band_features(&response, BANDS)
    }

    /// Enrols a user from one probe (SkullConduct's one-shot
    /// registration).
    pub fn enroll(&mut self, user: &AcousticUser, channel: &AcousticChannel, session_seed: u64) {
        self.template = Some(self.probe_features(user, channel, session_seed));
    }

    /// Verifies an attempt; returns `(accepted, distance)`.
    ///
    /// # Panics
    ///
    /// Panics when no user is enrolled.
    pub fn verify(
        &self,
        user: &AcousticUser,
        channel: &AcousticChannel,
        session_seed: u64,
    ) -> (bool, f64) {
        let features = self.probe_features(user, channel, session_seed);
        self.verify_features(&features)
    }

    /// Verifies a raw feature vector — the path a replay attacker takes
    /// with a stolen template.
    ///
    /// # Panics
    ///
    /// Panics when no user is enrolled.
    pub fn verify_features(&self, features: &[f64]) -> (bool, f64) {
        let template = self.template.as_ref().expect("no user enrolled");
        let tf: Vec<f32> = template.iter().map(|&v| v as f32).collect();
        let pf: Vec<f32> = features.iter().map(|&v| v as f32).collect();
        let d = cosine_distance(&tf, &pf);
        (d < self.threshold, d)
    }

    /// The stored (non-cancelable) template, if enrolled.
    pub fn template(&self) -> Option<&[f64]> {
        self.template.as_deref()
    }

    /// "Revokes" the enrolment. Because the template is a raw biometric
    /// feature, re-enrolling the same user reproduces (nearly) the same
    /// template — a stolen copy keeps verifying. This method exists so
    /// the Table I harness can demonstrate exactly that failure.
    pub fn reenroll(&mut self, user: &AcousticUser, channel: &AcousticChannel, session_seed: u64) {
        self.enroll(user, channel, session_seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SkullConduct, AcousticUser, AcousticUser, AcousticChannel) {
        (
            SkullConduct::new(0.02),
            AcousticUser::sample(0, 32, 77),
            AcousticUser::sample(1, 32, 77),
            AcousticChannel::quiet(),
        )
    }

    #[test]
    fn genuine_user_verifies_in_quiet_room() {
        let (mut sys, user, _, channel) = setup();
        sys.enroll(&user, &channel, 1);
        let mut ok = 0;
        for s in 10..20 {
            if sys.verify(&user, &channel, s).0 {
                ok += 1;
            }
        }
        assert!(ok >= 8, "only {ok}/10 genuine accepts");
    }

    #[test]
    fn impostor_is_more_distant_than_genuine() {
        let (mut sys, user, other, channel) = setup();
        sys.enroll(&user, &channel, 1);
        let genuine = sys.verify(&user, &channel, 30).1;
        let impostor = sys.verify(&other, &channel, 30).1;
        assert!(
            genuine < impostor,
            "genuine {genuine} vs impostor {impostor}"
        );
    }

    #[test]
    fn replayed_template_always_verifies() {
        // The RARA failure: exhibit the stolen template verbatim.
        let (mut sys, user, _, channel) = setup();
        sys.enroll(&user, &channel, 1);
        let stolen = sys.template().unwrap().to_vec();
        sys.reenroll(&user, &channel, 2); // "revocation"
        let (accepted, d) = sys.verify_features(&stolen);
        assert!(
            accepted,
            "stolen template rejected (d = {d}) — RARA would hold"
        );
    }

    #[test]
    fn ambient_noise_degrades_verification() {
        let (mut sys, user, _, channel) = setup();
        sys.enroll(&user, &channel, 1);
        let quiet_d = sys.verify(&user, &channel, 40).1;
        let noisy = AcousticChannel::noisy(2.0);
        let noisy_d = sys.verify(&user, &noisy, 40).1;
        assert!(noisy_d > quiet_d, "noise did not increase distance");
    }

    #[test]
    fn registration_is_under_one_second() {
        let (sys, ..) = setup();
        assert!(sys.registration_seconds() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "no user enrolled")]
    fn verify_without_enrolment_panics() {
        let (sys, user, _, channel) = setup();
        let _ = sys.verify(&user, &channel, 1);
    }
}
