//! The Table I comparison harness.
//!
//! Measures four properties mechanically for each system and renders the
//! paper's Table I check-marks:
//!
//! | System       | RTC ≤ 1 s | FRR ≤ 2 % | RARA | IAN |
//! |--------------|-----------|-----------|------|-----|
//! | MandiPass    | ✓         | ✓         | ✓    | ✓   |
//! | SkullConduct | ✓         | ✗         | ✗    | ✗   |
//! | EarEcho      | ✗         | ✗         | ✗    | ✗   |

use crate::acoustic::{AcousticChannel, AcousticUser};
use crate::earecho::EarEcho;
use crate::skullconduct::SkullConduct;
use mandipass_eval::metrics::eer;

/// Measured properties of one system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemProperties {
    /// System name.
    pub name: String,
    /// Registration time cost, seconds.
    pub registration_seconds: f64,
    /// False reject rate at the system's EER threshold, fraction.
    pub frr: f64,
    /// Whether a stolen template stops verifying after revocation.
    pub replay_resilient: bool,
    /// Whether verification survives ambient acoustic noise.
    pub noise_immune: bool,
}

impl SystemProperties {
    /// The four Table I check-marks: `(RTC ≤ 1 s, FRR ≤ 2 %, RARA, IAN)`.
    pub fn checkmarks(&self) -> (bool, bool, bool, bool) {
        (
            self.registration_seconds <= 1.0,
            self.frr <= 0.02,
            self.replay_resilient,
            self.noise_immune,
        )
    }
}

/// One rendered comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// The measured properties.
    pub properties: SystemProperties,
}

impl ComparisonRow {
    /// Renders the row in the paper's ✓/✗ notation.
    pub fn render(&self) -> String {
        let (rtc, frr, rara, ian) = self.properties.checkmarks();
        let mark = |b: bool| if b { "v" } else { "x" };
        format!(
            "{:<14} RTC<=1s:{}  FRR<=2%:{}  RARA:{}  IAN:{}",
            self.properties.name,
            mark(rtc),
            mark(frr),
            mark(rara),
            mark(ian)
        )
    }
}

/// Measurement scales for the acoustic baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineBench {
    /// Number of synthetic acoustic users.
    pub users: usize,
    /// Probes per user for the FRR measurement.
    pub probes_per_user: usize,
    /// Ambient noise level for the IAN test.
    pub noise_level: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for BaselineBench {
    fn default() -> Self {
        BaselineBench {
            users: 10,
            probes_per_user: 12,
            noise_level: 2.0,
            seed: 0x7461_626c,
        }
    }
}

impl BaselineBench {
    fn acoustic_cohort(&self, taps: usize) -> Vec<AcousticUser> {
        (0..self.users)
            .map(|i| AcousticUser::sample(i as u32, taps, self.seed))
            .collect()
    }

    /// Measures SkullConduct's Table I properties.
    pub fn measure_skullconduct(&self) -> SystemProperties {
        let cohort = self.acoustic_cohort(32);
        let quiet = AcousticChannel::quiet();
        let proto = SkullConduct::new(1.0); // threshold set from EER below

        // Score populations at the system's own operating point.
        let (genuine, impostor) = self.score_populations(
            |user, seed| proto.probe_features(user, &quiet, seed),
            &cohort,
        );
        let point = eer(&genuine, &impostor).expect("non-empty score sets");
        let frr = mandipass_eval::metrics::frr_at(&genuine, point.threshold);

        // Replay: stolen template after re-enrolment still verifies?
        let mut sys = SkullConduct::new(point.threshold);
        sys.enroll(&cohort[0], &quiet, 1);
        let stolen = sys.template().expect("enrolled").to_vec();
        sys.reenroll(&cohort[0], &quiet, 2);
        let replay_resilient = !sys.verify_features(&stolen).0;

        // Noise immunity: genuine VSR under ambient noise stays ≥ 90 %.
        let noisy = AcousticChannel::noisy(self.noise_level);
        let mut accepted = 0usize;
        let mut total = 0usize;
        for user in &cohort {
            let mut s = SkullConduct::new(point.threshold);
            s.enroll(user, &quiet, 1);
            for p in 0..self.probes_per_user {
                total += 1;
                if s.verify(user, &noisy, 1000 + p as u64).0 {
                    accepted += 1;
                }
            }
        }
        let noise_immune = (accepted as f64 / total as f64) >= 0.9;

        SystemProperties {
            name: "SkullConduct".to_string(),
            registration_seconds: proto.registration_seconds(),
            frr,
            replay_resilient,
            noise_immune,
        }
    }

    /// Measures EarEcho's Table I properties.
    pub fn measure_earecho(&self) -> SystemProperties {
        let cohort = self.acoustic_cohort(48);
        let quiet = AcousticChannel::quiet();
        let proto = EarEcho::new(1.0);

        let (genuine, impostor) = self.score_populations(
            |user, seed| proto.probe_features(user, &quiet, seed),
            &cohort,
        );
        let point = eer(&genuine, &impostor).expect("non-empty score sets");
        let frr = mandipass_eval::metrics::frr_at(&genuine, point.threshold);

        let mut sys = EarEcho::new(point.threshold);
        sys.enroll(&cohort[0], &quiet, 1);
        let stolen = sys.template().expect("enrolled").to_vec();
        sys.enroll(&cohort[0], &quiet, 2);
        let replay_resilient = !sys.verify_features(&stolen).0;

        let noisy = AcousticChannel::noisy(self.noise_level);
        let mut accepted = 0usize;
        let mut total = 0usize;
        for user in &cohort {
            let mut s = EarEcho::new(point.threshold);
            s.enroll(user, &quiet, 1);
            for p in 0..self.probes_per_user {
                total += 1;
                if s.verify(user, &noisy, 2000 + p as u64).0 {
                    accepted += 1;
                }
            }
        }
        let noise_immune = (accepted as f64 / total as f64) >= 0.9;

        SystemProperties {
            name: "EarEcho".to_string(),
            registration_seconds: proto.registration_seconds(),
            frr,
            replay_resilient,
            noise_immune,
        }
    }

    /// Builds genuine/impostor cosine-distance populations for a feature
    /// extractor over the cohort.
    fn score_populations<F>(&self, extract: F, cohort: &[AcousticUser]) -> (Vec<f64>, Vec<f64>)
    where
        F: Fn(&AcousticUser, u64) -> Vec<f64>,
    {
        let per_user: Vec<Vec<Vec<f32>>> = cohort
            .iter()
            .map(|u| {
                (0..self.probes_per_user)
                    .map(|p| {
                        extract(u, 500 + p as u64)
                            .into_iter()
                            .map(|v| v as f32)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        (
            mandipass_eval::pairs::genuine_pairs(&per_user),
            mandipass_eval::pairs::impostor_pairs(&per_user),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skullconduct_matches_paper_row() {
        let bench = BaselineBench {
            users: 6,
            probes_per_user: 8,
            ..BaselineBench::default()
        };
        let props = bench.measure_skullconduct();
        let (rtc, _frr, rara, ian) = props.checkmarks();
        assert!(rtc, "SkullConduct registration should be under 1 s");
        assert!(!rara, "SkullConduct has no cancelable templates");
        assert!(!ian, "SkullConduct should fail under acoustic noise");
    }

    #[test]
    fn earecho_matches_paper_row() {
        let bench = BaselineBench {
            users: 6,
            probes_per_user: 8,
            ..BaselineBench::default()
        };
        let props = bench.measure_earecho();
        let (rtc, _frr, rara, ian) = props.checkmarks();
        assert!(!rtc, "EarEcho registration should exceed 1 s");
        assert!(!rara, "EarEcho has no cancelable templates");
        assert!(!ian, "EarEcho should fail under acoustic noise");
    }

    #[test]
    fn rendered_row_contains_marks() {
        let row = ComparisonRow {
            properties: SystemProperties {
                name: "MandiPass".into(),
                registration_seconds: 0.2,
                frr: 0.0128,
                replay_resilient: true,
                noise_immune: true,
            },
        };
        let text = row.render();
        assert!(text.contains("MandiPass"));
        assert!(text.contains("RTC<=1s:v"));
        assert!(!text.contains('x'), "all marks should pass: {text}");
    }

    #[test]
    fn checkmarks_threshold_boundaries() {
        let p = SystemProperties {
            name: "X".into(),
            registration_seconds: 1.0,
            frr: 0.02,
            replay_resilient: false,
            noise_immune: false,
        };
        assert_eq!(p.checkmarks(), (true, true, false, false));
    }
}
