//! A simplified EarEcho: ear-canal acoustic echo authentication.
//!
//! The original plays a stimulus through an earbud and identifies the
//! wearer from the ear canal's echo. Our reimplementation uses a chirp
//! probe, a per-user ear-canal impulse response, log-filterbank features,
//! and an averaged-template cosine verifier. Registration averages over
//! several wearing positions (RTC well above 1 s); the template is not
//! cancelable, and the in-ear microphone inherits ambient noise.

use crate::acoustic::{
    chirp_probe, log_band_features, AcousticChannel, AcousticUser, AUDIO_RATE_HZ,
};
use mandipass::similarity::cosine_distance;

/// Number of filterbank bands in the EarEcho feature.
pub const BANDS: usize = 32;

/// Probe length in samples (0.4 s of chirp).
pub const PROBE_LEN: usize = (AUDIO_RATE_HZ * 0.4) as usize;

/// Enrolment probes over multiple wearing positions — the source of the
/// multi-second registration time.
pub const ENROLL_PROBES: usize = 8;

/// Session-to-session wearing jitter of the ear-canal response (in-ear
/// fit varies more than eyewear).
const SESSION_JITTER: f64 = 0.40;

/// The EarEcho verifier.
#[derive(Debug, Clone)]
pub struct EarEcho {
    probe: Vec<f64>,
    threshold: f64,
    template: Option<Vec<f64>>,
}

impl EarEcho {
    /// Creates a verifier with the given cosine-distance threshold.
    pub fn new(threshold: f64) -> Self {
        EarEcho {
            probe: chirp_probe(PROBE_LEN),
            threshold,
            template: None,
        }
    }

    /// Registration time cost in seconds: `ENROLL_PROBES` probes plus
    /// re-seating time between them (~0.5 s each).
    pub fn registration_seconds(&self) -> f64 {
        ENROLL_PROBES as f64 * (PROBE_LEN as f64 / AUDIO_RATE_HZ + 0.5)
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Extracts the feature of one attempt.
    pub fn probe_features(
        &self,
        user: &AcousticUser,
        channel: &AcousticChannel,
        session_seed: u64,
    ) -> Vec<f64> {
        let ir = user.session_ir(session_seed, SESSION_JITTER);
        let response = channel.transmit(&self.probe, &ir, session_seed);
        log_band_features(&response, BANDS)
    }

    /// Enrols a user by averaging features over the enrolment probes.
    pub fn enroll(&mut self, user: &AcousticUser, channel: &AcousticChannel, base_seed: u64) {
        let mut acc = vec![0.0f64; BANDS];
        for p in 0..ENROLL_PROBES {
            let f = self.probe_features(user, channel, base_seed ^ ((p as u64) << 8));
            for (a, v) in acc.iter_mut().zip(&f) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= ENROLL_PROBES as f64;
        }
        self.template = Some(acc);
    }

    /// Verifies an attempt; returns `(accepted, distance)`.
    ///
    /// # Panics
    ///
    /// Panics when no user is enrolled.
    pub fn verify(
        &self,
        user: &AcousticUser,
        channel: &AcousticChannel,
        session_seed: u64,
    ) -> (bool, f64) {
        let features = self.probe_features(user, channel, session_seed);
        self.verify_features(&features)
    }

    /// Verifies a raw feature vector (the replay path).
    ///
    /// # Panics
    ///
    /// Panics when no user is enrolled.
    pub fn verify_features(&self, features: &[f64]) -> (bool, f64) {
        let template = self.template.as_ref().expect("no user enrolled");
        let tf: Vec<f32> = template.iter().map(|&v| v as f32).collect();
        let pf: Vec<f32> = features.iter().map(|&v| v as f32).collect();
        let d = cosine_distance(&tf, &pf);
        (d < self.threshold, d)
    }

    /// The stored (non-cancelable) template, if enrolled.
    pub fn template(&self) -> Option<&[f64]> {
        self.template.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EarEcho, AcousticUser, AcousticUser, AcousticChannel) {
        (
            EarEcho::new(0.02),
            AcousticUser::sample(0, 48, 88),
            AcousticUser::sample(1, 48, 88),
            AcousticChannel::quiet(),
        )
    }

    #[test]
    fn genuine_user_mostly_verifies() {
        let (mut sys, user, _, channel) = setup();
        sys.enroll(&user, &channel, 1);
        let mut ok = 0;
        for s in 100..110 {
            if sys.verify(&user, &channel, s).0 {
                ok += 1;
            }
        }
        assert!(ok >= 6, "only {ok}/10 genuine accepts");
    }

    #[test]
    fn impostor_is_more_distant() {
        let (mut sys, user, other, channel) = setup();
        sys.enroll(&user, &channel, 1);
        let genuine = sys.verify(&user, &channel, 200).1;
        let impostor = sys.verify(&other, &channel, 200).1;
        assert!(genuine < impostor);
    }

    #[test]
    fn registration_exceeds_one_second() {
        let (sys, ..) = setup();
        assert!(
            sys.registration_seconds() > 1.0,
            "RTC {}",
            sys.registration_seconds()
        );
    }

    #[test]
    fn replayed_template_verifies() {
        let (mut sys, user, _, channel) = setup();
        sys.enroll(&user, &channel, 1);
        let stolen = sys.template().unwrap().to_vec();
        sys.enroll(&user, &channel, 2); // "revocation" by re-enrolment
        assert!(sys.verify_features(&stolen).0);
    }

    #[test]
    fn noise_increases_distance() {
        let (mut sys, user, _, channel) = setup();
        sys.enroll(&user, &channel, 1);
        let quiet = sys.verify(&user, &channel, 300).1;
        let noisy = sys.verify(&user, &AcousticChannel::noisy(2.0), 300).1;
        assert!(noisy > quiet);
    }

    #[test]
    #[should_panic(expected = "no user enrolled")]
    fn verify_without_enrolment_panics() {
        let (sys, user, _, channel) = setup();
        let _ = sys.verify(&user, &channel, 1);
    }
}
