//! Criterion benches for the §VII.E overhead table: the per-request cost
//! of every deployed pipeline stage.

use mandipass::gradient_array::GradientArray;
use mandipass::prelude::*;
use mandipass::preprocess::preprocess;
use mandipass::similarity::cosine_distance;
use mandipass_imu_sim::{Condition, Population, Recorder};
use mandipass_util::bench::{criterion_group, criterion_main, Criterion};

fn deployed_setup() -> (Recorder, mandipass_imu_sim::Recording, BiometricExtractor) {
    let pop = Population::generate(2, 2021);
    let recorder = Recorder::default();
    let rec = recorder.record(&pop.users()[0], Condition::Normal, 1);
    // An untrained extractor has identical inference cost to a trained one.
    let extractor =
        BiometricExtractor::new(ExtractorConfig::paper(33)).expect("valid architecture");
    (recorder, rec, extractor)
}

fn bench_preprocess(c: &mut Criterion) {
    let (_, rec, _) = deployed_setup();
    let config = PipelineConfig::default();
    c.bench_function("preprocess_full_chain", |b| {
        b.iter(|| preprocess(std::hint::black_box(&rec), &config).expect("probe preprocesses"))
    });
}

fn bench_gradient_array(c: &mut Criterion) {
    let (_, rec, _) = deployed_setup();
    let config = PipelineConfig::default();
    let arr = preprocess(&rec, &config).expect("probe preprocesses");
    c.bench_function("gradient_array_build", |b| {
        b.iter(|| GradientArray::from_signal_array(std::hint::black_box(&arr), 30).expect("builds"))
    });
}

fn bench_extract(c: &mut Criterion) {
    let (_, rec, extractor) = deployed_setup();
    let config = PipelineConfig::default();
    let arr = preprocess(&rec, &config).expect("probe preprocesses");
    let grad = GradientArray::from_signal_array(&arr, 30).expect("probe yields gradients");
    c.bench_function("mandibleprint_extract", |b| {
        b.iter(|| {
            extractor
                .extract(&[std::hint::black_box(&grad)])
                .expect("extracts")
        })
    });
}

fn bench_template_transform(c: &mut Criterion) {
    let matrix = GaussianMatrix::generate(7, 512);
    let print = MandiblePrint::new(vec![0.5; 512]);
    c.bench_function("cancelable_transform_512d", |b| {
        b.iter(|| {
            matrix
                .transform(std::hint::black_box(&print))
                .expect("dims match")
        })
    });
}

fn bench_similarity(c: &mut Criterion) {
    let a = vec![0.4f32; 512];
    let b_vec = vec![0.6f32; 512];
    c.bench_function("cosine_distance_512d", |b| {
        b.iter(|| cosine_distance(std::hint::black_box(&a), std::hint::black_box(&b_vec)))
    });
}

fn bench_end_to_end_verify(c: &mut Criterion) {
    let (_, rec, extractor) = deployed_setup();
    let mut system = MandiPass::new(extractor, PipelineConfig::default());
    let matrix = GaussianMatrix::generate(9, system.embedding_dim());
    system
        .enroll(0, std::slice::from_ref(&rec), &matrix)
        .expect("enrolment");
    c.bench_function("verify_end_to_end", |b| {
        b.iter(|| {
            system
                .verify(0, std::hint::black_box(&rec), &matrix)
                .expect("verifies")
        })
    });
}

fn bench_recording_simulation(c: &mut Criterion) {
    let pop = Population::generate(2, 2021);
    let recorder = Recorder::default();
    c.bench_function("simulate_one_recording", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            recorder.record(
                std::hint::black_box(&pop.users()[0]),
                Condition::Normal,
                seed,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_preprocess,
    bench_gradient_array,
    bench_extract,
    bench_template_transform,
    bench_similarity,
    bench_end_to_end_verify,
    bench_recording_simulation,
);
criterion_main!(benches);
