//! Criterion benches for the DSP substrate: each §IV preprocessing stage
//! in isolation.

use mandipass_dsp::detect::{detect_vibration_start, DetectorConfig};
use mandipass_dsp::fft::magnitude_spectrum;
use mandipass_dsp::filter::Butterworth;
use mandipass_dsp::gradient::directional_gradients;
use mandipass_dsp::normalize::min_max;
use mandipass_dsp::outlier::{clean_segment, DEFAULT_MAD_THRESHOLD};
use mandipass_util::bench::{criterion_group, criterion_main, Criterion};

fn recording_like(len: usize) -> Vec<f64> {
    let mut sig = vec![0.0; 60];
    sig.extend((0..len.saturating_sub(60)).map(|i| {
        let t = i as f64 / 350.0;
        8192.0 * 0.6 + 700.0 * (2.0 * std::f64::consts::PI * 123.0 * t).sin()
    }));
    sig
}

fn bench_detection(c: &mut Criterion) {
    let sig = recording_like(220);
    let config = DetectorConfig::default();
    c.bench_function("vibration_detection", |b| {
        b.iter(|| detect_vibration_start(std::hint::black_box(&sig), &config).expect("found"))
    });
}

fn bench_mad_clean(c: &mut Criterion) {
    let mut base = recording_like(120)[60..].to_vec();
    base[10] += 4000.0;
    base[40] -= 4000.0;
    c.bench_function("mad_clean_segment_60", |b| {
        b.iter(|| {
            let mut seg = base.clone();
            clean_segment(&mut seg, DEFAULT_MAD_THRESHOLD)
        })
    });
}

fn bench_highpass(c: &mut Criterion) {
    let hp = Butterworth::highpass(4, 20.0, 350.0).expect("valid design");
    let seg = recording_like(120)[60..].to_vec();
    c.bench_function("butterworth_filtfilt_60", |b| {
        b.iter(|| hp.filtfilt(std::hint::black_box(&seg)))
    });
}

fn bench_normalize(c: &mut Criterion) {
    let seg = recording_like(120)[60..].to_vec();
    c.bench_function("min_max_normalize_60", |b| {
        b.iter(|| min_max(std::hint::black_box(&seg)))
    });
}

fn bench_gradients(c: &mut Criterion) {
    let seg = min_max(&recording_like(120)[60..]);
    c.bench_function("directional_gradients_60", |b| {
        b.iter(|| directional_gradients(std::hint::black_box(&seg), 30))
    });
}

fn bench_fft(c: &mut Criterion) {
    let sig = recording_like(1024);
    c.bench_function("magnitude_spectrum_1024", |b| {
        b.iter(|| magnitude_spectrum(std::hint::black_box(&sig), 350.0))
    });
}

criterion_group!(
    benches,
    bench_detection,
    bench_mad_clean,
    bench_highpass,
    bench_normalize,
    bench_gradients,
    bench_fft,
);
criterion_main!(benches);
