//! Criterion benches for the training path: one optimiser step of the
//! two-branch extractor, and the VSP dataset synthesis rate.

use mandipass::prelude::*;
use mandipass::train::{TrainingConfig, VspTrainer};
use mandipass_imu_sim::{Population, Recorder};
use mandipass_nn::layer::Layer;
use mandipass_nn::optim::{Adam, Optimizer};
use mandipass_nn::tensor::Tensor;
use mandipass_util::bench::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_train_batch(c: &mut Criterion) {
    let mut extractor =
        BiometricExtractor::new(ExtractorConfig::paper(24)).expect("valid architecture");
    let batch = 32usize;
    let data: Vec<f32> = (0..batch * 2 * 6 * 30)
        .map(|i| ((i * 31 % 97) as f32) / 97.0)
        .collect();
    let input = Tensor::from_vec(vec![batch, 2, 6, 30], data).expect("shape matches");
    let labels: Vec<usize> = (0..batch).map(|i| i % 24).collect();
    let mut adam = Adam::new(1e-3);
    c.bench_function("extractor_train_batch_32", |b| {
        b.iter(|| {
            let (loss, _) = extractor.train_batch(std::hint::black_box(&input), &labels);
            adam.step(&mut extractor.params());
            loss
        })
    });
}

fn bench_dataset_synthesis(c: &mut Criterion) {
    let pop = Population::generate(3, 2021);
    let recorder = Recorder::default();
    let trainer = VspTrainer::new(TrainingConfig {
        seconds_per_person: 0.6,
        ..TrainingConfig::fast_demo()
    });
    let refs: Vec<_> = pop.users().iter().collect();
    c.bench_function("vsp_dataset_3users_4probes", |b| {
        b.iter_batched(
            || refs.clone(),
            |r| trainer.build_dataset(std::hint::black_box(&r), &recorder),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_train_batch, bench_dataset_synthesis);
criterion_main!(benches);
