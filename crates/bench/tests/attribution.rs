//! The committed attribution fixtures are the contract for the CI
//! `profile-smoke` job: it runs `check_bench attribute` over the same
//! two files and greps the report for the injected hot frame. These
//! tests keep the fixtures and the attribution engine honest against
//! each other, so the CI grep can never pass vacuously.

use mandipass_bench::profile::{attribute_profiles, render_attribution};
use mandipass_util::json::{parse, Value};

fn fixture(name: &str) -> Value {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

#[test]
fn fixture_attribution_names_the_injected_im2col_frame_first() {
    let current = fixture("profile_current.json");
    let baseline = fixture("profile_baseline.json");
    let top = attribute_profiles(&current, &baseline, 5).unwrap_or_else(|e| panic!("{e}"));
    assert!(!top.is_empty(), "fixtures must disagree somewhere");
    assert_eq!(
        top[0].path, "verify.extract.im2col",
        "the injected hot frame must rank first, got {top:?}"
    );
    assert!(
        (top[0].ratio - 6.0).abs() < 1e-9,
        "im2col per-call self time is inflated exactly 6x in the fixture, got {}",
        top[0].ratio
    );
    let report = render_attribution(&top);
    assert!(
        report.contains("1. verify.extract.im2col"),
        "report must name the frame: {report}"
    );
    assert!(report.contains("6.00x"), "{report}");
}

#[test]
fn fixture_attribution_is_clean_when_diffed_against_itself() {
    let baseline = fixture("profile_baseline.json");
    let top = attribute_profiles(&baseline, &baseline, 5).unwrap_or_else(|e| panic!("{e}"));
    assert!(top.is_empty(), "self-diff regressed: {top:?}");
    assert!(render_attribution(&top).contains("no frame regressed"));
}

#[test]
fn fixture_frame_tables_are_internally_consistent() {
    // Σ(self over the subtree) == root total, same identity the live
    // profiler maintains — keeps hand-edited fixtures from drifting
    // into shapes the profiler could never emit.
    for name in ["profile_baseline.json", "profile_current.json"] {
        let doc = fixture(name);
        let frames = match doc.get("profile").and_then(|p| p.get("frames")) {
            Some(Value::Object(frames)) => frames,
            _ => panic!("{name}: missing profile.frames"),
        };
        let stat = |path: &str, key: &str| -> f64 {
            frames
                .iter()
                .find(|(p, _)| p == path)
                .and_then(|(_, f)| f.get(key))
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{name}: {path}.{key} missing"))
        };
        let self_sum: f64 = frames
            .iter()
            .map(|(path, _)| stat(path, "self_nanos"))
            .sum();
        let root_total = stat("verify", "total_nanos");
        assert!(
            (self_sum - root_total).abs() < 0.5,
            "{name}: Σself {self_sum} != root total {root_total}"
        );
    }
}
