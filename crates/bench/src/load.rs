//! Closed-loop load generator for the serving layer, plus the
//! `BENCH_serve.json` schema validator and baseline comparator.
//!
//! N client threads each issue a deterministic per-client stream of
//! mixed traffic — genuine probes, cross-user impostor probes, and
//! fault-injected probes that exercise the retry/degraded policy path —
//! against either the in-process [`VerifyService`] or a TCP
//! [`VerifyServer`](mandipass_serve::VerifyServer) endpoint. Closed loop
//! means one in-flight request per client: the next request only starts
//! when the previous response lands, so sustained QPS and the latency
//! quantiles describe the same steady state.
//!
//! Request *contents* derive only from `(seed, client index, request
//! index)`, never from timing, so the decision tallies of two runs with
//! the same config are bit-identical across transports — the
//! transport-parity check in `exp_serve` and the deterministic shape of
//! `BENCH_serve.json` both rest on this.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use mandipass_imu_sim::faults::sweep_profiles;
use mandipass_imu_sim::{Condition, Recorder, UserProfile};
use mandipass_serve::{Request, Response, VerifyClient, VerifyService};
use mandipass_telemetry::{Histogram, Monitor, Registry};
use mandipass_util::json::Value;
use mandipass_util::rand::{rngs::StdRng, Rng, SeedableRng};

/// Schema tag of the serve bench artifact.
pub const BENCH_SERVE_SCHEMA: &str = "mandipass.bench.serve/v1";

/// Traffic composition in whole percent; the three shares must sum
/// to 100 (validated by [`LoadConfig::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficMix {
    /// Genuine probes from the claimed user.
    pub genuine_pct: u32,
    /// Probes recorded from a *different* enrolled user.
    pub impostor_pct: u32,
    /// Genuine probes with an injected sensor fault, sent through the
    /// policy path (retry + degraded fallback).
    pub faulty_pct: u32,
}

impl Default for TrafficMix {
    fn default() -> Self {
        TrafficMix {
            genuine_pct: 70,
            impostor_pct: 20,
            faulty_pct: 10,
        }
    }
}

/// One load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Traffic composition.
    pub mix: TrafficMix,
    /// Fault intensity (0..=1) for the faulty share.
    pub fault_intensity: f64,
    /// Probes per policy (faulty-share) request: one fault-injected
    /// probe plus `policy_batch - 1` clean retries. Two or more retries
    /// exercise the server's batched-extraction path (one CNN forward
    /// for the whole retry budget); the default of 2 reproduces the
    /// historical plan byte for byte.
    pub policy_batch: usize,
    /// Master seed; every client derives its own stream from it.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            requests_per_client: 32,
            mix: TrafficMix::default(),
            fault_intensity: 0.75,
            policy_batch: 2,
            seed: 0x5e12_4e20,
        }
    }
}

impl LoadConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message when the mix does not sum to 100 % or the
    /// intensity leaves `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.mix.genuine_pct + self.mix.impostor_pct + self.mix.faulty_pct;
        if sum != 100 {
            return Err(format!("traffic mix sums to {sum}%, expected 100%"));
        }
        if !(0.0..=1.0).contains(&self.fault_intensity) {
            return Err(format!(
                "fault intensity {} outside [0, 1]",
                self.fault_intensity
            ));
        }
        if self.policy_batch == 0 {
            return Err("policy_batch must be at least 1".to_string());
        }
        Ok(())
    }

    fn serialise(&self) -> Value {
        Value::Object(vec![
            ("clients".to_string(), Value::Number(self.clients as f64)),
            (
                "requests_per_client".to_string(),
                Value::Number(self.requests_per_client as f64),
            ),
            (
                "mix".to_string(),
                Value::Object(vec![
                    (
                        "genuine_pct".to_string(),
                        Value::Number(f64::from(self.mix.genuine_pct)),
                    ),
                    (
                        "impostor_pct".to_string(),
                        Value::Number(f64::from(self.mix.impostor_pct)),
                    ),
                    (
                        "faulty_pct".to_string(),
                        Value::Number(f64::from(self.mix.faulty_pct)),
                    ),
                ]),
            ),
            (
                "fault_intensity".to_string(),
                Value::Number(self.fault_intensity),
            ),
            (
                "policy_batch".to_string(),
                Value::Number(self.policy_batch as f64),
            ),
            ("seed".to_string(), Value::Number(self.seed as f64)),
        ])
    }
}

/// Where the generated traffic goes.
#[derive(Debug, Clone)]
pub enum LoadTarget<'a> {
    /// Call [`VerifyService::handle`] directly — no sockets, the upper
    /// bound a TCP transport can approach.
    InProcess(&'a Arc<VerifyService>),
    /// Connect one TCP client per thread to a running verify server.
    Tcp(SocketAddr),
}

/// Per-thread outcome tally; summed after join so the totals are
/// deterministic regardless of scheduling.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    requests: u64,
    accepted: u64,
    rejected: u64,
    degraded: u64,
    exhausted: u64,
    errors: u64,
    genuine: u64,
    genuine_accepted: u64,
    impostor: u64,
    impostor_accepted: u64,
    faulty: u64,
}

impl Tally {
    fn add(&mut self, other: &Tally) {
        self.requests += other.requests;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.degraded += other.degraded;
        self.exhausted += other.exhausted;
        self.errors += other.errors;
        self.genuine += other.genuine;
        self.genuine_accepted += other.genuine_accepted;
        self.impostor += other.impostor;
        self.impostor_accepted += other.impostor_accepted;
        self.faulty += other.faulty;
    }
}

/// Latency quantiles of one run, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Mean.
    pub mean: f64,
    /// Slowest observed request.
    pub max: f64,
}

/// The result of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The configuration that produced it.
    pub config: LoadConfig,
    /// Wall-clock span from first spawn to last join, seconds.
    pub wall_seconds: f64,
    /// Sustained throughput: completed requests / wall seconds.
    pub qps: f64,
    /// Latency quantiles.
    pub latency: LatencySummary,
    /// Completed requests.
    pub requests: u64,
    /// Accept decisions.
    pub accepted: u64,
    /// Reject decisions (a decision was made, identity denied).
    pub rejected: u64,
    /// Decisions taken in degraded accel-only mode.
    pub degraded: u64,
    /// Policy runs that exhausted every attempt.
    pub exhausted: u64,
    /// Transport or unexpected server errors.
    pub errors: u64,
    /// Per-category request counts and per-category accepts.
    pub genuine: u64,
    /// Genuine requests that were accepted.
    pub genuine_accepted: u64,
    /// Impostor requests issued.
    pub impostor: u64,
    /// Impostor requests that were (wrongly) accepted.
    pub impostor_accepted: u64,
    /// Fault-injected requests issued.
    pub faulty: u64,
    /// The serving deployment's drift-monitor health report at the end
    /// of the run, when the caller handed the monitor over.
    pub monitor: Value,
    /// Trace ids the server echoed back, in client-thread order (empty
    /// for in-process runs, which cannot observe their minted ids).
    pub trace_ids: Vec<u64>,
}

impl LoadReport {
    /// Reject fraction over completed requests (rejected + exhausted).
    pub fn reject_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.rejected + self.exhausted) as f64 / self.requests as f64
        }
    }

    /// Degraded-decision fraction over completed requests.
    pub fn degraded_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.degraded as f64 / self.requests as f64
        }
    }

    /// The decision tallies that must be transport-invariant.
    pub fn decision_signature(&self) -> [u64; 7] {
        [
            self.requests,
            self.accepted,
            self.rejected,
            self.degraded,
            self.exhausted,
            self.genuine_accepted,
            self.impostor_accepted,
        ]
    }

    /// One `BENCH_serve.json` section.
    pub fn to_json(&self) -> Value {
        let num = |v: f64| {
            if v.is_finite() {
                Value::Number(v)
            } else {
                Value::Null
            }
        };
        Value::Object(vec![
            ("requests".to_string(), Value::Number(self.requests as f64)),
            ("wall_seconds".to_string(), num(self.wall_seconds)),
            ("qps".to_string(), num(self.qps)),
            (
                "latency_seconds".to_string(),
                Value::Object(vec![
                    ("p50".to_string(), num(self.latency.p50)),
                    ("p99".to_string(), num(self.latency.p99)),
                    ("p999".to_string(), num(self.latency.p999)),
                    ("mean".to_string(), num(self.latency.mean)),
                    ("max".to_string(), num(self.latency.max)),
                ]),
            ),
            (
                "counts".to_string(),
                Value::Object(
                    [
                        ("accepted", self.accepted),
                        ("rejected", self.rejected),
                        ("degraded", self.degraded),
                        ("exhausted", self.exhausted),
                        ("errors", self.errors),
                        ("genuine", self.genuine),
                        ("genuine_accepted", self.genuine_accepted),
                        ("impostor", self.impostor),
                        ("impostor_accepted", self.impostor_accepted),
                        ("faulty", self.faulty),
                    ]
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Value::Number(v as f64)))
                    .collect(),
                ),
            ),
            (
                "rates".to_string(),
                Value::Object(vec![
                    ("reject".to_string(), num(self.reject_rate())),
                    ("degraded".to_string(), num(self.degraded_rate())),
                ]),
            ),
            ("monitor".to_string(), self.monitor.clone()),
        ])
    }
}

/// What one client thread does with a prepared request.
enum Caller<'a> {
    InProcess(&'a VerifyService),
    Tcp(Box<VerifyClient>),
}

impl Caller<'_> {
    /// Issues one request. TCP calls ride [`VerifyClient::call_traced`]
    /// so the echoed trace id comes back with the response; in-process
    /// calls mint and commit their trace inside `handle` and return no
    /// id (there is no wire to echo it on).
    fn call(&mut self, request: &Request) -> (Result<Response, String>, Option<u64>) {
        match self {
            Caller::InProcess(service) => (Ok(service.handle(request)), None),
            Caller::Tcp(client) => match client.call_traced(request, None) {
                Ok((response, echoed)) => (Ok(response), echoed),
                Err(e) => (Err(e.to_string()), None),
            },
        }
    }
}

/// Traffic category of one planned request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedKind {
    /// Genuine probe from the claimed user.
    Genuine,
    /// Probe recorded from a different enrolled user.
    Impostor,
    /// Fault-injected genuine probe through the policy path.
    Faulty,
}

/// Draws one request from the traffic mix — the single source of
/// request *contents* for both the closed-loop and open-loop
/// generators, so their plans are interchangeable given the same RNG
/// stream.
fn plan_mixed(
    rng: &mut StdRng,
    users: &[UserProfile],
    recorder: &Recorder,
    mix: TrafficMix,
    fault_intensity: f64,
    policy_batch: usize,
) -> (Request, PlannedKind) {
    let draw = rng.gen_range(0..100u32);
    let user_idx = rng.gen_range(0..users.len());
    let probe_seed = rng.next_u64();
    let user = &users[user_idx];
    if draw < mix.genuine_pct {
        let probe = recorder.record(user, Condition::Normal, probe_seed);
        (
            Request::Verify {
                user_id: user.id,
                probe,
            },
            PlannedKind::Genuine,
        )
    } else if draw < mix.genuine_pct + mix.impostor_pct && users.len() > 1 {
        let offset = 1 + rng.gen_range(0..users.len() - 1);
        let other = &users[(user_idx + offset) % users.len()];
        let probe = recorder.record(other, Condition::Normal, probe_seed);
        (
            Request::Verify {
                user_id: user.id,
                probe,
            },
            PlannedKind::Impostor,
        )
    } else {
        let profiles = sweep_profiles(fault_intensity);
        let profile = &profiles[rng.gen_range(0..profiles.len())];
        let clean = recorder.record(user, Condition::Normal, probe_seed);
        let mut probes = vec![profile.apply(&clean, probe_seed)];
        // Retry `i`'s seed derivation keeps `i == 1` equal to the
        // historical single-retry plan, so default (policy_batch 2)
        // traffic is byte-identical to what it was before the knob.
        for i in 1..policy_batch.max(1) as u64 {
            probes.push(recorder.record(
                user,
                Condition::Normal,
                probe_seed ^ 0xDEAD_BEEFu64.wrapping_mul(i),
            ));
        }
        (
            Request::VerifyWithPolicy {
                user_id: user.id,
                probes,
            },
            PlannedKind::Faulty,
        )
    }
}

/// The deterministic request plan for `(client, index)`.
fn plan_request(
    rng: &mut StdRng,
    users: &[UserProfile],
    recorder: &Recorder,
    config: &LoadConfig,
    tally: &mut Tally,
) -> (Request, bool, bool) {
    // Returns (request, is_genuine, is_impostor); faulty = neither flag.
    let (request, kind) = plan_mixed(
        rng,
        users,
        recorder,
        config.mix,
        config.fault_intensity,
        config.policy_batch,
    );
    match kind {
        PlannedKind::Genuine => tally.genuine += 1,
        PlannedKind::Impostor => tally.impostor += 1,
        PlannedKind::Faulty => tally.faulty += 1,
    }
    (
        request,
        kind == PlannedKind::Genuine,
        kind == PlannedKind::Impostor,
    )
}

/// The deterministic request plan for open-loop request `index`: a pure
/// function of `(seed, index)`, independent of any thread's issue
/// order, so the open-loop run and the closed-loop parity run plan
/// byte-identical requests per index.
pub fn plan_indexed_request(
    seed: u64,
    index: usize,
    users: &[UserProfile],
    recorder: &Recorder,
    mix: TrafficMix,
    fault_intensity: f64,
    policy_batch: usize,
) -> (Request, PlannedKind) {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    plan_mixed(
        &mut rng,
        users,
        recorder,
        mix,
        fault_intensity,
        policy_batch,
    )
}

/// A stable, bit-exact signature of one service outcome: decisions
/// carry their accept/degraded flags, attempt count, and the distance's
/// exact bit pattern; typed errors carry their kind. Two transports (or
/// an open-loop and a closed-loop run) serving the same request must
/// produce equal signatures — util JSON round-trips f64 exactly.
pub fn outcome_signature(response: &Response) -> String {
    match response {
        Response::Decision {
            accepted,
            degraded,
            attempts,
            distance,
            ..
        } => format!(
            "d:{}:{}:{}:{:016x}",
            u8::from(*accepted),
            u8::from(*degraded),
            attempts,
            distance.to_bits()
        ),
        Response::Error { kind, .. } => format!("e:{kind}"),
        Response::Health { .. } => "h".to_string(),
    }
}

fn score_response(
    response: &Result<Response, String>,
    genuine: bool,
    impostor: bool,
    tally: &mut Tally,
) {
    tally.requests += 1;
    match response {
        Ok(Response::Decision {
            accepted, degraded, ..
        }) => {
            if *accepted {
                tally.accepted += 1;
                if genuine {
                    tally.genuine_accepted += 1;
                }
                if impostor {
                    tally.impostor_accepted += 1;
                }
            } else {
                tally.rejected += 1;
            }
            if *degraded {
                tally.degraded += 1;
            }
        }
        Ok(Response::Error { kind, .. }) if kind == "retries_exhausted" => tally.exhausted += 1,
        // Pipeline rejects on hostile probes (e.g. undetectable
        // vibration) are decisions of a kind too; anything else —
        // transport failures, bad_request — is an error.
        Ok(Response::Error { kind, .. })
            if kind != "bad_request" && kind != "not_enrolled" && kind != "unknown" =>
        {
            tally.exhausted += 1
        }
        _ => tally.errors += 1,
    }
}

/// Runs one closed-loop load generation against `target`.
///
/// `users` are the enrolled identities (probe material comes from
/// `recorder`); `monitor`, when given, contributes the end-of-run
/// health verdict to the report.
///
/// # Panics
///
/// Panics when `config` fails [`LoadConfig::validate`] or `users` is
/// empty — both are harness-construction bugs, not runtime states.
pub fn run_load(
    target: &LoadTarget<'_>,
    users: &[UserProfile],
    recorder: &Recorder,
    config: &LoadConfig,
    monitor: Option<&Monitor>,
) -> LoadReport {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid load config: {e}"));
    assert!(!users.is_empty(), "load generation needs enrolled users");
    // A private registry so repeated runs in one process do not blur
    // each other's quantiles.
    let histogram = Registry::new().histogram("serve.load_latency_seconds");
    let started = Instant::now();
    let tallies: Vec<(Tally, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|client_idx| {
                let histogram: Histogram = histogram.clone();
                scope.spawn(move || {
                    let mut caller = match target {
                        LoadTarget::InProcess(service) => Caller::InProcess(service.as_ref()),
                        LoadTarget::Tcp(addr) => Caller::Tcp(Box::new(
                            VerifyClient::connect(*addr)
                                .unwrap_or_else(|e| panic!("load client connect: {e}")),
                        )),
                    };
                    let mut rng =
                        StdRng::seed_from_u64(config.seed.wrapping_add(
                            (client_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        ));
                    let mut tally = Tally::default();
                    let mut echoed_ids = Vec::new();
                    for _ in 0..config.requests_per_client {
                        let (request, genuine, impostor) =
                            plan_request(&mut rng, users, recorder, config, &mut tally);
                        let sent = Instant::now();
                        let (response, echoed) = caller.call(&request);
                        histogram.observe(sent.elapsed().as_secs_f64());
                        score_response(&response, genuine, impostor, &mut tally);
                        if let Some(id) = echoed {
                            echoed_ids.push(id);
                        }
                    }
                    (tally, echoed_ids)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| panic!("load client panicked")))
            .collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let mut total = Tally::default();
    let mut trace_ids = Vec::new();
    for (t, ids) in &tallies {
        total.add(t);
        trace_ids.extend_from_slice(ids);
    }
    LoadReport {
        config: config.clone(),
        wall_seconds,
        qps: total.requests as f64 / wall_seconds,
        latency: LatencySummary {
            p50: histogram.quantile(0.5),
            p99: histogram.quantile(0.99),
            p999: histogram.quantile(0.999),
            mean: histogram.mean(),
            max: histogram.max(),
        },
        requests: total.requests,
        accepted: total.accepted,
        rejected: total.rejected,
        degraded: total.degraded,
        exhausted: total.exhausted,
        errors: total.errors,
        genuine: total.genuine,
        genuine_accepted: total.genuine_accepted,
        impostor: total.impostor,
        impostor_accepted: total.impostor_accepted,
        faulty: total.faulty,
        monitor: monitor.map_or(Value::Null, |m| m.health().to_json()),
        trace_ids,
    }
}

/// The latency-attribution report for the traces a monitor sampled
/// during a load run: per-stage p50/p99/mean/max over the queue-wait /
/// decode / verify / write taxonomy plus the `top_k` slowest traces in
/// full. A thin re-export of
/// [`mandipass_telemetry::attribution_report`] so bench binaries do not
/// reach into the telemetry crate directly.
pub fn trace_attribution(monitor: &Monitor, top_k: usize) -> Value {
    mandipass_telemetry::attribution_report(&monitor.traces(), top_k)
}

/// Assembles the full schema-versioned `BENCH_serve.json` document from
/// the two transport runs.
pub fn bench_serve_document(
    scale_description: &str,
    config: &LoadConfig,
    workers: usize,
    in_process: &LoadReport,
    tcp: &LoadReport,
) -> Value {
    Value::Object(vec![
        (
            "schema".to_string(),
            Value::String(BENCH_SERVE_SCHEMA.to_string()),
        ),
        (
            "scale".to_string(),
            Value::String(scale_description.to_string()),
        ),
        ("config".to_string(), config.serialise()),
        ("workers".to_string(), Value::Number(workers as f64)),
        ("in_process".to_string(), in_process.to_json()),
        ("tcp".to_string(), tcp.to_json()),
    ])
}

fn get_num(doc: &Value, path: &[&str]) -> Result<f64, String> {
    let mut node = doc;
    for key in path {
        node = node
            .get(key)
            .ok_or_else(|| format!("missing field \"{}\"", path.join(".")))?;
    }
    node.as_f64()
        .ok_or_else(|| format!("field \"{}\" is not a number", path.join(".")))
}

fn validate_section(doc: &Value, section: &str) -> Result<(), String> {
    let sec = doc
        .get(section)
        .ok_or_else(|| format!("missing section \"{section}\""))?;
    let requests = get_num(sec, &["requests"])?;
    if requests <= 0.0 {
        return Err(format!("{section}: zero requests completed"));
    }
    let qps = get_num(sec, &["qps"])?;
    if qps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(format!("{section}: qps {qps} not positive"));
    }
    let p50 = get_num(sec, &["latency_seconds", "p50"])?;
    let p99 = get_num(sec, &["latency_seconds", "p99"])?;
    let p999 = get_num(sec, &["latency_seconds", "p999"])?;
    if !(p50 > 0.0 && p50 <= p99 && p99 <= p999) {
        return Err(format!(
            "{section}: latency quantiles disordered (p50 {p50}, p99 {p99}, p999 {p999})"
        ));
    }
    for counter in [
        "accepted",
        "rejected",
        "degraded",
        "exhausted",
        "errors",
        "genuine",
        "impostor",
        "faulty",
    ] {
        let v = get_num(sec, &["counts", counter])?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!(
                "{section}: count \"{counter}\" = {v} is not a non-negative integer"
            ));
        }
    }
    for rate in ["reject", "degraded"] {
        let v = get_num(sec, &["rates", rate])?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{section}: rate \"{rate}\" = {v} outside [0, 1]"));
        }
    }
    let errors = get_num(sec, &["counts", "errors"])?;
    if errors > 0.0 {
        return Err(format!("{section}: {errors} transport/protocol errors"));
    }
    sec.get("monitor")
        .and_then(|m| m.get("status"))
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{section}: missing monitor.status"))?;
    Ok(())
}

/// Validates one `BENCH_serve.json` document against the v1 schema.
///
/// # Errors
///
/// Returns the first violated constraint, with its field path.
pub fn validate_bench_serve(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" tag")?;
    if schema != BENCH_SERVE_SCHEMA {
        return Err(format!(
            "schema \"{schema}\" is not \"{BENCH_SERVE_SCHEMA}\""
        ));
    }
    doc.get("scale")
        .and_then(Value::as_str)
        .ok_or("missing \"scale\" description")?;
    for field in ["clients", "requests_per_client", "seed", "fault_intensity"] {
        get_num(doc, &["config", field])?;
    }
    let workers = get_num(doc, &["workers"])?;
    if workers < 1.0 {
        return Err(format!("workers {workers} < 1"));
    }
    validate_section(doc, "in_process")?;
    validate_section(doc, "tcp")?;
    Ok(())
}

/// Compares a fresh document against a committed baseline and fails on
/// regressions beyond the given ratios: p99 latency may grow to at most
/// `max_p99_ratio`× the baseline, QPS may shrink to no less than
/// `min_qps_ratio`× the baseline. Both sections are gated.
///
/// # Errors
///
/// Returns every violated gate, one per line.
pub fn compare_bench_serve(
    fresh: &Value,
    baseline: &Value,
    max_p99_ratio: f64,
    min_qps_ratio: f64,
) -> Result<(), String> {
    let mut violations = Vec::new();
    for section in ["in_process", "tcp"] {
        let fresh_p99 = get_num(fresh, &[section, "latency_seconds", "p99"])?;
        let base_p99 = get_num(baseline, &[section, "latency_seconds", "p99"])?;
        if fresh_p99 > base_p99 * max_p99_ratio {
            violations.push(format!(
                "{section}: p99 {fresh_p99:.6}s exceeds {max_p99_ratio}x baseline {base_p99:.6}s"
            ));
        }
        let fresh_qps = get_num(fresh, &[section, "qps"])?;
        let base_qps = get_num(baseline, &[section, "qps"])?;
        if fresh_qps < base_qps * min_qps_ratio {
            violations.push(format!(
                "{section}: qps {fresh_qps:.1} below {min_qps_ratio}x baseline {base_qps:.1}"
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("\n"))
    }
}

// ---------------------------------------------------------------------
// Hot-path bench document: per-verify forward latency of the naive
// tensor-per-layer oracle vs the zero-alloc im2col+GEMM fast path, with
// parity and arena steady-state facts. The speedup gate compares the
// FRESH document's own same-run ratio against a floor, so the gate is
// machine-independent (both numerator and denominator come from the
// same binary on the same box in the same run).
// ---------------------------------------------------------------------

/// Schema tag of the hot-path bench artifact.
pub const BENCH_HOTPATH_SCHEMA: &str = "mandipass.bench.hotpath/v1";

/// Validates one `BENCH_hotpath.json` document against the v1 schema.
///
/// # Errors
///
/// Returns the first violated constraint, with its field path.
pub fn validate_bench_hotpath(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" tag")?;
    if schema != BENCH_HOTPATH_SCHEMA {
        return Err(format!(
            "schema \"{schema}\" is not \"{BENCH_HOTPATH_SCHEMA}\""
        ));
    }
    doc.get("scale")
        .and_then(Value::as_str)
        .ok_or("missing \"scale\" description")?;
    for field in ["iters", "batch"] {
        if get_num(doc, &[field])? < 1.0 {
            return Err(format!("{field} must be at least 1"));
        }
    }
    for field in ["naive", "fast", "fused", "batched_per_probe"] {
        let v = get_num(doc, &["per_verify_seconds", field])?;
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("per_verify_seconds.{field} {v} not positive"));
        }
    }
    for field in ["fast", "fused", "batched"] {
        let v = get_num(doc, &["speedup", field])?;
        if !(v.is_finite() && v > 0.0) {
            return Err(format!("speedup.{field} {v} not positive"));
        }
    }
    match doc.get("parity").and_then(|p| p.get("fast_bitwise")) {
        Some(Value::Bool(_)) => {}
        _ => return Err("missing parity.fast_bitwise bool".to_string()),
    }
    get_num(doc, &["parity", "fused_max_abs_err"])?;
    for field in ["steady_growth_events", "high_water_bytes", "pooled_buffers"] {
        if get_num(doc, &["arena", field])? < 0.0 {
            return Err(format!("arena.{field} negative"));
        }
    }
    for field in ["im2col_mean_ns", "gemm_mean_ns", "bias_act_mean_ns"] {
        get_num(doc, &["stages", field])?;
    }
    Ok(())
}

/// Gates a fresh hot-path document: its own same-run fast-path speedup
/// must reach `min_speedup`× the naive oracle, and must not fall below
/// `min_vs_baseline`× the baseline document's speedup (a ratio of
/// ratios, so still machine-independent). Parity and the steady-state
/// zero-allocation claim are hard gates, not ratios.
///
/// # Errors
///
/// Returns every violated gate, one per line.
pub fn compare_bench_hotpath(
    fresh: &Value,
    baseline: &Value,
    min_speedup: f64,
    min_vs_baseline: f64,
) -> Result<(), String> {
    let mut violations = Vec::new();
    let fresh_speedup = get_num(fresh, &["speedup", "fast"])?;
    if fresh_speedup < min_speedup {
        violations.push(format!(
            "fast-path speedup {fresh_speedup:.2}x below the {min_speedup}x floor"
        ));
    }
    let base_speedup = get_num(baseline, &["speedup", "fast"])?;
    if fresh_speedup < base_speedup * min_vs_baseline {
        violations.push(format!(
            "fast-path speedup {fresh_speedup:.2}x below {min_vs_baseline}x baseline {base_speedup:.2}x"
        ));
    }
    if fresh.get("parity").and_then(|p| p.get("fast_bitwise")) != Some(&Value::Bool(true)) {
        violations.push("fast path lost bit-exact parity with the naive oracle".to_string());
    }
    let fused_err = get_num(fresh, &["parity", "fused_max_abs_err"])?;
    if !(fused_err.is_finite() && fused_err < 1e-5) {
        violations.push(format!(
            "fused parity error {fused_err:e} outside the 1e-5 envelope"
        ));
    }
    let growth = get_num(fresh, &["arena", "steady_growth_events"])?;
    if growth != 0.0 {
        violations.push(format!(
            "arena grew {growth} times in the steady-state window (zero-alloc claim broken)"
        ));
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("\n"))
    }
}

// ---------------------------------------------------------------------
// Open-loop (arrival-rate-driven) generation and the overload bench
// document. A closed-loop generator can never overload a server — each
// client waits for its answer, so offered load self-throttles to
// capacity. The open-loop generator fires request `i` at time
// `start + i / rate` regardless of outstanding responses, which is the
// only way to drive offered load past capacity and observe the shed
// path, the bounded queue, and saturated tail latency.
// ---------------------------------------------------------------------

/// Schema tag of the overload bench artifact.
pub const BENCH_OVERLOAD_SCHEMA: &str = "mandipass.bench.overload/v1";

/// One open-loop run: `total_requests` arrivals at `rate_per_sec`,
/// issued by `senders` threads (thread `s` owns indices `i ≡ s mod
/// senders`), one fresh connection per request.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopConfig {
    /// Offered arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Total arrivals.
    pub total_requests: usize,
    /// Sender threads; must comfortably exceed `rate × per-request
    /// latency` or the offered rate degrades toward closed-loop.
    pub senders: usize,
    /// Traffic composition.
    pub mix: TrafficMix,
    /// Fault intensity for the faulty share.
    pub fault_intensity: f64,
    /// Probes per policy request (see [`LoadConfig::policy_batch`]).
    pub policy_batch: usize,
    /// Master seed; request `i` derives from `(seed, i)` only.
    pub seed: u64,
    /// Optional per-request `deadline_ms` budget.
    pub deadline_ms: Option<u64>,
}

/// What happened to one open-loop request.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenOutcome {
    /// The server dispatched it; the signature is
    /// [`outcome_signature`] of the response.
    Served {
        /// Bit-exact outcome signature for parity checks.
        signature: String,
    },
    /// The server shed it with a typed error (`overloaded`,
    /// `deadline_exceeded`, or `shutting_down`).
    Shed {
        /// The error kind.
        kind: String,
    },
    /// The transport failed — a hang-up, reset, or timeout. The
    /// overload acceptance gate requires zero of these: overload must
    /// surface as typed sheds, never as connection failures.
    Transport {
        /// The I/O error text.
        error: String,
    },
}

/// The result of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Configured arrival rate.
    pub offered_rate: f64,
    /// Completed arrivals / wall time — sags below `offered_rate` when
    /// senders cannot keep up.
    pub achieved_rate: f64,
    /// Wall-clock seconds, first arrival to last response.
    pub wall_seconds: f64,
    /// Requests that got a dispatched (served) response.
    pub served: u64,
    /// Requests shed with a typed `overloaded`.
    pub shed_overloaded: u64,
    /// Requests shed with a typed `deadline_exceeded`.
    pub shed_deadline: u64,
    /// Requests shed with a typed `shutting_down`.
    pub shed_shutdown: u64,
    /// Transport failures (must be zero under the acceptance gate).
    pub transport_errors: u64,
    /// Served responses / wall seconds — the goodput the overload chart
    /// plots against offered load.
    pub goodput: f64,
    /// Latency quantiles of *served* requests only (connect + round
    /// trip); sheds answer fast and would flatter the tail.
    pub latency: LatencySummary,
    /// Per-index outcomes, `outcomes[i]` for request `i`.
    pub outcomes: Vec<OpenOutcome>,
}

impl OpenLoopReport {
    /// Served + shed + failed — always `total_requests`.
    pub fn total(&self) -> u64 {
        self.served
            + self.shed_overloaded
            + self.shed_deadline
            + self.shed_shutdown
            + self.transport_errors
    }

    /// One sweep-point JSON section.
    pub fn to_json(&self) -> Value {
        let num = |v: f64| {
            if v.is_finite() {
                Value::Number(v)
            } else {
                Value::Null
            }
        };
        Value::Object(vec![
            ("offered_rate".to_string(), num(self.offered_rate)),
            ("achieved_rate".to_string(), num(self.achieved_rate)),
            ("wall_seconds".to_string(), num(self.wall_seconds)),
            ("total".to_string(), Value::Number(self.total() as f64)),
            ("served".to_string(), Value::Number(self.served as f64)),
            (
                "shed".to_string(),
                Value::Object(vec![
                    (
                        "overloaded".to_string(),
                        Value::Number(self.shed_overloaded as f64),
                    ),
                    (
                        "deadline".to_string(),
                        Value::Number(self.shed_deadline as f64),
                    ),
                    (
                        "shutting_down".to_string(),
                        Value::Number(self.shed_shutdown as f64),
                    ),
                ]),
            ),
            (
                "transport_errors".to_string(),
                Value::Number(self.transport_errors as f64),
            ),
            ("goodput".to_string(), num(self.goodput)),
            (
                "latency_seconds".to_string(),
                Value::Object(vec![
                    ("p50".to_string(), num(self.latency.p50)),
                    ("p99".to_string(), num(self.latency.p99)),
                    ("mean".to_string(), num(self.latency.mean)),
                    ("max".to_string(), num(self.latency.max)),
                ]),
            ),
        ])
    }
}

/// Issues one pre-serialized request frame on a fresh connection and
/// classifies the reply.
fn open_loop_call(
    addr: SocketAddr,
    frame: &[u8],
    max_frame_bytes: usize,
) -> Result<Response, String> {
    use mandipass_serve::protocol;
    let mut stream = std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(5))
        .map_err(|e| format!("connect: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    protocol::write_frame(&mut stream, frame).map_err(|e| format!("write: {e}"))?;
    let payload = protocol::read_frame(&mut stream, max_frame_bytes)
        .map_err(|e| format!("read: {e}"))?
        .ok_or_else(|| "server closed before answering".to_string())?;
    Response::from_frame(&payload).map_err(|e| format!("parse: {e}"))
}

/// Runs one open-loop generation against a TCP endpoint.
///
/// All request frames are planned and serialized *before* the clock
/// starts, so the send loop does no probe synthesis and the offered
/// rate is real. Request `i`'s contents depend only on `(seed, i)` —
/// identical to what [`plan_indexed_request`] returns — which is what
/// the admitted-decision parity check in `exp_overload` compares
/// against.
///
/// # Panics
///
/// Panics on nonsensical configs (zero rate or requests) — harness
/// construction bugs.
pub fn run_open_loop(
    addr: SocketAddr,
    users: &[UserProfile],
    recorder: &Recorder,
    config: &OpenLoopConfig,
) -> OpenLoopReport {
    use mandipass_serve::with_deadline_ms;
    assert!(
        config.rate_per_sec > 0.0 && config.total_requests > 0,
        "open-loop config needs a positive rate and request count"
    );
    assert!(
        !users.is_empty(),
        "open-loop generation needs enrolled users"
    );
    let max_frame_bytes = 1 << 24;
    // Plan phase (off the clock): serialize every frame up front.
    let frames: Vec<Vec<u8>> = (0..config.total_requests)
        .map(|i| {
            let (request, _) = plan_indexed_request(
                config.seed,
                i,
                users,
                recorder,
                config.mix,
                config.fault_intensity,
                config.policy_batch,
            );
            let mut doc = request.to_json();
            if let Some(ms) = config.deadline_ms {
                doc = with_deadline_ms(doc, ms);
            }
            doc.to_json().into_bytes()
        })
        .collect();
    let histogram = Registry::new().histogram("serve.open_loop_latency_seconds");
    let senders = config.senders.max(1);
    let started = Instant::now();
    let per_thread: Vec<Vec<(usize, OpenOutcome)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..senders)
            .map(|s| {
                let frames = &frames;
                let histogram = histogram.clone();
                scope.spawn(move || {
                    let mut outcomes = Vec::new();
                    let mut index = s;
                    while index < frames.len() {
                        // Open loop: arrival i is due at start + i/rate;
                        // sleep if early, fire immediately if late.
                        let due = started
                            + std::time::Duration::from_secs_f64(
                                index as f64 / config.rate_per_sec,
                            );
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let sent = Instant::now();
                        let outcome = match open_loop_call(addr, &frames[index], max_frame_bytes) {
                            Ok(Response::Error { kind, .. })
                                if kind == "overloaded"
                                    || kind == "deadline_exceeded"
                                    || kind == "shutting_down" =>
                            {
                                OpenOutcome::Shed { kind }
                            }
                            Ok(response) => {
                                histogram.observe(sent.elapsed().as_secs_f64());
                                OpenOutcome::Served {
                                    signature: outcome_signature(&response),
                                }
                            }
                            Err(error) => OpenOutcome::Transport { error },
                        };
                        outcomes.push((index, outcome));
                        index += senders;
                    }
                    outcomes
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("open-loop sender panicked"))
            })
            .collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64().max(1e-9);
    let mut indexed: Vec<(usize, OpenOutcome)> = per_thread.into_iter().flatten().collect();
    indexed.sort_by_key(|(i, _)| *i);
    let outcomes: Vec<OpenOutcome> = indexed.into_iter().map(|(_, o)| o).collect();
    let mut served = 0u64;
    let (mut shed_overloaded, mut shed_deadline, mut shed_shutdown) = (0u64, 0u64, 0u64);
    let mut transport_errors = 0u64;
    for outcome in &outcomes {
        match outcome {
            OpenOutcome::Served { .. } => served += 1,
            OpenOutcome::Shed { kind } => match kind.as_str() {
                "overloaded" => shed_overloaded += 1,
                "deadline_exceeded" => shed_deadline += 1,
                _ => shed_shutdown += 1,
            },
            OpenOutcome::Transport { .. } => transport_errors += 1,
        }
    }
    OpenLoopReport {
        offered_rate: config.rate_per_sec,
        achieved_rate: outcomes.len() as f64 / wall_seconds,
        wall_seconds,
        served,
        shed_overloaded,
        shed_deadline,
        shed_shutdown,
        transport_errors,
        goodput: served as f64 / wall_seconds,
        latency: LatencySummary {
            p50: histogram.quantile(0.5),
            p99: histogram.quantile(0.99),
            p999: histogram.quantile(0.999),
            mean: histogram.mean(),
            max: histogram.max(),
        },
        outcomes,
    }
}

/// Validates one `BENCH_overload.json` document against the v1 schema,
/// including the overload acceptance gates: saturation ≥ 2× capacity,
/// zero transport errors, admitted p99 within 5× the unsaturated p99,
/// zero parity mismatches, and a drill that opened, recovered, and
/// repeated identically.
///
/// # Errors
///
/// Returns the first violated constraint, with its field path.
pub fn validate_bench_overload(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" tag")?;
    if schema != BENCH_OVERLOAD_SCHEMA {
        return Err(format!(
            "schema \"{schema}\" is not \"{BENCH_OVERLOAD_SCHEMA}\""
        ));
    }
    doc.get("scale")
        .and_then(Value::as_str)
        .ok_or("missing \"scale\" description")?;
    get_num(doc, &["seed"])?;
    let capacity_qps = get_num(doc, &["capacity", "qps"])?;
    let capacity_p99 = get_num(doc, &["capacity", "p99_seconds"])?;
    if capacity_qps <= 0.0 || capacity_p99 <= 0.0 {
        return Err(format!(
            "capacity not positive (qps {capacity_qps}, p99 {capacity_p99})"
        ));
    }
    let sweep = match doc.get("sweep") {
        Some(Value::Array(points)) if !points.is_empty() => points,
        _ => return Err("missing or empty \"sweep\" array".to_string()),
    };
    for (i, point) in sweep.iter().enumerate() {
        for field in ["offered_rate", "goodput", "served", "total"] {
            get_num(point, &[field]).map_err(|e| format!("sweep[{i}]: {e}"))?;
        }
    }
    let saturation = get_num(doc, &["overload", "saturation_ratio"])?;
    if saturation < 2.0 {
        return Err(format!(
            "overload.saturation_ratio {saturation:.2} < 2.0: offered load did not reach 2x capacity"
        ));
    }
    let transport = get_num(doc, &["overload", "transport_errors"])?;
    if transport != 0.0 {
        return Err(format!(
            "overload.transport_errors = {transport}: sheds must be typed replies, not hang-ups"
        ));
    }
    let served = get_num(doc, &["overload", "served"])?;
    if served <= 0.0 {
        return Err("overload.served = 0: saturation starved every request".to_string());
    }
    let shed = get_num(doc, &["overload", "shed", "overloaded"])?;
    if shed <= 0.0 {
        return Err(
            "overload.shed.overloaded = 0: 2x offered load never hit the queue bound".to_string(),
        );
    }
    let p99_ratio = get_num(doc, &["overload", "p99_ratio_vs_unsaturated"])?;
    if p99_ratio > 5.0 {
        return Err(format!(
            "overload.p99_ratio_vs_unsaturated {p99_ratio:.2} > 5: the bounded queue failed to cap tail latency"
        ));
    }
    let parity_checked = get_num(doc, &["overload", "parity_checked"])?;
    let parity_mismatches = get_num(doc, &["overload", "parity_mismatches"])?;
    if parity_checked <= 0.0 {
        return Err("overload.parity_checked = 0: no admitted request was compared".to_string());
    }
    if parity_mismatches != 0.0 {
        return Err(format!(
            "overload.parity_mismatches = {parity_mismatches}: admitted decisions drifted from the closed-loop run"
        ));
    }
    let transitions = match doc.get("drill").and_then(|d| d.get("transitions")) {
        Some(Value::Array(t)) => t,
        _ => return Err("missing drill.transitions array".to_string()),
    };
    let labels: Vec<&str> = transitions.iter().filter_map(Value::as_str).collect();
    if !labels.iter().any(|l| l.contains("->open:")) {
        return Err(format!("drill never opened the breaker: {labels:?}"));
    }
    if !labels
        .iter()
        .any(|l| l.contains("->closed:probes_recovered"))
    {
        return Err(format!("drill never recovered the breaker: {labels:?}"));
    }
    match doc.get("drill").and_then(|d| d.get("runs_identical")) {
        Some(Value::Bool(true)) => {}
        other => {
            return Err(format!(
                "drill.runs_identical is {other:?}: two same-seed drills must match exactly"
            ))
        }
    }
    Ok(())
}

/// Compares a fresh overload document against a committed baseline:
/// goodput under saturation may shrink to no less than
/// `min_goodput_ratio`× the baseline's, and saturated p99 may grow to
/// at most `max_p99_ratio`× the baseline's.
///
/// # Errors
///
/// Returns every violated gate, one per line.
pub fn compare_bench_overload(
    fresh: &Value,
    baseline: &Value,
    max_p99_ratio: f64,
    min_goodput_ratio: f64,
) -> Result<(), String> {
    let mut violations = Vec::new();
    let fresh_goodput = get_num(fresh, &["overload", "goodput"])?;
    let base_goodput = get_num(baseline, &["overload", "goodput"])?;
    if fresh_goodput < base_goodput * min_goodput_ratio {
        violations.push(format!(
            "overload: goodput {fresh_goodput:.1} below {min_goodput_ratio}x baseline {base_goodput:.1}"
        ));
    }
    let fresh_p99 = get_num(fresh, &["overload", "latency_seconds", "p99"])?;
    let base_p99 = get_num(baseline, &["overload", "latency_seconds", "p99"])?;
    if fresh_p99 > base_p99 * max_p99_ratio {
        violations.push(format!(
            "overload: saturated p99 {fresh_p99:.6}s exceeds {max_p99_ratio}x baseline {base_p99:.6}s"
        ));
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("\n"))
    }
}

// ---------------------------------------------------------------------
// Trace bench artifact: schema validation and the baseline gate for
// `BENCH_trace.json` (produced by `exp_trace`), closing the loop that
// previously left the trace artifact written but ungated in CI.
// ---------------------------------------------------------------------

/// Schema tag of the trace bench artifact.
pub const BENCH_TRACE_SCHEMA: &str = "mandipass.bench.trace/v1";

/// Stages every trace document must attribute (queue_wait is sparse by
/// design — only queued requests record it — so it is not required).
const TRACE_REQUIRED_STAGES: [&str; 4] = ["total", "decode", "verify", "write"];

/// Validates one `BENCH_trace.json` document against the v1 schema:
/// the tag, a positive request count, per-stage attribution with
/// ordered quantiles for every required stage, and every acceptance
/// check recorded as passing.
///
/// # Errors
///
/// Returns the first violated constraint, with its field path.
pub fn validate_bench_trace(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" tag")?;
    if schema != BENCH_TRACE_SCHEMA {
        return Err(format!(
            "schema \"{schema}\" is not \"{BENCH_TRACE_SCHEMA}\""
        ));
    }
    doc.get("scale")
        .and_then(Value::as_str)
        .ok_or("missing \"scale\" description")?;
    let requests = get_num(doc, &["requests"])?;
    if requests < 1.0 || requests.fract() != 0.0 {
        return Err(format!("requests {requests} is not a positive integer"));
    }
    let trace_count = get_num(doc, &["attribution", "trace_count"])?;
    if trace_count < 1.0 {
        return Err("attribution.trace_count is zero — nothing was traced".to_string());
    }
    for stage in TRACE_REQUIRED_STAGES {
        let count = get_num(doc, &["attribution", "stages", stage, "count"])?;
        if count < 1.0 {
            return Err(format!("attribution stage \"{stage}\" has zero samples"));
        }
        let p50 = get_num(doc, &["attribution", "stages", stage, "p50_nanos"])?;
        let p99 = get_num(doc, &["attribution", "stages", stage, "p99_nanos"])?;
        if !(p50 >= 0.0 && p50 <= p99) {
            return Err(format!(
                "attribution stage \"{stage}\": quantiles disordered (p50 {p50}, p99 {p99})"
            ));
        }
    }
    match doc.get("checks") {
        Some(Value::Object(checks)) if !checks.is_empty() => {
            for (name, value) in checks {
                if value.as_bool() != Some(true) {
                    return Err(format!("acceptance check \"{name}\" did not pass"));
                }
            }
        }
        _ => return Err("missing \"checks\" section".to_string()),
    }
    Ok(())
}

/// Compares a fresh trace document against a committed baseline:
/// verify-stage and end-to-end p99 attribution may grow to at most
/// `max_p99_ratio`× the baseline, and the fresh run must cover at least
/// `min_requests_ratio`× the baseline's requests (a shrunken run would
/// make the latency gate meaningless).
///
/// # Errors
///
/// Returns every violated gate, one per line.
pub fn compare_bench_trace(
    fresh: &Value,
    baseline: &Value,
    max_p99_ratio: f64,
    min_requests_ratio: f64,
) -> Result<(), String> {
    let mut violations = Vec::new();
    for stage in ["verify", "total"] {
        let fresh_p99 = get_num(fresh, &["attribution", "stages", stage, "p99_nanos"])?;
        let base_p99 = get_num(baseline, &["attribution", "stages", stage, "p99_nanos"])?;
        if fresh_p99 > base_p99 * max_p99_ratio {
            violations.push(format!(
                "attribution.{stage}: p99 {fresh_p99:.0}ns exceeds {max_p99_ratio}x baseline {base_p99:.0}ns"
            ));
        }
    }
    let fresh_requests = get_num(fresh, &["requests"])?;
    let base_requests = get_num(baseline, &["requests"])?;
    if fresh_requests < base_requests * min_requests_ratio {
        violations.push(format!(
            "requests {fresh_requests} below {min_requests_ratio}x baseline {base_requests}"
        ));
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(qps: f64, p99: f64) -> LoadReport {
        LoadReport {
            config: LoadConfig::default(),
            wall_seconds: 1.0,
            qps,
            latency: LatencySummary {
                p50: p99 / 2.0,
                p99,
                p999: p99 * 1.5,
                mean: p99 / 2.0,
                max: p99 * 2.0,
            },
            requests: 128,
            accepted: 80,
            rejected: 40,
            degraded: 4,
            exhausted: 8,
            errors: 0,
            genuine: 90,
            genuine_accepted: 78,
            impostor: 26,
            impostor_accepted: 2,
            faulty: 12,
            monitor: Value::Object(vec![(
                "status".to_string(),
                Value::String("healthy".to_string()),
            )]),
            trace_ids: Vec::new(),
        }
    }

    #[test]
    fn attribution_of_an_idle_monitor_is_empty_but_well_formed() {
        let monitor = Monitor::default();
        let report = trace_attribution(&monitor, 5);
        assert_eq!(report.get("trace_count").and_then(Value::as_f64), Some(0.0));
        assert!(matches!(report.get("slowest"), Some(Value::Array(a)) if a.is_empty()));
    }

    fn fake_doc(qps: f64, p99: f64) -> Value {
        bench_serve_document(
            "test scale",
            &LoadConfig::default(),
            4,
            &fake_report(qps, p99),
            &fake_report(qps * 0.8, p99 * 1.2),
        )
    }

    #[test]
    fn document_round_trips_and_validates() {
        let doc = fake_doc(500.0, 0.010);
        let text = doc.to_json();
        let parsed = mandipass_util::json::parse(&text).unwrap();
        validate_bench_serve(&parsed).unwrap();
    }

    #[test]
    fn validator_names_the_violated_field() {
        let mut doc = fake_doc(500.0, 0.010);
        if let Value::Object(members) = &mut doc {
            members.retain(|(k, _)| k != "tcp");
        }
        let err = validate_bench_serve(&doc).unwrap_err();
        assert!(err.contains("tcp"), "{err}");

        let bad_schema = Value::Object(vec![(
            "schema".to_string(),
            Value::String("something/v9".to_string()),
        )]);
        assert!(validate_bench_serve(&bad_schema)
            .unwrap_err()
            .contains("v9"));
    }

    #[test]
    fn validator_rejects_disordered_quantiles_and_errors() {
        let mut report = fake_report(100.0, 0.01);
        report.latency.p999 = report.latency.p50 / 2.0;
        let doc = bench_serve_document("s", &LoadConfig::default(), 2, &report, &report);
        assert!(validate_bench_serve(&doc)
            .unwrap_err()
            .contains("disordered"));

        let mut report = fake_report(100.0, 0.01);
        report.errors = 3;
        let doc = bench_serve_document("s", &LoadConfig::default(), 2, &report, &report);
        assert!(validate_bench_serve(&doc).unwrap_err().contains("errors"));
    }

    #[test]
    fn comparator_gates_p99_and_qps() {
        let baseline = fake_doc(1000.0, 0.010);
        // Healthy: same perf passes with generous ratios.
        compare_bench_serve(&fake_doc(1000.0, 0.010), &baseline, 2.0, 0.5).unwrap();
        // Slightly worse but inside the envelope passes.
        compare_bench_serve(&fake_doc(600.0, 0.018), &baseline, 2.0, 0.5).unwrap();
        // p99 blow-up fails and is named.
        let err = compare_bench_serve(&fake_doc(1000.0, 0.050), &baseline, 2.0, 0.5).unwrap_err();
        assert!(err.contains("p99"), "{err}");
        // QPS collapse fails.
        let err = compare_bench_serve(&fake_doc(100.0, 0.010), &baseline, 2.0, 0.5).unwrap_err();
        assert!(err.contains("qps"), "{err}");
    }

    #[test]
    fn mix_must_sum_to_one_hundred() {
        let mut config = LoadConfig::default();
        config.mix.genuine_pct = 50;
        assert!(config.validate().unwrap_err().contains("mix"));
        assert!(LoadConfig::default().validate().is_ok());
    }

    #[test]
    fn reject_and_degraded_rates_are_fractions_of_requests() {
        let report = fake_report(100.0, 0.01);
        assert!((report.reject_rate() - 48.0 / 128.0).abs() < 1e-12);
        assert!((report.degraded_rate() - 4.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn indexed_plans_are_deterministic_and_index_local() {
        let population = mandipass_imu_sim::Population::generate(3, 0xbeef);
        let users = population.users();
        let recorder = Recorder::default();
        let mix = TrafficMix::default();
        for index in [0usize, 1, 7, 63] {
            let (a, ka) = plan_indexed_request(42, index, users, &recorder, mix, 0.5, 2);
            let (b, kb) = plan_indexed_request(42, index, users, &recorder, mix, 0.5, 2);
            assert_eq!(ka, kb, "plan kind must be a pure function of (seed, index)");
            assert_eq!(
                a.to_json().to_json(),
                b.to_json().to_json(),
                "request {index} must serialize identically across plans"
            );
        }
        let (a, _) = plan_indexed_request(42, 5, users, &recorder, mix, 0.5, 2);
        let (b, _) = plan_indexed_request(43, 5, users, &recorder, mix, 0.5, 2);
        assert_ne!(
            a.to_json().to_json(),
            b.to_json().to_json(),
            "different seeds must alter the stream"
        );
    }

    #[test]
    fn outcome_signatures_distinguish_decisions_errors_and_health() {
        let decision = Response::Decision {
            accepted: true,
            distance: 0.25,
            threshold: 0.5,
            degraded: false,
            attempts: 1,
            rejects: Vec::new(),
        };
        let sig = outcome_signature(&decision);
        assert!(sig.starts_with("d:1:0:1:"), "{sig}");
        let error = Response::error("overloaded", "queue full");
        assert_eq!(outcome_signature(&error), "e:overloaded");
        let health = Response::Health {
            health: Value::Object(Vec::new()),
            enrolled: 0,
        };
        assert_eq!(outcome_signature(&health), "h");
    }

    fn fake_overload_doc() -> Value {
        let point = |rate: f64, served: f64, shed: f64| {
            Value::Object(vec![
                ("offered_rate".to_string(), Value::Number(rate)),
                ("achieved_rate".to_string(), Value::Number(rate)),
                ("wall_seconds".to_string(), Value::Number(1.0)),
                ("total".to_string(), Value::Number(served + shed)),
                ("served".to_string(), Value::Number(served)),
                (
                    "shed".to_string(),
                    Value::Object(vec![
                        ("overloaded".to_string(), Value::Number(shed)),
                        ("deadline".to_string(), Value::Number(0.0)),
                        ("shutting_down".to_string(), Value::Number(0.0)),
                    ]),
                ),
                ("transport_errors".to_string(), Value::Number(0.0)),
                ("goodput".to_string(), Value::Number(served)),
                (
                    "latency_seconds".to_string(),
                    Value::Object(vec![
                        ("p50".to_string(), Value::Number(0.002)),
                        ("p99".to_string(), Value::Number(0.008)),
                        ("mean".to_string(), Value::Number(0.003)),
                        ("max".to_string(), Value::Number(0.02)),
                    ]),
                ),
            ])
        };
        let mut overload = match point(440.0, 180.0, 260.0) {
            Value::Object(fields) => fields,
            _ => unreachable!(),
        };
        overload.push(("saturation_ratio".to_string(), Value::Number(2.2)));
        overload.push(("p99_ratio_vs_unsaturated".to_string(), Value::Number(1.6)));
        overload.push(("parity_checked".to_string(), Value::Number(180.0)));
        overload.push(("parity_mismatches".to_string(), Value::Number(0.0)));
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::String(BENCH_OVERLOAD_SCHEMA.to_string()),
            ),
            ("scale".to_string(), Value::String("test".to_string())),
            ("seed".to_string(), Value::Number(7.0)),
            (
                "capacity".to_string(),
                Value::Object(vec![
                    ("qps".to_string(), Value::Number(200.0)),
                    ("p99_seconds".to_string(), Value::Number(0.005)),
                ]),
            ),
            (
                "sweep".to_string(),
                Value::Array(vec![point(160.0, 160.0, 0.0), point(440.0, 180.0, 260.0)]),
            ),
            ("overload".to_string(), Value::Object(overload)),
            (
                "drill".to_string(),
                Value::Object(vec![
                    (
                        "transitions".to_string(),
                        Value::Array(vec![
                            Value::String("closed->open:error_rate".to_string()),
                            Value::String("open->half_open:machine".to_string()),
                            Value::String("half_open->closed:probes_recovered".to_string()),
                        ]),
                    ),
                    ("runs_identical".to_string(), Value::Bool(true)),
                ]),
            ),
        ])
    }

    fn patch(doc: &Value, path: &[&str], value: Value) -> Value {
        match doc {
            Value::Object(fields) => Value::Object(
                fields
                    .iter()
                    .map(|(k, v)| {
                        if k == path[0] {
                            if path.len() == 1 {
                                (k.clone(), value.clone())
                            } else {
                                (k.clone(), patch(v, &path[1..], value.clone()))
                            }
                        } else {
                            (k.clone(), v.clone())
                        }
                    })
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    #[test]
    fn overload_document_round_trips_and_validates() {
        let doc = fake_overload_doc();
        let parsed = mandipass_util::json::parse(&doc.to_json()).unwrap();
        validate_bench_overload(&parsed).unwrap();
    }

    #[test]
    fn overload_validator_enforces_every_acceptance_gate() {
        let doc = fake_overload_doc();
        let cases: Vec<(&[&str], Value, &str)> = vec![
            (
                &["overload", "saturation_ratio"],
                Value::Number(1.5),
                "saturation",
            ),
            (
                &["overload", "transport_errors"],
                Value::Number(2.0),
                "transport",
            ),
            (
                &["overload", "p99_ratio_vs_unsaturated"],
                Value::Number(9.0),
                "p99_ratio",
            ),
            (
                &["overload", "parity_mismatches"],
                Value::Number(1.0),
                "parity",
            ),
            (
                &["overload", "shed", "overloaded"],
                Value::Number(0.0),
                "queue bound",
            ),
            (
                &["drill", "runs_identical"],
                Value::Bool(false),
                "identical",
            ),
            (
                &["drill", "transitions"],
                Value::Array(vec![Value::String("closed->open:error_rate".to_string())]),
                "recovered",
            ),
        ];
        for (path, value, needle) in cases {
            let err = validate_bench_overload(&patch(&doc, path, value)).unwrap_err();
            assert!(err.contains(needle), "{path:?}: {err}");
        }
        let err = validate_bench_overload(&patch(
            &doc,
            &["schema"],
            Value::String("mandipass.bench.overload/v9".to_string()),
        ))
        .unwrap_err();
        assert!(err.contains("v9"), "{err}");
    }

    #[test]
    fn overload_comparator_gates_goodput_and_saturated_p99() {
        let baseline = fake_overload_doc();
        compare_bench_overload(&baseline, &baseline, 2.0, 0.5).unwrap();
        let slow = patch(
            &baseline,
            &["overload", "latency_seconds", "p99"],
            Value::Number(0.1),
        );
        assert!(compare_bench_overload(&slow, &baseline, 2.0, 0.5)
            .unwrap_err()
            .contains("p99"));
        let starved = patch(&baseline, &["overload", "goodput"], Value::Number(10.0));
        assert!(compare_bench_overload(&starved, &baseline, 2.0, 0.5)
            .unwrap_err()
            .contains("goodput"));
    }

    fn fake_trace_doc() -> Value {
        let stage = |count: f64, p50: f64, p99: f64| {
            Value::Object(vec![
                ("count".to_string(), Value::Number(count)),
                ("p50_nanos".to_string(), Value::Number(p50)),
                ("p99_nanos".to_string(), Value::Number(p99)),
                ("mean_nanos".to_string(), Value::Number(p50)),
                ("max_nanos".to_string(), Value::Number(p99 * 1.2)),
            ])
        };
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::String(BENCH_TRACE_SCHEMA.to_string()),
            ),
            (
                "scale".to_string(),
                Value::String("4 clients x 16 requests".to_string()),
            ),
            ("requests".to_string(), Value::Number(64.0)),
            ("echoed_ids".to_string(), Value::Number(64.0)),
            (
                "attribution".to_string(),
                Value::Object(vec![
                    ("trace_count".to_string(), Value::Number(66.0)),
                    (
                        "stages".to_string(),
                        Value::Object(vec![
                            ("total".to_string(), stage(66.0, 3.5e7, 4.8e7)),
                            ("queue_wait".to_string(), stage(5.0, 4.0e6, 1.2e7)),
                            ("decode".to_string(), stage(66.0, 8.5e4, 1.7e5)),
                            ("verify".to_string(), stage(66.0, 3.2e7, 4.1e7)),
                            ("write".to_string(), stage(66.0, 3.1e6, 1.3e7)),
                        ]),
                    ),
                    ("slowest".to_string(), Value::Array(Vec::new())),
                ]),
            ),
            (
                "checks".to_string(),
                Value::Object(vec![
                    ("stage_sums_within_total".to_string(), Value::Bool(true)),
                    ("sampling_bit_identical".to_string(), Value::Bool(true)),
                ]),
            ),
        ])
    }

    #[test]
    fn trace_validator_accepts_the_real_shape_and_names_failures() {
        let doc = fake_trace_doc();
        validate_bench_trace(&doc).unwrap_or_else(|e| panic!("{e}"));
        let wrong_schema = patch(&doc, &["schema"], Value::String("v9".to_string()));
        assert!(validate_bench_trace(&wrong_schema)
            .unwrap_err()
            .contains("v9"));
        let no_traces = patch(&doc, &["attribution", "trace_count"], Value::Number(0.0));
        assert!(validate_bench_trace(&no_traces)
            .unwrap_err()
            .contains("trace_count"));
        let disordered = patch(
            &doc,
            &["attribution", "stages", "verify", "p50_nanos"],
            Value::Number(9.9e7),
        );
        assert!(validate_bench_trace(&disordered)
            .unwrap_err()
            .contains("disordered"));
        let failed_check = patch(
            &doc,
            &["checks", "sampling_bit_identical"],
            Value::Bool(false),
        );
        assert!(validate_bench_trace(&failed_check)
            .unwrap_err()
            .contains("sampling_bit_identical"));
    }

    #[test]
    fn trace_comparator_gates_verify_p99_and_request_coverage() {
        let baseline = fake_trace_doc();
        compare_bench_trace(&baseline, &baseline, 2.0, 0.5).unwrap_or_else(|e| panic!("{e}"));
        let slow = patch(
            &baseline,
            &["attribution", "stages", "verify", "p99_nanos"],
            Value::Number(9.0e7),
        );
        assert!(compare_bench_trace(&slow, &baseline, 2.0, 0.5)
            .unwrap_err()
            .contains("verify"));
        let shrunk = patch(&baseline, &["requests"], Value::Number(8.0));
        assert!(compare_bench_trace(&shrunk, &baseline, 2.0, 0.5)
            .unwrap_err()
            .contains("requests"));
    }
}
