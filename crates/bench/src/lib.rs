//! Shared harness for the per-figure/table experiment binaries and the
//! criterion benches.
//!
//! Every experiment binary builds (or reuses) a [`TrainedStack`] — a
//! VSP-trained extractor plus the synthetic cohort — and calls the
//! corresponding function in [`experiments`]. `run_all` builds the stack
//! once and regenerates every artifact in one process.
//!
//! Scales default to reduced-but-shape-preserving sizes and can be raised
//! to paper scale through environment variables (see [`scale`]).

pub mod experiments;
pub mod harness;
pub mod load;
pub mod profile;
pub mod scale;

pub use harness::{MainEvaluation, TrainedStack};
pub use scale::EvalScale;
