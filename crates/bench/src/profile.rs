//! Bench-artifact profile sections and regression attribution.
//!
//! `exp_hotpath` and `exp_serve` embed a compact CPU-profile summary
//! (the [`mandipass_telemetry::profile::CpuProfile::summary_json`]
//! shape: `{"unit", "frames": {path: {count, total_nanos, self_nanos,
//! p50_nanos, p99_nanos}}}`) under a top-level `"profile"` key in their
//! BENCH documents. [`attribute_profiles`] diffs two such summaries and
//! ranks frames by per-call self-time growth, so when a `check_bench`
//! ratio gate fails the report names *which frame* regressed instead of
//! just that p99 moved.

use mandipass_util::json::Value;

/// One frame's regression verdict from [`attribute_profiles`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRegression {
    /// Dot-joined frame path.
    pub path: String,
    /// Fresh self nanoseconds per call.
    pub fresh_self_per_call: f64,
    /// Baseline self nanoseconds per call (`None` for a frame the
    /// baseline never saw).
    pub base_self_per_call: Option<f64>,
    /// `fresh / baseline` per-call self time (`f64::INFINITY` for new
    /// frames).
    pub ratio: f64,
    /// Fresh call count, for weighting the report.
    pub fresh_calls: f64,
}

/// Reads the `"profile"."frames"` object out of a bench document.
fn frames_of<'a>(doc: &'a Value, label: &str) -> Result<&'a [(String, Value)], String> {
    match doc.get("profile").and_then(|p| p.get("frames")) {
        Some(Value::Object(frames)) => Ok(frames),
        _ => Err(format!(
            "{label}: no embedded \"profile\".\"frames\" section"
        )),
    }
}

fn frame_stat(frame: &Value, key: &str) -> f64 {
    frame.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

/// Diffs the embedded profile summaries of two bench documents and
/// returns the top `k` frames by per-call self-time growth, worst
/// first. Frames absent from the baseline rank highest (infinite
/// ratio); frames that got *faster* are excluded. Ties break by path,
/// so the ranking is deterministic.
///
/// # Errors
///
/// Errors when either document lacks a `"profile"` section.
pub fn attribute_profiles(
    fresh: &Value,
    baseline: &Value,
    k: usize,
) -> Result<Vec<FrameRegression>, String> {
    let fresh_frames = frames_of(fresh, "fresh")?;
    let base_frames = frames_of(baseline, "baseline")?;
    let base_lookup = |path: &str| {
        base_frames
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, frame)| frame)
    };
    let mut regressions: Vec<FrameRegression> = fresh_frames
        .iter()
        .filter_map(|(path, frame)| {
            let calls = frame_stat(frame, "count");
            if calls <= 0.0 {
                return None;
            }
            let fresh_per_call = frame_stat(frame, "self_nanos") / calls;
            let base = base_lookup(path).and_then(|b| {
                let base_calls = frame_stat(b, "count");
                (base_calls > 0.0).then(|| frame_stat(b, "self_nanos") / base_calls)
            });
            let ratio = match base {
                // A brand-new frame with no self time is noise, not a
                // regression; a new frame *with* self time is the worst
                // kind of regression (nothing to compare against).
                None if fresh_per_call <= 0.0 => return None,
                None => f64::INFINITY,
                Some(b) if b <= 0.0 => f64::INFINITY,
                Some(b) => fresh_per_call / b,
            };
            if ratio <= 1.0 {
                return None;
            }
            Some(FrameRegression {
                path: path.clone(),
                fresh_self_per_call: fresh_per_call,
                base_self_per_call: base,
                ratio,
                fresh_calls: calls,
            })
        })
        .collect();
    regressions.sort_by(|a, b| {
        b.ratio
            .partial_cmp(&a.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    regressions.truncate(k);
    Ok(regressions)
}

/// Renders [`attribute_profiles`] output as the report block
/// `check_bench attribute` prints (and `compare` appends on failure).
pub fn render_attribution(regressions: &[FrameRegression]) -> String {
    if regressions.is_empty() {
        return "attribution: no frame regressed (per-call self time)".to_string();
    }
    let mut out =
        String::from("attribution: top regressed frames (self ns/call, fresh vs baseline)\n");
    for (rank, r) in regressions.iter().enumerate() {
        let base = r
            .base_self_per_call
            .map(|b| format!("{b:.0}"))
            .unwrap_or_else(|| "absent".to_string());
        let ratio = if r.ratio.is_finite() {
            format!("{:.2}x", r.ratio)
        } else {
            "new".to_string()
        };
        out.push_str(&format!(
            "  {}. {}  {} -> {:.0} ns/call ({ratio}, {} calls)\n",
            rank + 1,
            r.path,
            base,
            r.fresh_self_per_call,
            r.fresh_calls
        ));
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mandipass_util::json::parse;

    fn doc(frames: &[(&str, f64, f64)]) -> Value {
        let body = frames
            .iter()
            .map(|(path, count, self_nanos)| {
                format!(
                    "\"{path}\":{{\"count\":{count},\"total_nanos\":{t},\"self_nanos\":{self_nanos},\"p50_nanos\":1,\"p99_nanos\":2}}",
                    t = self_nanos * 2.0
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        parse(&format!(
            "{{\"schema\":\"mandipass.bench.hotpath/v1\",\"profile\":{{\"unit\":\"nanos\",\"frames\":{{{body}}}}}}}"
        ))
        .unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn names_the_injected_hot_frame_first() {
        let baseline = doc(&[
            ("verify.extract.gemm", 100.0, 100_000.0),
            ("verify.extract.im2col", 100.0, 50_000.0),
            ("verify.similarity", 100.0, 10_000.0),
        ]);
        let fresh = doc(&[
            ("verify.extract.gemm", 100.0, 110_000.0),
            ("verify.extract.im2col", 100.0, 400_000.0),
            ("verify.similarity", 100.0, 9_000.0),
        ]);
        let top = attribute_profiles(&fresh, &baseline, 3).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(top[0].path, "verify.extract.im2col");
        assert!((top[0].ratio - 8.0).abs() < 1e-9);
        // gemm grew 1.1x, similarity shrank: only two regressions.
        assert_eq!(top.len(), 2);
        let report = render_attribution(&top);
        assert!(report.contains("1. verify.extract.im2col"), "{report}");
        assert!(report.contains("8.00x"), "{report}");
    }

    #[test]
    fn new_frames_rank_as_infinite_regressions() {
        let baseline = doc(&[("verify", 10.0, 1_000.0)]);
        let fresh = doc(&[
            ("verify", 10.0, 1_500.0),
            ("verify.surprise", 10.0, 2_000.0),
        ]);
        let top = attribute_profiles(&fresh, &baseline, 5).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(top[0].path, "verify.surprise");
        assert!(top[0].ratio.is_infinite());
        assert!(render_attribution(&top).contains("(new,"));
    }

    #[test]
    fn missing_profile_sections_error_with_the_side_named() {
        let with = doc(&[("a", 1.0, 1.0)]);
        let without = parse("{\"schema\":\"x\"}").unwrap_or_else(|e| panic!("{e}"));
        assert!(attribute_profiles(&without, &with, 3)
            .unwrap_err()
            .contains("fresh"));
        assert!(attribute_profiles(&with, &without, 3)
            .unwrap_err()
            .contains("baseline"));
    }

    #[test]
    fn empty_attribution_renders_a_clean_no_regression_line() {
        let base = doc(&[("a", 10.0, 100.0)]);
        let top = attribute_profiles(&base, &base, 3).unwrap_or_else(|e| panic!("{e}"));
        assert!(top.is_empty());
        assert!(render_attribution(&top).contains("no frame regressed"));
    }
}
