//! The trained evaluation stack shared by the experiment binaries.

use mandipass::prelude::*;
use mandipass::preprocess::preprocess;
use mandipass_eval::metrics::{eer, EerPoint};
use mandipass_eval::pairs::ScoreSet;
use mandipass_imu_sim::{Condition, Population, Recorder, UserProfile};

use crate::scale::EvalScale;

/// A trained extractor plus the cohort it was trained around.
///
/// The first `scale.hired()` users are the VSP's hired people; the
/// remaining `scale.held_out` users never appear in training and play the
/// deployed-user role in every experiment.
#[derive(Debug)]
pub struct TrainedStack {
    /// The evaluation scale.
    pub scale: EvalScale,
    /// The full synthetic cohort.
    pub population: Population,
    /// The recorder (IMU model + timings).
    pub recorder: Recorder,
    /// The trained biometric extractor.
    pub extractor: BiometricExtractor,
}

impl TrainedStack {
    /// Builds a stack: generates the cohort and trains the extractor on
    /// the hired users.
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn build(scale: EvalScale) -> Result<Self, MandiPassError> {
        Self::build_with_recorder(scale, Recorder::default())
    }

    /// Builds a stack with a custom recorder (e.g. a different IMU).
    ///
    /// # Errors
    ///
    /// Propagates training failures.
    pub fn build_with_recorder(
        scale: EvalScale,
        recorder: Recorder,
    ) -> Result<Self, MandiPassError> {
        let population = Population::generate(scale.users, scale.seed);
        let trainer = VspTrainer::new(scale.training_config());
        let mut extractor = trainer.train(&population.users()[..scale.hired()], &recorder)?;
        extractor.prepare_inference();
        Ok(TrainedStack {
            scale,
            population,
            recorder,
            extractor,
        })
    }

    /// The held-out (deployed-role) users.
    pub fn held_out_users(&self) -> &[UserProfile] {
        &self.population.users()[self.scale.hired()..]
    }

    /// Extracts `probes` MandiblePrint embeddings for `user` under
    /// `condition`, using session seeds derived from `seed_base`.
    /// Probes that fail preprocessing are skipped.
    pub fn embeddings_for(
        &mut self,
        user: &UserProfile,
        condition: Condition,
        probes: usize,
        seed_base: u64,
    ) -> Vec<Vec<f32>> {
        self.embeddings_for_with_config(
            user,
            condition,
            probes,
            seed_base,
            &PipelineConfig::default(),
        )
    }

    /// Like [`TrainedStack::embeddings_for`] with an explicit pipeline
    /// configuration (used by the axis-ablation experiment).
    pub fn embeddings_for_with_config(
        &mut self,
        user: &UserProfile,
        condition: Condition,
        probes: usize,
        seed_base: u64,
        config: &PipelineConfig,
    ) -> Vec<Vec<f32>> {
        let mut out = Vec::with_capacity(probes);
        for p in 0..probes {
            let rec = self
                .recorder
                .record(user, condition, seed_base ^ ((p as u64) << 32));
            let Ok(array) = preprocess(&rec, config) else {
                mandipass_telemetry::counter!("bench.probes_skipped").inc();
                continue;
            };
            let Ok(grad) = GradientArray::from_signal_array(&array, config.half_n()) else {
                mandipass_telemetry::counter!("bench.probes_skipped").inc();
                continue;
            };
            if let Ok(prints) = self.extractor.extract(&[&grad]) {
                mandipass_telemetry::counter!("bench.probes_ok").inc();
                out.push(prints[0].as_slice().to_vec());
            }
        }
        out
    }

    /// Runs the paper's main evaluation (Fig. 10(b)): embeddings for all
    /// held-out users under [`Condition::Normal`], all-pairs score
    /// populations, and the EER point.
    pub fn main_evaluation(&mut self) -> MainEvaluation {
        self.evaluation_with_config(&PipelineConfig::default())
    }

    /// The main evaluation under an explicit pipeline configuration.
    pub fn evaluation_with_config(&mut self, config: &PipelineConfig) -> MainEvaluation {
        let _span = mandipass_telemetry::span("main_evaluation");
        let probes = self.scale.probes_per_user;
        let users: Vec<UserProfile> = self.held_out_users().to_vec();
        let per_user: Vec<Vec<Vec<f32>>> = users
            .iter()
            .map(|u| {
                self.embeddings_for_with_config(
                    u,
                    Condition::Normal,
                    probes,
                    0x6576_616c ^ (u64::from(u.id) << 40),
                    config,
                )
            })
            .collect();
        let scores = ScoreSet::from_embeddings(&per_user);
        let point = eer(&scores.genuine, &scores.impostor).unwrap_or(EerPoint {
            threshold: 0.5,
            eer: 0.5,
        });
        MainEvaluation {
            per_user,
            scores,
            eer_point: point,
        }
    }
}

/// The outcome of a main evaluation run.
#[derive(Debug, Clone)]
pub struct MainEvaluation {
    /// Held-out users' embeddings (per user, per probe).
    pub per_user: Vec<Vec<Vec<f32>>>,
    /// Genuine/impostor distance populations.
    pub scores: ScoreSet,
    /// The equal-error operating point.
    pub eer_point: EerPoint,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_stack_trains_and_scores() {
        let mut stack = TrainedStack::build(EvalScale::smoke_test()).unwrap();
        assert_eq!(stack.held_out_users().len(), 2);
        let eval = stack.main_evaluation();
        assert!(!eval.scores.genuine.is_empty());
        assert!(!eval.scores.impostor.is_empty());
        // At smoke scale we only require sane separation direction.
        assert!(
            eval.scores.genuine_mean() < eval.scores.impostor_mean(),
            "genuine {} !< impostor {}",
            eval.scores.genuine_mean(),
            eval.scores.impostor_mean()
        );
        assert!(eval.eer_point.eer < 0.5);
    }

    #[test]
    fn embeddings_have_model_dimension() {
        let mut stack = TrainedStack::build(EvalScale::smoke_test()).unwrap();
        let user = stack.held_out_users()[0].clone();
        let embeds = stack.embeddings_for(&user, Condition::Normal, 3, 9);
        assert_eq!(embeds.len(), 3);
        assert!(embeds.iter().all(|e| e.len() == 64));
    }
}
