//! Experiment scales with environment overrides.
//!
//! Paper-scale runs (34 users × ≥ 500 arrays × 10 repeats, 60 s of
//! training audio per hired person) are CPU-hours on a laptop-class
//! machine; the defaults here are reduced but shape-preserving. Override
//! with:
//!
//! * `MANDIPASS_USERS` — cohort size (default 74: 64 hired + 10 held out),
//! * `MANDIPASS_HELD_OUT` — users reserved for scoring (default 10),
//! * `MANDIPASS_PROBES` — probes per held-out user (default 30),
//! * `MANDIPASS_SECONDS` — training seconds per hired person (default 12),
//! * `MANDIPASS_EPOCHS` — training epochs (default 14),
//! * `MANDIPASS_SEED` — master seed (default 2021, the paper's year).

use mandipass::prelude::PipelineConfig;
use mandipass::train::TrainingConfig;

/// The scale of one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalScale {
    /// Total cohort size: hired (training) identities plus held-out
    /// evaluation volunteers (the paper's cohort is 34 volunteers in a
    /// leave-one-out rotation).
    pub users: usize,
    /// How many users are held out of training and used for scoring.
    pub held_out: usize,
    /// Probes recorded per held-out user for scoring.
    pub probes_per_user: usize,
    /// Seconds of training signal per hired person (Fig. 11(b) sweeps
    /// 10–60; the paper lands at 60).
    pub seconds_per_person: f64,
    /// Training epochs.
    pub epochs: usize,
    /// MandiblePrint dimensionality.
    pub embedding_dim: usize,
    /// Convolution channel plan.
    pub channels: [usize; 3],
    /// Master seed.
    pub seed: u64,
}

impl Default for EvalScale {
    fn default() -> Self {
        EvalScale {
            // 64 hired synthetic people (the VSP "can hire a large number
            // of people", §V.C) + 10 evaluation volunteers who never
            // appear in training. The paper instead rotates leave-one-out
            // over its 34 volunteers; a disjoint hired cohort preserves
            // the "extractor never saw the deployed user" property at a
            // fraction of the training cost.
            users: 74,
            held_out: 10,
            probes_per_user: 30,
            seconds_per_person: 12.0,
            epochs: 14,
            embedding_dim: 512,
            channels: [8, 16, 32],
            seed: 2021,
        }
    }
}

impl EvalScale {
    /// The default scale with environment overrides applied.
    pub fn from_env() -> Self {
        let mut scale = EvalScale::default();
        let get = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<f64>().ok());
        if let Some(v) = get("MANDIPASS_USERS") {
            scale.users = v as usize;
        }
        if let Some(v) = get("MANDIPASS_HELD_OUT") {
            scale.held_out = v as usize;
        }
        if let Some(v) = get("MANDIPASS_PROBES") {
            scale.probes_per_user = v as usize;
        }
        if let Some(v) = get("MANDIPASS_SECONDS") {
            scale.seconds_per_person = v;
        }
        if let Some(v) = get("MANDIPASS_EPOCHS") {
            scale.epochs = v as usize;
        }
        if let Some(v) = get("MANDIPASS_SEED") {
            scale.seed = v as u64;
        }
        scale.clamp();
        scale
    }

    /// A very small scale for integration tests.
    pub fn smoke_test() -> Self {
        EvalScale {
            users: 6,
            held_out: 2,
            probes_per_user: 8,
            seconds_per_person: 3.0,
            epochs: 4,
            embedding_dim: 64,
            channels: [4, 8, 8],
            seed: 2021,
        }
    }

    fn clamp(&mut self) {
        self.users = self.users.max(3);
        self.held_out = self.held_out.clamp(1, self.users - 2);
        self.probes_per_user = self.probes_per_user.max(2);
        self.epochs = self.epochs.max(1);
    }

    /// Number of training ("hired") users.
    pub fn hired(&self) -> usize {
        self.users - self.held_out
    }

    /// The training configuration this scale implies.
    pub fn training_config(&self) -> TrainingConfig {
        TrainingConfig {
            seconds_per_person: self.seconds_per_person,
            epochs: self.epochs,
            batch_size: 32,
            learning_rate: 1e-3,
            embedding_dim: self.embedding_dim,
            channels: self.channels,
            pipeline: PipelineConfig::default(),
            seed: self.seed,
            two_branch: true,
        }
    }

    /// One-line description printed by every experiment binary.
    pub fn describe(&self) -> String {
        format!(
            "scale: {} users ({} hired / {} held out), {} probes/user, {:.0} s training audio/person, {} epochs, {}-d print, seed {}",
            self.users,
            self.hired(),
            self.held_out,
            self.probes_per_user,
            self.seconds_per_person,
            self.epochs,
            self.embedding_dim,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_architecture() {
        let s = EvalScale::default();
        assert_eq!(s.embedding_dim, 512);
        assert_eq!(s.channels, [8, 16, 32]);
        assert_eq!(s.held_out, 10);
        assert!(
            s.hired() >= 33,
            "at least the paper's 33 training identities"
        );
    }

    #[test]
    fn clamp_keeps_scale_sane() {
        let mut s = EvalScale {
            users: 2,
            held_out: 5,
            probes_per_user: 0,
            epochs: 0,
            ..EvalScale::default()
        };
        s.clamp();
        assert!(s.users >= 3);
        assert!(s.held_out <= s.users - 2);
        assert!(s.probes_per_user >= 2);
        assert!(s.epochs >= 1);
    }

    #[test]
    fn training_config_mirrors_scale() {
        let s = EvalScale::smoke_test();
        let c = s.training_config();
        assert_eq!(c.epochs, 4);
        assert_eq!(c.embedding_dim, 64);
    }

    #[test]
    fn describe_mentions_key_numbers() {
        let text = EvalScale::default().describe();
        assert!(text.contains("74 users"));
        assert!(text.contains("512-d"));
    }
}
