//! Fig. 14: voicing tone robustness.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let (_, threshold) = experiments::fig10b_eer(&mut stack);
    let table = experiments::fig14_tone(&mut stack, threshold);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
