//! Sensor-fault robustness: every injector at several intensities,
//! end to end through the retry/degraded verification policy.
//!
//! Prints the paper-vs-measured table and one JSON document with FAR,
//! FRR and typed-reject rate per (profile, intensity) cell.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let (_, threshold) = experiments::fig10b_eer(&mut stack);
    let (table, json) =
        experiments::exp_robustness(&mut stack, threshold, &[0.0, 0.25, 0.5, 0.75, 1.0])
            .expect("robustness sweep failed");
    println!("{}", table.to_console());
    println!("JSON: {}", json.to_json());
}
