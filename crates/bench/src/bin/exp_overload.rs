//! Overload robustness benchmark: trains a deployment, measures its
//! closed-loop capacity, then drives open-loop offered load past 2x
//! capacity against the bounded-admission server and runs the
//! deterministic circuit-breaker drill twice, writing the
//! schema-versioned `BENCH_overload.json` the CI overload gate
//! compares against the committed baseline.
//!
//! Knobs: `MANDIPASS_OVERLOAD_SCALE=smoke` pins the deterministic CI
//! scale (otherwise the usual `MANDIPASS_*` scale variables apply);
//! `MANDIPASS_OVERLOAD_REQUESTS` sizes each sweep point and
//! `MANDIPASS_OVERLOAD_WORKERS` the server; `MANDIPASS_BENCH_OUT`
//! overrides the output path.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = match std::env::var("MANDIPASS_OVERLOAD_SCALE").as_deref() {
        Ok("smoke") => EvalScale::smoke_test(),
        _ => EvalScale::from_env(),
    };
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let (_, threshold) = experiments::fig10b_eer(&mut stack);
    let (table, json) =
        experiments::exp_overload(&mut stack, threshold).expect("overload experiment failed");
    println!("{}", table.to_console());

    let out = std::env::var("MANDIPASS_BENCH_OUT").unwrap_or_else(|_| "BENCH_overload.json".into());
    std::fs::write(&out, json.to_json() + "\n").expect("write BENCH_overload.json");
    println!("BENCH: {out}");
}
