//! Fig. 7: statistical features are insufficient.

use mandipass_bench::{experiments, EvalScale};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let table = experiments::fig07_sfs(&scale);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
