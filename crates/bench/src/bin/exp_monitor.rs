//! Live-monitoring drift detection: the detector must stay Healthy on
//! clean genuine traffic and flag Degrading/Alarm under a combined
//! gain-drift + dropout fault ramp, retaining the failed verifications
//! in the flight recorder.
//!
//! Prints the paper-vs-measured table and one JSON document carrying
//! both phases' health reports plus the final monitor snapshot (the
//! same schema the `/health` + `/metrics` endpoints expose).

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let (_, threshold) = experiments::fig10b_eer(&mut stack);
    let (table, json) =
        experiments::exp_monitor(&mut stack, threshold).expect("monitor experiment failed");
    println!("{}", table.to_console());
    println!("JSON: {}", json.to_json());
}
