//! §VII.E: time and storage overhead.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let table = experiments::exp_overhead(&mut stack);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
    // The live-exposition view of the same run: bench output and the
    // /metrics endpoints share one schema via Monitor::snapshot.
    println!(
        "MONITOR SNAPSHOT: {}",
        mandipass_telemetry::monitor().snapshot().to_json()
    );
}
