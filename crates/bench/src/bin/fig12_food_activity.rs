//! Fig. 12: food and activity robustness.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let (_, threshold) = experiments::fig10b_eer(&mut stack);
    let table = experiments::fig12_food_activity(&mut stack, threshold);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
