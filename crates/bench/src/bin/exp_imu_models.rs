//! §VII.A: device scalability across the two IMU parts.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let table = experiments::exp_imu_models(&mut stack);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
