//! Fig. 10(b): the FAR/FRR sweep and the EER.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let (table, threshold) = experiments::fig10b_eer(&mut stack);
    println!("{}", table.to_console());
    println!("operating threshold: {threshold:.4}");
    println!("JSON: {}", table.to_json());
}
