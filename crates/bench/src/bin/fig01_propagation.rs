//! Fig. 1: σ(az) along the throat → mandible → ear path.

use mandipass_bench::{experiments, EvalScale};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let table = experiments::fig01_propagation(&scale);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
