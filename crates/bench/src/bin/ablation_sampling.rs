//! Ablation: the sensor's internal DLPF on versus off.
//!
//! With the DLPF off, vocal-band content above the cutoff aliases
//! unfiltered into the output; the aliased pattern is hypersensitive to
//! the sampling-clock phase, inflating intra-user variance. This
//! experiment quantifies that effect at raw-feature level (cosine EER on
//! gradient arrays, no training needed) and motivates the DLPF term in
//! the sensor model.

use mandipass::gradient_array::GradientArray;
use mandipass::prelude::PipelineConfig;
use mandipass::preprocess::preprocess;
use mandipass_bench::EvalScale;
use mandipass_eval::metrics::eer;
use mandipass_eval::pairs::ScoreSet;
use mandipass_eval::{ExperimentRecord, ReportTable};
use mandipass_imu_sim::{Condition, ImuModel, Population, Recorder};

fn raw_eer(dlpf: Option<f64>, users: usize, probes: usize, seed: u64) -> Option<f64> {
    let pop = Population::generate(users, seed);
    let mut imu = ImuModel::mpu9250();
    imu.dlpf_cutoff_hz = dlpf;
    let recorder = Recorder {
        imu,
        ..Recorder::default()
    };
    let config = PipelineConfig::default();
    let per_user: Vec<Vec<Vec<f32>>> = pop
        .users()
        .iter()
        .map(|u| {
            (0..probes as u64)
                .filter_map(|p| {
                    let rec = recorder.record(u, Condition::Normal, 0xab1e ^ (p << 16));
                    let arr = preprocess(&rec, &config).ok()?;
                    GradientArray::from_signal_array(&arr, config.half_n())
                        .ok()
                        .map(|g| g.to_f32())
                })
                .collect()
        })
        .collect();
    let scores = ScoreSet::from_embeddings(&per_user);
    eer(&scores.genuine, &scores.impostor).map(|p| p.eer)
}

fn main() {
    let scale = EvalScale::from_env();
    let users = scale.users.min(12);
    let probes = scale.probes_per_user.min(16);
    println!("raw-feature ablation over {users} users x {probes} probes");

    let with_dlpf = raw_eer(Some(170.0), users, probes, scale.seed).expect("scores");
    let without = raw_eer(None, users, probes, scale.seed).expect("scores");

    let mut table = ReportTable::new("Ablation: sensor DLPF on vs off (raw-feature EER)");
    table.push(ExperimentRecord::new(
        "ablation",
        "raw cosine EER with DLPF (170 Hz)",
        "the deployed sensor configuration",
        format!("{:.2} %", with_dlpf * 100.0),
        true,
    ));
    table.push(
        ExperimentRecord::new(
            "ablation",
            "raw cosine EER without DLPF",
            "raw aliasing path",
            format!("{:.2} %", without * 100.0),
            true,
        )
        .with_note(format!(
            "DLPF {} raw separability by {:.2} pp",
            if with_dlpf <= without {
                "improves"
            } else {
                "worsens"
            },
            (without - with_dlpf).abs() * 100.0
        )),
    );
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
