//! CI gate for serve benchmark artifacts.
//!
//! ```text
//! check_bench schema  <file>                                    # validate shape
//! check_bench compare <fresh> <baseline> [max_p99] [min_qps]    # perf gate
//! ```
//!
//! `schema` validates one `BENCH_serve.json` against the
//! `mandipass.bench.serve/v1` shape. `compare` additionally gates a
//! fresh document against a committed baseline: p99 latency may grow to
//! at most `max_p99`x (default 2.0) and QPS may shrink to no less than
//! `min_qps`x (default 0.5) of the baseline, per transport section.
//! Exit status 0 = pass, 1 = fail, 2 = usage error.

use std::process::ExitCode;

use mandipass_bench::load::{compare_bench_serve, validate_bench_serve};
use mandipass_util::json::{parse, Value};

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn ratio_arg(args: &[String], idx: usize, default: f64) -> Result<f64, String> {
    match args.get(idx) {
        None => Ok(default),
        Some(raw) => raw
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("ratio argument \"{raw}\" is not a positive number")),
    }
}

fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("schema") => {
            let path = args.get(1).ok_or("usage: check_bench schema <file>")?;
            validate_bench_serve(&load(path)?)?;
            Ok(format!("{path}: schema ok"))
        }
        Some("compare") => {
            let fresh_path = args
                .get(1)
                .ok_or("usage: check_bench compare <fresh> <baseline> [max_p99] [min_qps]")?;
            let base_path = args
                .get(2)
                .ok_or("usage: check_bench compare <fresh> <baseline> [max_p99] [min_qps]")?;
            let fresh = load(fresh_path)?;
            let baseline = load(base_path)?;
            validate_bench_serve(&fresh).map_err(|e| format!("{fresh_path}: {e}"))?;
            validate_bench_serve(&baseline).map_err(|e| format!("{base_path}: {e}"))?;
            let max_p99 = ratio_arg(args, 3, 2.0)?;
            let min_qps = ratio_arg(args, 4, 0.5)?;
            compare_bench_serve(&fresh, &baseline, max_p99, min_qps)?;
            Ok(format!(
                "{fresh_path} within envelope of {base_path} (p99 <= {max_p99}x, qps >= {min_qps}x)"
            ))
        }
        _ => Err(
            "usage: check_bench schema <file> | compare <fresh> <baseline> [max_p99] [min_qps]"
                .to_string(),
        ),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("check_bench: {message}");
            if args.is_empty() {
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
