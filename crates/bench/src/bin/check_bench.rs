//! CI gate for serve benchmark artifacts.
//!
//! ```text
//! check_bench schema    <file>                                    # validate shape
//! check_bench compare   <fresh> <baseline> [max_p99] [min_qps]    # perf gate
//! check_bench attribute <current> <baseline> [top_k]              # name regressed frames
//! ```
//!
//! `schema` and `compare` dispatch on the document's own `schema` tag:
//! `mandipass.bench.serve/v1` documents go through the serve validator
//! and comparator, `mandipass.bench.overload/v1` documents through the
//! overload ones (where the two ratio arguments bound saturated p99
//! growth and goodput shrinkage instead of per-transport p99/QPS),
//! `mandipass.bench.hotpath/v1` documents through the hot-path ones
//! (first ratio = same-run fast-vs-naive speedup floor, default 3.0;
//! second = minimum fraction of the baseline's speedup, default 0.5 —
//! both are ratios of same-run numbers, so machine-independent), and
//! `mandipass.bench.trace/v1` documents through the trace ones (verify
//! and end-to-end attribution p99 vs baseline, request coverage).
//! `compare` gates a fresh document against a committed baseline: p99
//! latency may grow to at most `max_p99`x (default 2.0) and throughput
//! may shrink to no less than `min_qps`x (default 0.5) of the baseline.
//! When a compare gate fails and both documents embed a `"profile"`
//! summary, the failure report appends the top regressed frames.
//!
//! `attribute` diffs the embedded profile summaries directly (any
//! schema) and names the `top_k` (default 5) frames whose per-call
//! self time grew the most — the "which stage regressed" answer a
//! p99 ratio alone cannot give. Exit status 0 = pass, 1 = fail,
//! 2 = usage error.

use std::process::ExitCode;

use mandipass_bench::load::{
    compare_bench_hotpath, compare_bench_overload, compare_bench_serve, compare_bench_trace,
    validate_bench_hotpath, validate_bench_overload, validate_bench_serve, validate_bench_trace,
    BENCH_HOTPATH_SCHEMA, BENCH_OVERLOAD_SCHEMA, BENCH_SERVE_SCHEMA, BENCH_TRACE_SCHEMA,
};
use mandipass_bench::profile::{attribute_profiles, render_attribution};
use mandipass_util::json::{parse, Value};

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn schema_of(doc: &Value, path: &str) -> Result<String, String> {
    doc.get("schema")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{path}: missing \"schema\" tag"))
}

fn validate(doc: &Value, path: &str) -> Result<(), String> {
    match schema_of(doc, path)?.as_str() {
        BENCH_SERVE_SCHEMA => validate_bench_serve(doc).map_err(|e| format!("{path}: {e}")),
        BENCH_OVERLOAD_SCHEMA => validate_bench_overload(doc).map_err(|e| format!("{path}: {e}")),
        BENCH_HOTPATH_SCHEMA => validate_bench_hotpath(doc).map_err(|e| format!("{path}: {e}")),
        BENCH_TRACE_SCHEMA => validate_bench_trace(doc).map_err(|e| format!("{path}: {e}")),
        other => Err(format!("{path}: unknown bench schema \"{other}\"")),
    }
}

/// On a failed compare, appends frame-level attribution when both
/// documents embed a profile summary; otherwise returns the failure
/// unchanged.
fn with_attribution(failure: String, fresh: &Value, baseline: &Value) -> String {
    match attribute_profiles(fresh, baseline, 5) {
        Ok(regressions) => format!("{failure}\n{}", render_attribution(&regressions)),
        Err(_) => failure,
    }
}

fn ratio_arg(args: &[String], idx: usize, default: f64) -> Result<f64, String> {
    match args.get(idx) {
        None => Ok(default),
        Some(raw) => raw
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| format!("ratio argument \"{raw}\" is not a positive number")),
    }
}

fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("schema") => {
            let path = args.get(1).ok_or("usage: check_bench schema <file>")?;
            let doc = load(path)?;
            validate(&doc, path)?;
            Ok(format!("{path}: schema ok ({})", schema_of(&doc, path)?))
        }
        Some("compare") => {
            let fresh_path = args
                .get(1)
                .ok_or("usage: check_bench compare <fresh> <baseline> [max_p99] [min_qps]")?;
            let base_path = args
                .get(2)
                .ok_or("usage: check_bench compare <fresh> <baseline> [max_p99] [min_qps]")?;
            let fresh = load(fresh_path)?;
            let baseline = load(base_path)?;
            validate(&fresh, fresh_path)?;
            validate(&baseline, base_path)?;
            let (fresh_schema, base_schema) = (
                schema_of(&fresh, fresh_path)?,
                schema_of(&baseline, base_path)?,
            );
            if fresh_schema != base_schema {
                return Err(format!(
                    "schema mismatch: {fresh_path} is {fresh_schema}, {base_path} is {base_schema}"
                ));
            }
            if fresh_schema == BENCH_HOTPATH_SCHEMA {
                let min_speedup = ratio_arg(args, 3, 3.0)?;
                let min_vs_baseline = ratio_arg(args, 4, 0.5)?;
                compare_bench_hotpath(&fresh, &baseline, min_speedup, min_vs_baseline)
                    .map_err(|e| with_attribution(e, &fresh, &baseline))?;
                return Ok(format!(
                    "{fresh_path} within envelope of {base_path} (speedup >= {min_speedup}x, >= {min_vs_baseline}x baseline, zero-alloc, parity)"
                ));
            }
            let max_p99 = ratio_arg(args, 3, 2.0)?;
            let min_qps = ratio_arg(args, 4, 0.5)?;
            match fresh_schema.as_str() {
                BENCH_SERVE_SCHEMA => compare_bench_serve(&fresh, &baseline, max_p99, min_qps)
                    .map_err(|e| with_attribution(e, &fresh, &baseline))?,
                BENCH_TRACE_SCHEMA => compare_bench_trace(&fresh, &baseline, max_p99, min_qps)?,
                _ => compare_bench_overload(&fresh, &baseline, max_p99, min_qps)?,
            }
            Ok(format!(
                "{fresh_path} within envelope of {base_path} (p99 <= {max_p99}x, throughput >= {min_qps}x)"
            ))
        }
        Some("attribute") => {
            let usage = "usage: check_bench attribute <current> <baseline> [top_k]";
            let current_path = args.get(1).ok_or(usage)?;
            let base_path = args.get(2).ok_or(usage)?;
            let top_k = match args.get(3) {
                None => 5,
                Some(raw) => raw
                    .parse::<usize>()
                    .ok()
                    .filter(|k| *k > 0)
                    .ok_or_else(|| format!("top_k \"{raw}\" is not a positive integer"))?,
            };
            let current = load(current_path)?;
            let baseline = load(base_path)?;
            let regressions = attribute_profiles(&current, &baseline, top_k)?;
            Ok(render_attribution(&regressions))
        }
        _ => Err(
            "usage: check_bench schema <file> | compare <fresh> <baseline> [max_p99] [min_qps] \
             | attribute <current> <baseline> [top_k]"
                .to_string(),
        ),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(message) => {
            println!("{message}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("check_bench: {message}");
            if args.is_empty() {
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
