//! Ablation: the §V gradient/sign-split representation versus the raw
//! normalised signal array as verifier input, at raw-feature level.
//!
//! The paper computes gradients and splits them by direction before the
//! CNN; this experiment measures how much the representation itself
//! contributes to separability, before any learning.

use mandipass::gradient_array::GradientArray;
use mandipass::prelude::PipelineConfig;
use mandipass::preprocess::preprocess;
use mandipass_bench::EvalScale;
use mandipass_eval::metrics::eer;
use mandipass_eval::pairs::ScoreSet;
use mandipass_eval::{ExperimentRecord, ReportTable};
use mandipass_imu_sim::{Condition, Population, Recorder};

fn main() {
    let scale = EvalScale::from_env();
    let users = scale.users.min(12);
    let probes = scale.probes_per_user.min(16);
    println!("raw-feature ablation over {users} users x {probes} probes");

    let pop = Population::generate(users, scale.seed);
    let recorder = Recorder::default();
    let config = PipelineConfig::default();

    let mut grad_sets: Vec<Vec<Vec<f32>>> = Vec::new();
    let mut signal_sets: Vec<Vec<Vec<f32>>> = Vec::new();
    for user in pop.users() {
        let mut grads = Vec::new();
        let mut signals = Vec::new();
        for p in 0..probes as u64 {
            let rec = recorder.record(user, Condition::Normal, 0x9ad ^ (p << 16));
            let Ok(arr) = preprocess(&rec, &config) else {
                continue;
            };
            let Ok(grad) = GradientArray::from_signal_array(&arr, config.half_n()) else {
                continue;
            };
            grads.push(grad.to_f32());
            signals.push(arr.to_flat().iter().map(|&v| v as f32).collect());
        }
        grad_sets.push(grads);
        signal_sets.push(signals);
    }

    let grad_scores = ScoreSet::from_embeddings(&grad_sets);
    let sig_scores = ScoreSet::from_embeddings(&signal_sets);
    let grad_eer = eer(&grad_scores.genuine, &grad_scores.impostor)
        .expect("scores")
        .eer;
    let sig_eer = eer(&sig_scores.genuine, &sig_scores.impostor)
        .expect("scores")
        .eer;

    let mut table =
        ReportTable::new("Ablation: gradient/sign-split representation vs raw signal array");
    table.push(ExperimentRecord::new(
        "ablation",
        "raw cosine EER on gradient arrays (paper input)",
        "the paper's representation",
        format!("{:.2} %", grad_eer * 100.0),
        true,
    ));
    table.push(
        ExperimentRecord::new(
            "ablation",
            "raw cosine EER on signal arrays",
            "pre-gradient representation",
            format!("{:.2} %", sig_eer * 100.0),
            true,
        )
        .with_note(format!(
            "gradient step {} raw separability by {:.2} pp",
            if grad_eer <= sig_eer {
                "improves"
            } else {
                "worsens"
            },
            (sig_eer - grad_eer).abs() * 100.0
        )),
    );
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
