//! Fig. 6: MAD outlier detection and repair.

use mandipass_bench::{experiments, EvalScale};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let table = experiments::fig06_outliers(&scale);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
