//! Fig. 11(c): effect of MandiblePrint length (multiple trainings).

use mandipass_bench::{experiments, EvalScale};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let dims = [32, 128, 512];
    let table = experiments::fig11c_dim(&scale, &dims);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
