//! Regenerates every figure and table in one process, sharing a single
//! trained stack where the experiment design allows it, and renders the
//! combined paper-vs-measured report (the source of `EXPERIMENTS.md`).
//!
//! Pass `--markdown` to print GitHub-flavoured markdown instead of the
//! console rendering, or `--telemetry-report` to train the stack and
//! dump the per-stage latency breakdown JSON instead of the tables.
//!
//! Progress narration goes through the telemetry sink (text on stderr
//! by default here; `MANDIPASS_TELEMETRY=off|json` overrides).

use mandipass_bench::{experiments, EvalScale, TrainedStack};
use mandipass_eval::ReportTable;
use mandipass_telemetry as telemetry;

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    let report_only = std::env::args().any(|a| a == "--telemetry-report");
    telemetry::set_default_mode(telemetry::Mode::Text);
    // Profile the whole run unless the environment chose explicitly —
    // the closing PROFILE SUMMARY block reads the resulting frame table.
    if std::env::var(telemetry::PROFILE_ENV).is_err() {
        telemetry::profile::set_enabled(true);
    }
    let scale = EvalScale::from_env();
    telemetry::event(&scale.describe());

    if report_only {
        telemetry::event("training the telemetry-report stack…");
        let mut stack = TrainedStack::build(scale).expect("VSP training failed");
        println!("{}", experiments::telemetry_report(&mut stack));
        return;
    }

    // Stackless preprocessing/feasibility artifacts.
    let mut tables: Vec<ReportTable> = vec![
        experiments::fig01_propagation(&scale),
        experiments::fig05_detection(&scale),
        experiments::fig06_outliers(&scale),
        experiments::fig07_sfs(&scale),
    ];

    // One shared trained stack for the single-training artifacts. The
    // close of the `train_stack` span reports how long training took.
    telemetry::event("training the shared extractor stack…");
    let mut stack = {
        let _span = telemetry::span("train_stack");
        TrainedStack::build(scale.clone()).expect("VSP training failed")
    };

    let (fig10b, threshold) = experiments::fig10b_eer(&mut stack);
    tables.push(experiments::fig10a_classifiers(&mut stack));
    tables.push(fig10b);
    tables.push(experiments::fig10c_gender(&mut stack, threshold));
    tables.push(experiments::fig11a_axes(&mut stack));
    tables.push(experiments::fig12_food_activity(&mut stack, threshold));
    tables.push(experiments::fig13_orientation(&mut stack, threshold));
    tables.push(experiments::fig14_tone(&mut stack, threshold));
    tables.push(experiments::exp_imu_models(&mut stack));
    tables.push(experiments::exp_ear_side(&mut stack, threshold));
    tables.push(experiments::exp_longterm(&mut stack, threshold));
    tables.push(experiments::exp_security(&mut stack, threshold));
    tables.push(experiments::exp_overhead(&mut stack));
    // Hot path: naive oracle vs the zero-alloc im2col+GEMM path, plus
    // the hot-path perf artifact the CI hotpath-smoke job gates on.
    telemetry::event("running the hot-path inference experiment…");
    let (hotpath_table, hotpath_json) =
        experiments::exp_hotpath(&mut stack).expect("hot-path experiment failed");
    tables.push(hotpath_table);
    let hotpath_out =
        std::env::var("MANDIPASS_HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    std::fs::write(&hotpath_out, hotpath_json.to_json() + "\n").expect("write BENCH_hotpath.json");
    tables.push(experiments::table1_comparison(&mut stack, threshold));
    telemetry::event("running the fault-injection robustness sweep…");
    let (robustness, _json) =
        experiments::exp_robustness(&mut stack, threshold, &[0.0, 0.25, 0.5, 0.75, 1.0])
            .expect("robustness sweep failed");
    tables.push(robustness);

    // Serving layer: closed-loop load through the verify server, plus
    // the perf-baseline artifact the CI smoke job gates on.
    telemetry::event("running the serving-layer load experiment…");
    let (serve_table, serve_json) =
        experiments::exp_serve(&mut stack, threshold).expect("serve experiment failed");
    tables.push(serve_table);
    let bench_out =
        std::env::var("MANDIPASS_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&bench_out, serve_json.to_json() + "\n").expect("write BENCH_serve.json");

    // Overload robustness: open-loop saturation against the bounded
    // admission queue plus the deterministic breaker drill, written as
    // the overload perf artifact the CI overload-smoke job gates on.
    telemetry::event("running the overload robustness experiment…");
    let (overload_table, overload_json) =
        experiments::exp_overload(&mut stack, threshold).expect("overload experiment failed");
    tables.push(overload_table);
    let overload_out =
        std::env::var("MANDIPASS_OVERLOAD_OUT").unwrap_or_else(|_| "BENCH_overload.json".into());
    std::fs::write(&overload_out, overload_json.to_json() + "\n")
        .expect("write BENCH_overload.json");

    // Request tracing: traced TCP load with per-stage latency
    // attribution, written next to the serve perf artifact.
    telemetry::event("running the request-tracing experiment…");
    let (trace_table, trace_json) =
        experiments::exp_trace(&mut stack, threshold).expect("trace experiment failed");
    tables.push(trace_table);
    let trace_out =
        std::env::var("MANDIPASS_TRACE_OUT").unwrap_or_else(|_| "BENCH_trace.json".into());
    std::fs::write(&trace_out, trace_json.to_json() + "\n").expect("write BENCH_trace.json");

    // Multi-training sweeps last (each trains its own extractors); run
    // them at a cheaper sub-scale — only the trend is asserted.
    telemetry::event("running the training-sweep artifacts (multiple trainings)…");
    let sweep = EvalScale {
        users: scale.users.min(40),
        held_out: scale.held_out.min(6),
        probes_per_user: scale.probes_per_user.min(20),
        epochs: scale.epochs.min(10),
        embedding_dim: 256,
        ..scale.clone()
    };
    tables.push(experiments::fig11b_trainlen(&sweep, &[3.0, 6.0, 12.0]));
    tables.push(experiments::fig11c_dim(&sweep, &[32, 128, 512]));

    let mut all_hold = true;
    for table in &tables {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{}", table.to_console());
        }
        all_hold &= table.all_shapes_hold();
    }
    println!(
        "overall: {}",
        if all_hold {
            "every artifact's shape holds"
        } else {
            "SHAPE MISMATCHES PRESENT"
        }
    );
    println!("BENCH: {bench_out}");
    println!("BENCH: {trace_out}");
    println!("BENCH: {hotpath_out}");
    // The live-exposition view of the whole run: bench output and the
    // /metrics endpoints share one schema via Monitor::snapshot.
    println!(
        "MONITOR SNAPSHOT: {}",
        telemetry::monitor().snapshot().to_json()
    );
    // Where the run spent its time, from the span-tree profiler. The
    // serve/hotpath experiments reset the frame table around their own
    // embedded profile sections, so this covers the tail of the run
    // (serve burst onward) — enough to name the hot frames.
    let profile = telemetry::profile::snapshot();
    if profile.is_empty() {
        println!("PROFILE SUMMARY: empty (set MANDIPASS_PROFILE=1 to enable the span profiler)");
    } else {
        let unit = if telemetry::clock::is_deterministic() {
            "logical ticks"
        } else {
            "ns"
        };
        println!("PROFILE SUMMARY: top frames by self time ({unit})");
        for (rank, (path, stats)) in profile.top_self(10).iter().enumerate() {
            println!(
                "  {:>2}. {path}  self {} total {} calls {} p99 {}",
                rank + 1,
                stats.self_nanos,
                stats.total_nanos,
                stats.count,
                stats.quantile(0.99),
            );
        }
    }
}
