//! §VII.G: the four attack models.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let (_, threshold) = experiments::fig10b_eer(&mut stack);
    let table = experiments::exp_security(&mut stack, threshold);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
