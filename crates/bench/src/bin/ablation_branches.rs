//! Ablation: the paper's two-branch CNN versus a single-branch CNN of
//! comparable budget fed both direction planes as input channels.
//!
//! The paper motivates direction-split branches from the Eq. 6 asymmetry
//! (`c1 ≠ c2`, `F_P(0) ≠ F_N(0)`); this experiment quantifies what that
//! separation buys at the harness scale.

use mandipass_bench::{EvalScale, TrainedStack};
use mandipass_eval::{ExperimentRecord, ReportTable};
use mandipass_imu_sim::{Population, Recorder};

fn eer_for(two_branch: bool, scale: &EvalScale) -> f64 {
    let mut training = scale.training_config();
    training.two_branch = two_branch;
    let population = Population::generate(scale.users, scale.seed);
    let trainer = mandipass::train::VspTrainer::new(training);
    let recorder = Recorder::default();
    let extractor = trainer
        .train(&population.users()[..scale.hired()], &recorder)
        .expect("training succeeds");
    let mut stack = TrainedStack {
        scale: scale.clone(),
        population,
        recorder,
        extractor,
    };
    stack.main_evaluation().eer_point.eer
}

fn main() {
    let mut scale = EvalScale::from_env();
    // One training per arm; keep the sweep affordable by default.
    scale.users = scale.users.min(40);
    scale.held_out = scale.held_out.min(6);
    scale.embedding_dim = scale.embedding_dim.min(256);
    scale.epochs = scale.epochs.min(10);
    println!("{}", scale.describe());

    let two = eer_for(true, &scale);
    let one = eer_for(false, &scale);

    let mut table = ReportTable::new("Ablation: two-branch vs single-branch extractor");
    table.push(ExperimentRecord::new(
        "ablation",
        "EER, two-branch (paper architecture)",
        "the paper's design",
        format!("{:.2} %", two * 100.0),
        true,
    ));
    table.push(
        ExperimentRecord::new(
            "ablation",
            "EER, single-branch comparator",
            "not evaluated in the paper",
            format!("{:.2} %", one * 100.0),
            true,
        )
        .with_note(format!(
            "two-branch {} by {:.2} pp",
            if two <= one { "wins" } else { "loses" },
            (one - two).abs() * 100.0
        )),
    );
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
