//! Fig. 11(a): effect of the number of involved axes.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let table = experiments::fig11a_axes(&mut stack);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
