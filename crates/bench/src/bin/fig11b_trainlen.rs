//! Fig. 11(b): effect of training-set length (multiple trainings).

use mandipass_bench::{experiments, EvalScale};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let lengths = [3.0, 6.0, 12.0];
    let table = experiments::fig11b_trainlen(&scale, &lengths);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
