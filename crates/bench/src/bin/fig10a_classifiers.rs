//! Fig. 10(a): classifier comparison on gradient arrays.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let table = experiments::fig10a_classifiers(&mut stack);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
