//! Fig. 5: vibration detection and per-axis baselines.

use mandipass_bench::{experiments, EvalScale};

fn main() {
    let scale = EvalScale::from_env();
    println!("{}", scale.describe());
    let table = experiments::fig05_detection(&scale);
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
