//! Hot-path benchmark: trains an extractor, then measures the per-verify
//! forward latency of the naive tensor-per-layer oracle against the
//! zero-alloc im2col+GEMM fast path (plus the fused conv+BN variant and
//! the batched [N,C,H,W] forward), all in one binary in one run, and
//! writes the schema-versioned `BENCH_hotpath.json` the CI perf gate
//! checks against its speedup floor.
//!
//! Knobs: `MANDIPASS_HOTPATH_SCALE=smoke` pins the deterministic CI
//! scale (otherwise the usual `MANDIPASS_*` scale variables apply);
//! `MANDIPASS_HOTPATH_ITERS` / `MANDIPASS_HOTPATH_BATCH` size the
//! timing loops; `MANDIPASS_HOTPATH_OUT` overrides the output path.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = match std::env::var("MANDIPASS_HOTPATH_SCALE").as_deref() {
        Ok("smoke") => EvalScale::smoke_test(),
        _ => EvalScale::from_env(),
    };
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let (table, json) = experiments::exp_hotpath(&mut stack).expect("hot-path experiment failed");
    println!("{}", table.to_console());

    let out =
        std::env::var("MANDIPASS_HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    std::fs::write(&out, json.to_json() + "\n").expect("write BENCH_hotpath.json");
    println!("BENCH: {out}");
}
