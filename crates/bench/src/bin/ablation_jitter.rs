//! Ablation: attribution of intra-user variance to the simulator's
//! session-jitter sources (formalising the tuning diagnostics).
//!
//! Each row enables exactly one jitter source and reports the raw-feature
//! genuine/impostor separation; the "all" row is the deployed simulator.

use mandipass::gradient_array::GradientArray;
use mandipass::prelude::PipelineConfig;
use mandipass::preprocess::preprocess;
use mandipass_bench::EvalScale;
use mandipass_eval::metrics::eer;
use mandipass_eval::pairs::ScoreSet;
use mandipass_eval::{ExperimentRecord, ReportTable};
use mandipass_imu_sim::recorder::SessionJitter;
use mandipass_imu_sim::{Condition, Population, Recorder};

fn measure(jitter: SessionJitter, users: usize, probes: usize, seed: u64) -> (f64, f64, f64) {
    let pop = Population::generate(users, seed);
    let recorder = Recorder {
        jitter,
        ..Recorder::default()
    };
    let config = PipelineConfig::default();
    let per_user: Vec<Vec<Vec<f32>>> = pop
        .users()
        .iter()
        .map(|u| {
            (0..probes as u64)
                .filter_map(|p| {
                    let rec = recorder.record(u, Condition::Normal, 0xabc ^ (p << 16));
                    let arr = preprocess(&rec, &config).ok()?;
                    GradientArray::from_signal_array(&arr, config.half_n())
                        .ok()
                        .map(|g| g.to_f32())
                })
                .collect()
        })
        .collect();
    let scores = ScoreSet::from_embeddings(&per_user);
    let point = eer(&scores.genuine, &scores.impostor).expect("scores");
    (scores.genuine_mean(), scores.impostor_mean(), point.eer)
}

fn main() {
    let scale = EvalScale::from_env();
    let users = scale.users.min(10);
    let probes = scale.probes_per_user.min(16);
    println!("raw-feature jitter attribution over {users} users x {probes} probes");

    let rows: [(&str, SessionJitter); 7] = [
        ("no jitter", SessionJitter::none()),
        (
            "vocal only",
            SessionJitter {
                vocal: 1.0,
                ..SessionJitter::none()
            },
        ),
        (
            "wear only",
            SessionJitter {
                wear: 1.0,
                ..SessionJitter::none()
            },
        ),
        (
            "start offset only",
            SessionJitter {
                start_offset: true,
                ..SessionJitter::none()
            },
        ),
        (
            "sensor noise only",
            SessionJitter {
                sensor_noise: true,
                ..SessionJitter::none()
            },
        ),
        (
            "outliers only",
            SessionJitter {
                outliers: true,
                ..SessionJitter::none()
            },
        ),
        ("all (deployed)", SessionJitter::default()),
    ];

    let mut table = ReportTable::new("Ablation: intra-user variance attribution");
    for (name, jitter) in rows {
        let (genuine, impostor, point_eer) = measure(jitter, users, probes, scale.seed);
        table.push(ExperimentRecord::new(
            "ablation",
            format!("raw EER, {name}"),
            "n/a (simulator diagnostic)",
            format!(
                "{:.1} % (g {genuine:.3} / i {impostor:.3})",
                point_eer * 100.0
            ),
            true,
        ));
    }
    println!("{}", table.to_console());
    println!("JSON: {}", table.to_json());
}
