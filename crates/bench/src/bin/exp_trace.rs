//! End-to-end request-tracing benchmark: trains a deployment, enrols a
//! cohort, drives traced TCP traffic through the verify server, and
//! writes the schema-versioned `BENCH_trace.json` latency-attribution
//! report (per-stage p50/p99 plus the top-k slowest traces) alongside
//! the acceptance checks — stage sums within totals, error/degraded
//! traces always span-bearing, echoed ids resolvable over `GET /traces`,
//! and bit-identical deterministic sampling.
//!
//! Knobs: `MANDIPASS_SERVE_SCALE=smoke` pins the deterministic CI scale;
//! `MANDIPASS_SERVE_CLIENTS` / `MANDIPASS_SERVE_REQUESTS` /
//! `MANDIPASS_SERVE_WORKERS` size the load; `MANDIPASS_TRACE_SAMPLE`
//! sets the store's probabilistic rate; `MANDIPASS_TRACE_HOLD_SECS`
//! keeps the monitor HTTP listener up after the run so an external
//! probe can curl `/metrics` and `/traces`; `MANDIPASS_BENCH_OUT`
//! overrides the output path.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

// Counting allocator so `MANDIPASS_PROFILE_ALLOC=1` runs of this binary
// serve real data on `/profile/alloc` during the hold phase. Attribution
// is off (raw counting only) unless the env knob asks for it.
#[global_allocator]
static ALLOC: mandipass_telemetry::alloc::ProfilingAlloc =
    mandipass_telemetry::alloc::ProfilingAlloc;

fn main() {
    let scale = match std::env::var("MANDIPASS_SERVE_SCALE").as_deref() {
        Ok("smoke") => EvalScale::smoke_test(),
        _ => EvalScale::from_env(),
    };
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let (_, threshold) = experiments::fig10b_eer(&mut stack);
    let (table, json) =
        experiments::exp_trace(&mut stack, threshold).expect("trace experiment failed");
    println!("{}", table.to_console());
    assert!(
        table.all_shapes_hold(),
        "trace acceptance checks failed — see table above"
    );

    let out = std::env::var("MANDIPASS_BENCH_OUT").unwrap_or_else(|_| "BENCH_trace.json".into());
    std::fs::write(&out, json.to_json() + "\n").expect("write BENCH_trace.json");
    println!("BENCH: {out}");
}
