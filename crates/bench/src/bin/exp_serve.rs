//! Serving-layer benchmark: trains a deployment, enrols a cohort, then
//! drives closed-loop mixed traffic (genuine / impostor / fault-injected)
//! against it twice — in-process and through the TCP verify server — and
//! writes the schema-versioned `BENCH_serve.json` the CI perf gate
//! compares against the committed baseline.
//!
//! Knobs: `MANDIPASS_SERVE_SCALE=smoke` pins the deterministic CI scale
//! (otherwise the usual `MANDIPASS_*` scale variables apply);
//! `MANDIPASS_SERVE_CLIENTS` / `MANDIPASS_SERVE_REQUESTS` /
//! `MANDIPASS_SERVE_WORKERS` size the load; `MANDIPASS_BENCH_OUT`
//! overrides the output path.

use mandipass_bench::{experiments, EvalScale, TrainedStack};

fn main() {
    let scale = match std::env::var("MANDIPASS_SERVE_SCALE").as_deref() {
        Ok("smoke") => EvalScale::smoke_test(),
        _ => EvalScale::from_env(),
    };
    println!("{}", scale.describe());
    let mut stack = TrainedStack::build(scale).expect("VSP training failed");
    let (_, threshold) = experiments::fig10b_eer(&mut stack);
    let (table, json) =
        experiments::exp_serve(&mut stack, threshold).expect("serve experiment failed");
    println!("{}", table.to_console());

    let out = std::env::var("MANDIPASS_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out, json.to_json() + "\n").expect("write BENCH_serve.json");
    println!("BENCH: {out}");
}
