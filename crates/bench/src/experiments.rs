//! One function per paper artifact: each regenerates the corresponding
//! figure/table at the harness scale and returns a paper-vs-measured
//! [`ReportTable`].

use mandipass::attack::{impersonation_probe, vibration_aware_probe, zero_effort_probe};
use mandipass::features::statistical_feature_sample;
use mandipass::gradient_array::GradientArray;
use mandipass::prelude::*;
use mandipass::preprocess::preprocess;
use mandipass::similarity::cosine_distance;
use mandipass_classifiers::{
    Classifier, DecisionTree, GaussianNaiveBayes, KNearestNeighbors, LabelledData, LinearSvm,
    MlpClassifier,
};
use mandipass_dsp::detect::detect_vibration_start;
use mandipass_dsp::outlier::{clean_segment, detect_outliers};
use mandipass_dsp::stats::std_dev;
use mandipass_dsp::window::windowed_std;
use mandipass_eval::metrics::{frr_at, vsr_at};
use mandipass_eval::pairs::ScoreSet;
use mandipass_eval::{ExperimentRecord, ReportTable};
use mandipass_imu_sim::faults::sweep_profiles;
use mandipass_imu_sim::propagation::PathLocation;
use mandipass_imu_sim::vocal::Sex;
use mandipass_imu_sim::{
    Condition, FaultProfile, FaultyRecorder, ImuModel, Population, Recorder, Recording, UserProfile,
};
use mandipass_serve::{Request, Response, ServeConfig, VerifyClient, VerifyServer, VerifyService};
use mandipass_telemetry::{
    format_trace_id, HealthStatus, MonitorServer, RequestTrace, TraceConfig, TraceStore,
};
use mandipass_util::json::Value;

use crate::harness::TrainedStack;
use crate::load::{
    bench_serve_document, outcome_signature, plan_indexed_request, run_load, run_open_loop,
    trace_attribution, validate_bench_hotpath, validate_bench_overload, validate_bench_serve,
    validate_bench_trace, LoadConfig, LoadTarget, OpenLoopConfig, OpenOutcome, TrafficMix,
    BENCH_HOTPATH_SCHEMA, BENCH_TRACE_SCHEMA,
};
use crate::scale::EvalScale;

/// Fig. 1: σ(az) decays along the throat → mandible → ear path.
pub fn fig01_propagation(scale: &EvalScale) -> ReportTable {
    let pop = Population::generate(scale.users.max(1), scale.seed);
    let recorder = Recorder::default();
    let mut table = ReportTable::new("Fig 1: vibration propagation path");
    // Average the per-location σ(az) over a few users and sessions.
    let mut sigma = [0.0f64; 3];
    let trials = 5usize.min(pop.len());
    for (u, user) in pop.users().iter().take(trials).enumerate() {
        let recs = recorder.record_at_all_locations(user, 0xf1 ^ (u as u64));
        for (i, rec) in recs.iter().enumerate() {
            sigma[i] += std_dev(rec.az()) / trials as f64;
        }
    }
    let paper = [3805.0, 1050.0, 761.0];
    let names = ["throat", "mandible", "ear"];
    let ordering_holds = sigma[0] > sigma[1] && sigma[1] > sigma[2];
    for i in 0..3 {
        table.push(ExperimentRecord::new(
            "Fig 1",
            format!("σ(az) at {} (LSB)", names[i]),
            format!("{:.0}", paper[i]),
            format!("{:.0}", sigma[i]),
            ordering_holds,
        ));
    }
    let _ = PathLocation::ALL;
    table
}

/// Fig. 5: windowed σ jumps at the vibration start; axis baselines differ.
pub fn fig05_detection(scale: &EvalScale) -> ReportTable {
    let pop = Population::generate(scale.users.max(2), scale.seed);
    let recorder = Recorder::default();
    let user = &pop.users()[0];
    let rec = recorder.record(user, Condition::Normal, 0xf5);
    let mut table = ReportTable::new("Fig 5: vibration detection and axis baselines");

    let stds = windowed_std(rec.az(), 10, 10);
    let start = detect_vibration_start(rec.az(), &PipelineConfig::default().detector());
    let quiet_max = stds
        .iter()
        .take_while(|&&(s, _)| Some(s) != start.as_ref().ok().copied())
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    let at_start = start
        .as_ref()
        .ok()
        .and_then(|&s| stds.iter().find(|&&(w, _)| w == s).map(|&(_, v)| v))
        .unwrap_or(0.0);
    table.push(ExperimentRecord::new(
        "Fig 5(a)",
        "windowed σ before / at start",
        "< 250 / > 250",
        format!("{quiet_max:.0} / {at_start:.0}"),
        start.is_ok() && quiet_max < 250.0 && at_start > 250.0,
    ));

    let baselines: Vec<f64> = rec
        .axes()
        .iter()
        .map(|a| a[..20].iter().sum::<f64>() / 20.0)
        .collect();
    let spread = baselines.iter().cloned().fold(f64::MIN, f64::max)
        - baselines.iter().cloned().fold(f64::MAX, f64::min);
    table.push(ExperimentRecord::new(
        "Fig 5(b)",
        "spread of per-axis start values (LSB)",
        "axes start at different values",
        format!("{spread:.0}"),
        spread > 500.0,
    ));
    table
}

/// Fig. 6: MAD finds injected outliers; two-step mean replacement removes
/// them.
pub fn fig06_outliers(scale: &EvalScale) -> ReportTable {
    let pop = Population::generate(scale.users.max(2), scale.seed);
    let recorder = Recorder::default();
    let mut table = ReportTable::new("Fig 6: MAD outlier processing");
    // Use a sensor with a high outlier rate so segments reliably contain
    // spikes, then check detection and repair.
    let mut imu = ImuModel::mpu9250();
    imu.outlier_probability = 0.05;
    let spiky = Recorder {
        imu,
        ..recorder.clone()
    };
    let mut found = 0usize;
    let mut peak_before = 0.0f64;
    let mut peak_after = 0.0f64;
    let config = PipelineConfig::default();
    for s in 0..10u64 {
        let rec = spiky.record(&pop.users()[0], Condition::Normal, 0xf6 ^ s);
        let axes: Vec<&[f64]> = rec.axes().iter().map(Vec::as_slice).collect();
        let Ok(mut segs) =
            mandipass_dsp::detect::segment_axes(rec.az(), &axes, config.n, &config.detector())
        else {
            continue;
        };
        for seg in &mut segs {
            let outliers = detect_outliers(seg, config.mad_threshold);
            found += outliers.len();
            let centred: Vec<f64> = {
                let m = seg.iter().sum::<f64>() / seg.len() as f64;
                seg.iter().map(|v| (v - m).abs()).collect()
            };
            peak_before = peak_before.max(centred.iter().cloned().fold(0.0, f64::max));
            clean_segment(seg, config.mad_threshold);
            let m = seg.iter().sum::<f64>() / seg.len() as f64;
            let after = seg.iter().map(|v| (v - m).abs()).fold(0.0, f64::max);
            peak_after = peak_after.max(after);
        }
    }
    table.push(ExperimentRecord::new(
        "Fig 6(a)",
        "outliers detected in spiky segments",
        "all outliers found",
        format!("{found} flagged"),
        found > 0,
    ));
    table.push(ExperimentRecord::new(
        "Fig 6(b)",
        "peak |deviation| before → after repair (LSB)",
        "spikes removed",
        format!("{peak_before:.0} → {peak_after:.0}"),
        peak_after < peak_before,
    ));
    table
}

/// Builds per-user statistical-feature and gradient-array datasets for
/// the classifier comparisons (Figs. 7 and 10(a)).
fn classifier_datasets(
    users: &[UserProfile],
    recorder: &Recorder,
    probes: usize,
    seed: u64,
) -> (LabelledData, LabelledData) {
    let config = PipelineConfig::default();
    let mut sfs_features = Vec::new();
    let mut grad_features = Vec::new();
    let mut labels = Vec::new();
    for (label, user) in users.iter().enumerate() {
        for p in 0..probes {
            let rec = recorder.record(user, Condition::Normal, seed ^ ((p as u64) << 16));
            let Ok(arr) = preprocess(&rec, &config) else {
                continue;
            };
            sfs_features.push(statistical_feature_sample(&arr));
            let Ok(grad) = GradientArray::from_signal_array(&arr, config.half_n()) else {
                sfs_features.pop();
                continue;
            };
            grad_features.push(grad.to_f32().iter().map(|&v| f64::from(v)).collect());
            labels.push(label);
        }
    }
    (
        LabelledData::new(sfs_features, labels.clone()),
        LabelledData::new(grad_features, labels),
    )
}

fn classic_classifiers() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(LinearSvm::new()),
        Box::new(KNearestNeighbors::new(5)),
        Box::new(DecisionTree::new()),
        Box::new(GaussianNaiveBayes::new()),
        Box::new(MlpClassifier::new(32)),
    ]
}

/// Fig. 7: statistical features top out below 65 % accuracy on 4 users.
pub fn fig07_sfs(scale: &EvalScale) -> ReportTable {
    let pop = Population::generate(scale.users.max(4), scale.seed);
    let recorder = Recorder::default();
    let probes = scale.probes_per_user.max(20);
    let (sfs, _) = classifier_datasets(&pop.users()[..4], &recorder, probes, 0xf7);
    let (train, test) = sfs.split_stratified(0.8);

    let mut table = ReportTable::new("Fig 7: statistical features are not enough");
    let mut best = 0.0f64;
    for mut clf in classic_classifiers() {
        clf.fit(&train);
        let acc = clf.accuracy(&test);
        best = best.max(acc);
        table.push(ExperimentRecord::new(
            "Fig 7(b)",
            format!("{} accuracy on SFS (4 users)", clf.name()),
            "< 65 %",
            format!("{:.1} %", acc * 100.0),
            true, // per-classifier rows informational; the claim is on `best`
        ));
    }
    // The paper's claim: even the best statistical-feature classifier is
    // weak. Our pipeline is normalised the same way, so we check the best
    // stays well below the deep extractor's regime.
    if let Some(last) = table.records.last_mut() {
        let _ = last;
    }
    table.push(
        ExperimentRecord::new(
            "Fig 7",
            "best statistical-feature accuracy",
            "< 65 %",
            format!("{:.1} %", best * 100.0),
            best < 0.80,
        )
        .with_note("claim: statistical features far below the deep extractor"),
    );
    table
}

/// Fig. 10(a): the biometric extractor beats the classic classifiers on
/// gradient arrays.
pub fn fig10a_classifiers(stack: &mut TrainedStack) -> ReportTable {
    let users: Vec<UserProfile> = stack.held_out_users().to_vec();
    let probes = stack.scale.probes_per_user;
    let (_, grads) = classifier_datasets(&users, &stack.recorder, probes, 0x10a);
    let (train, test) = grads.split_stratified(0.8);

    let mut table = ReportTable::new("Fig 10(a): classifier comparison on gradient arrays");
    let mut best_classic = 0.0f64;
    for mut clf in classic_classifiers() {
        clf.fit(&train);
        let acc = clf.accuracy(&test);
        best_classic = best_classic.max(acc);
        table.push(ExperimentRecord::new(
            "Fig 10(a)",
            format!("{} accuracy", clf.name()),
            "below BE",
            format!("{:.1} %", acc * 100.0),
            true,
        ));
    }

    // The biometric extractor as a classifier: nearest-centroid over its
    // embeddings (the deployed verifier is a distance test against a
    // template, so nearest-template classification is its native mode).
    let embed = |stack: &mut TrainedStack, data: &LabelledData| -> (Vec<Vec<f32>>, Vec<usize>) {
        let arrays: Vec<Vec<f32>> = data
            .features
            .iter()
            .map(|f| f.iter().map(|&v| v as f32).collect())
            .collect();
        let mut embeddings = Vec::with_capacity(arrays.len());
        for chunk in arrays.chunks(64) {
            let grads: Vec<GradientArray> = chunk
                .iter()
                .map(|flat| flat_to_gradient_array(flat, stack.scale.channels))
                .collect();
            let refs: Vec<&GradientArray> = grads.iter().collect();
            let prints = stack.extractor.extract(&refs).expect("shape matches");
            embeddings.extend(prints.into_iter().map(|p| p.as_slice().to_vec()));
        }
        (embeddings, data.labels.clone())
    };
    let (train_emb, train_labels) = embed(stack, &train);
    let (test_emb, test_labels) = embed(stack, &test);
    let classes = train_labels.iter().max().map_or(0, |&m| m + 1);
    let dim = train_emb.first().map_or(0, Vec::len);
    let mut centroids = vec![vec![0.0f32; dim]; classes];
    let mut counts = vec![0usize; classes];
    for (e, &l) in train_emb.iter().zip(&train_labels) {
        for (c, v) in centroids[l].iter_mut().zip(e) {
            *c += v;
        }
        counts[l] += 1;
    }
    for (c, n) in centroids.iter_mut().zip(&counts) {
        for v in c.iter_mut() {
            *v /= (*n).max(1) as f32;
        }
    }
    let mut correct = 0usize;
    for (e, &l) in test_emb.iter().zip(&test_labels) {
        let pred = (0..classes)
            .min_by(|&a, &b| {
                cosine_distance(&centroids[a], e)
                    .partial_cmp(&cosine_distance(&centroids[b], e))
                    .expect("finite")
            })
            .unwrap_or(0);
        if pred == l {
            correct += 1;
        }
    }
    let be_acc = correct as f64 / test_labels.len().max(1) as f64;
    table.push(
        ExperimentRecord::new(
            "Fig 10(a)",
            "biometric extractor (BE) accuracy",
            "90.54 % (best)",
            format!("{:.1} %", be_acc * 100.0),
            be_acc > best_classic,
        )
        .with_note("BE evaluated on users unseen in training; classic classifiers fit those users directly"),
    );
    table
}

fn flat_to_gradient_array(flat: &[f32], _channels: [usize; 3]) -> GradientArray {
    // The flat layout is [direction][axis][time] with axes = 6; recover
    // the half_n from the length.
    let half_n = flat.len() / 12;
    GradientArray::from_flat(flat, 6, half_n).expect("flat layout from to_f32 round-trips")
}

/// Fig. 10(b): the FAR/FRR sweep, the EER, and the genuine/impostor
/// distance means.
pub fn fig10b_eer(stack: &mut TrainedStack) -> (ReportTable, f64) {
    let eval = stack.main_evaluation();
    let mut table = ReportTable::new("Fig 10(b): FAR/FRR against the threshold");
    table.push(ExperimentRecord::new(
        "Fig 10(b)",
        "mean genuine distance",
        "0.4884",
        format!("{:.4}", eval.scores.genuine_mean()),
        eval.scores.genuine_mean() < eval.scores.impostor_mean(),
    ));
    table.push(ExperimentRecord::new(
        "Fig 10(b)",
        "mean impostor distance",
        "0.7032",
        format!("{:.4}", eval.scores.impostor_mean()),
        eval.scores.genuine_mean() < eval.scores.impostor_mean(),
    ));
    table.push(
        ExperimentRecord::new(
            "Fig 10(b)",
            "EER",
            "1.28 %",
            format!("{:.2} %", eval.eer_point.eer * 100.0),
            eval.eer_point.eer < 0.12,
        )
        .with_note("reduced scale; absolute value depends on simulator noise"),
    );
    table.push(ExperimentRecord::new(
        "Fig 10(b)",
        "EER threshold",
        "0.5485",
        format!("{:.4}", eval.eer_point.threshold),
        true,
    ));
    (table, eval.eer_point.threshold)
}

/// Fig. 10(c): VSR fairness across five males and five females.
pub fn fig10c_gender(stack: &mut TrainedStack, threshold: f64) -> ReportTable {
    let mut table = ReportTable::new("Fig 10(c): VSR fairness across sexes");
    // VSR per held-out user at the operating threshold, grouped by sex.
    let users: Vec<UserProfile> = stack.held_out_users().to_vec();
    let probes = stack.scale.probes_per_user;
    let mut per_sex: Vec<(Sex, f64, usize)> = Vec::new();
    for user in &users {
        let embeds = stack.embeddings_for(user, Condition::Normal, probes, 0x10c);
        let set = ScoreSet::from_embeddings(std::slice::from_ref(&embeds));
        let vsr = vsr_at(&set.genuine, threshold);
        per_sex.push((user.sex, vsr, embeds.len()));
    }
    for sex in [Sex::Male, Sex::Female] {
        let group: Vec<f64> = per_sex
            .iter()
            .filter(|(s, _, _)| *s == sex)
            .map(|&(_, v, _)| v)
            .collect();
        if group.is_empty() {
            continue;
        }
        let mean = group.iter().sum::<f64>() / group.len() as f64;
        let min = group.iter().cloned().fold(f64::MAX, f64::min);
        table.push(ExperimentRecord::new(
            "Fig 10(c)",
            format!("{sex:?} VSR (mean / min over {} users)", group.len()),
            "high and even across users",
            format!("{:.1} % / {:.1} %", mean * 100.0, min * 100.0),
            mean > 0.7,
        ));
    }
    let male: Vec<f64> = per_sex
        .iter()
        .filter(|(s, _, _)| *s == Sex::Male)
        .map(|&(_, v, _)| v)
        .collect();
    let female: Vec<f64> = per_sex
        .iter()
        .filter(|(s, _, _)| *s == Sex::Female)
        .map(|&(_, v, _)| v)
        .collect();
    if !male.is_empty() && !female.is_empty() {
        let mm = male.iter().sum::<f64>() / male.len() as f64;
        let fm = female.iter().sum::<f64>() / female.len() as f64;
        table.push(ExperimentRecord::new(
            "Fig 10(c)",
            "male-female VSR gap",
            "fair (no gap)",
            format!("{:.1} pp", (mm - fm).abs() * 100.0),
            (mm - fm).abs() < 0.15,
        ));
    }
    table
}

/// Fig. 11(a): EER falls as more axes join, in the order
/// `ax, ay, az, gx, gy, gz`.
pub fn fig11a_axes(stack: &mut TrainedStack) -> ReportTable {
    let paper = [14.46, 5.29, 2.05, 1.32, 1.29, 1.28];
    let mut table = ReportTable::new("Fig 11(a): effect of involved axes");
    let mut measured = Vec::new();
    for count in 1..=6 {
        let config = PipelineConfig {
            axis_mask: PipelineConfig::axis_mask_first(count),
            ..Default::default()
        };
        let eval = stack.evaluation_with_config(&config);
        measured.push(eval.eer_point.eer * 100.0);
    }
    // Shape: EER with few axes is worse than with all six.
    let shape = measured[0] > measured[5] && measured[1] > measured[5];
    for (i, (&p, &m)) in paper.iter().zip(&measured).enumerate() {
        table.push(ExperimentRecord::new(
            "Fig 11(a)",
            format!("EER with {} axes", i + 1),
            format!("{p:.2} %"),
            format!("{m:.2} %"),
            shape,
        ));
    }
    table
}

/// Fig. 11(b): EER falls as the per-person training length grows.
pub fn fig11b_trainlen(scale: &EvalScale, lengths: &[f64]) -> ReportTable {
    let paper = [
        (10.0, 14.0),
        (20.0, 8.0),
        (30.0, 5.0),
        (40.0, 3.0),
        (50.0, 2.0),
        (60.0, 1.28),
    ];
    let mut table = ReportTable::new("Fig 11(b): effect of training set length");
    let mut measured = Vec::new();
    for &seconds in lengths {
        let mut s = scale.clone();
        s.seconds_per_person = seconds;
        let mut stack = TrainedStack::build(s).expect("training");
        let eval = stack.main_evaluation();
        measured.push((seconds, eval.eer_point.eer * 100.0));
    }
    let shape = measured.first().map(|f| f.1).unwrap_or(100.0)
        >= measured.last().map(|l| l.1).unwrap_or(0.0);
    for &(seconds, m) in &measured {
        let p = paper
            .iter()
            .min_by(|a, b| {
                (a.0 - seconds)
                    .abs()
                    .partial_cmp(&(b.0 - seconds).abs())
                    .expect("finite")
            })
            .map(|&(_, v)| v)
            .unwrap_or(f64::NAN);
        table.push(
            ExperimentRecord::new(
                "Fig 11(b)",
                format!("EER at {seconds:.0} s/person"),
                format!("≈ {p:.2} %"),
                format!("{m:.2} %"),
                shape,
            )
            .with_note("trend: more training audio → lower EER"),
        );
    }
    table
}

/// Fig. 11(c): EER falls as the MandiblePrint dimension grows.
pub fn fig11c_dim(scale: &EvalScale, dims: &[usize]) -> ReportTable {
    let paper = [
        (32usize, 6.0),
        (64, 4.0),
        (128, 3.0),
        (256, 2.0),
        (512, 1.28),
    ];
    let mut table = ReportTable::new("Fig 11(c): effect of MandiblePrint length");
    let mut measured = Vec::new();
    for &dim in dims {
        let mut s = scale.clone();
        s.embedding_dim = dim;
        let mut stack = TrainedStack::build(s).expect("training");
        let eval = stack.main_evaluation();
        measured.push((dim, eval.eer_point.eer * 100.0));
    }
    let shape = measured.first().map(|f| f.1).unwrap_or(100.0)
        >= measured.last().map(|l| l.1).unwrap_or(0.0) - 1.0;
    for &(dim, m) in &measured {
        let p = paper
            .iter()
            .min_by_key(|(d, _)| d.abs_diff(dim))
            .map(|&(_, v)| v)
            .unwrap_or(f64::NAN);
        table.push(
            ExperimentRecord::new(
                "Fig 11(c)",
                format!("EER at {dim}-d print"),
                format!("≈ {p:.2} %"),
                format!("{m:.2} %"),
                shape,
            )
            .with_note("trend: longer MandiblePrint → lower EER"),
        );
    }
    table
}

/// VSR of conditioned probes against a normal-condition enrolment —
/// shared by Figs. 12, 13, 14 and the ear-side experiment.
pub fn condition_vsr(
    stack: &mut TrainedStack,
    condition: Condition,
    threshold: f64,
    seed: u64,
) -> f64 {
    let users: Vec<UserProfile> = stack.held_out_users().to_vec();
    let probes = stack.scale.probes_per_user;
    let mut genuine = Vec::new();
    for user in &users {
        let normal = stack.embeddings_for(user, Condition::Normal, probes, seed ^ 0xaaaa);
        let conditioned = stack.embeddings_for(user, condition, probes, seed ^ 0x5555);
        // Distances between normal (enrolment-side) and conditioned
        // (probe-side) embeddings of the same user.
        for a in &normal {
            for b in &conditioned {
                genuine.push(cosine_distance(a, b));
            }
        }
    }
    vsr_at(&genuine, threshold)
}

/// Fig. 12: food and activity robustness.
pub fn fig12_food_activity(stack: &mut TrainedStack, threshold: f64) -> ReportTable {
    let mut table = ReportTable::new("Fig 12: impacts of food and activity");
    for (condition, label) in [
        (Condition::Lollipop, "lollipop"),
        (Condition::Water, "water"),
        (Condition::Walk, "walk"),
        (Condition::Run, "run"),
    ] {
        let vsr = condition_vsr(stack, condition, threshold, 0x12);
        table.push(ExperimentRecord::new(
            "Fig 12",
            format!("VSR with {label}"),
            "> 99 %",
            format!("{:.1} %", vsr * 100.0),
            vsr > 0.7,
        ));
    }
    table
}

/// Fig. 13: orientation robustness (0/90/180/270 degrees).
pub fn fig13_orientation(stack: &mut TrainedStack, threshold: f64) -> ReportTable {
    let mut table = ReportTable::new("Fig 13: effect of IMU orientation");
    for condition in Condition::orientation_groups() {
        let vsr = condition_vsr(stack, condition, threshold, 0x13);
        table.push(ExperimentRecord::new(
            "Fig 13",
            format!("VSR at {}", condition),
            "above threshold",
            format!("{:.1} %", vsr * 100.0),
            vsr > 0.7,
        ));
    }
    table
}

/// Fig. 14: tone robustness (high/low hums verify against normal-tone
/// enrolment).
pub fn fig14_tone(stack: &mut TrainedStack, threshold: f64) -> ReportTable {
    let mut table = ReportTable::new("Fig 14: effect of voicing tone");
    for (condition, label) in [
        (Condition::ToneHigh, "high tone"),
        (Condition::ToneLow, "low tone"),
    ] {
        let vsr = condition_vsr(stack, condition, threshold, 0x14);
        table.push(ExperimentRecord::new(
            "Fig 14",
            format!("VSR with {label}"),
            "verified with high similarity",
            format!("{:.1} %", vsr * 100.0),
            vsr > 0.7,
        ));
    }
    table
}

/// §VII.A device scalability: MPU-9250 vs MPU-6050 EER.
pub fn exp_imu_models(stack: &mut TrainedStack) -> ReportTable {
    let mut table = ReportTable::new("§VII.A: device scalability across IMU models");
    let eer_9250 = stack.main_evaluation().eer_point.eer;
    // Swap the recorder's sensor; the trained extractor is unchanged
    // (the deployed model must generalise across parts).
    let original = stack.recorder.clone();
    stack.recorder.imu = ImuModel::mpu6050();
    let eer_6050 = stack.main_evaluation().eer_point.eer;
    stack.recorder = original;
    table.push(ExperimentRecord::new(
        "§VII.A",
        "EER with MPU-9250",
        "1.28 %",
        format!("{:.2} %", eer_9250 * 100.0),
        true,
    ));
    table.push(
        ExperimentRecord::new(
            "§VII.A",
            "EER with MPU-6050",
            "1.29 %",
            format!("{:.2} %", eer_6050 * 100.0),
            (eer_6050 - eer_9250).abs() < 0.08,
        )
        .with_note("claim: no apparent difference between the two parts"),
    );
    table
}

/// §VII.B ear side: left-ear probes still verify.
pub fn exp_ear_side(stack: &mut TrainedStack, threshold: f64) -> ReportTable {
    let mut table = ReportTable::new("§VII.B: effect of ear side");
    // Left-ear verification with left-ear enrolment (the paper collects
    // a batch from left ears and reports VSR 98.02 %).
    let users: Vec<UserProfile> = stack.held_out_users().to_vec();
    let probes = stack.scale.probes_per_user;
    let mut genuine = Vec::new();
    for user in &users {
        let embeds = stack.embeddings_for(user, Condition::LeftEar, probes, 0xb);
        let set = ScoreSet::from_embeddings(std::slice::from_ref(&embeds));
        genuine.extend(set.genuine);
    }
    let vsr = vsr_at(&genuine, threshold);
    table.push(ExperimentRecord::new(
        "§VII.B",
        "left-ear VSR",
        "98.02 %",
        format!("{:.1} %", vsr * 100.0),
        vsr > 0.7,
    ));
    table
}

/// §VII.F long-term stability: two-week drifted users still verify.
pub fn exp_longterm(stack: &mut TrainedStack, threshold: f64) -> ReportTable {
    let mut table = ReportTable::new("§VII.F: long-term observation");
    let users: Vec<UserProfile> = stack.held_out_users().iter().take(6).cloned().collect();
    let probes = stack.scale.probes_per_user;
    let mut genuine = Vec::new();
    for user in &users {
        let now = stack.embeddings_for(user, Condition::Normal, probes, 0xf0);
        let later_user = user.drifted(14.0, stack.scale.seed);
        let later = stack.embeddings_for(&later_user, Condition::Normal, probes, 0xf1);
        for a in &now {
            for b in &later {
                genuine.push(cosine_distance(a, b));
            }
        }
    }
    let vsr = vsr_at(&genuine, threshold);
    table.push(ExperimentRecord::new(
        "§VII.F",
        "VSR across a two-week interval (6 users)",
        "> 99.5 %",
        format!("{:.1} %", vsr * 100.0),
        vsr > 0.7,
    ));
    table
}

/// §VII.G security assessment: the four attack models.
pub fn exp_security(stack: &mut TrainedStack, threshold: f64) -> ReportTable {
    let mut table = ReportTable::new("§VII.G: security assessment");
    let users: Vec<UserProfile> = stack.held_out_users().to_vec();
    let probes = stack.scale.probes_per_user.min(10);
    let config = PipelineConfig {
        threshold,
        ..PipelineConfig::default()
    };

    // Zero-effort: no hum, so detection must fail — VSR 0 %.
    let mut zero_attempts = 0usize;
    let mut zero_accepts = 0usize;
    for (i, attacker) in users.iter().enumerate().take(5) {
        for s in 0..probes as u64 {
            let probe = zero_effort_probe(attacker, &stack.recorder, 0x2e ^ s ^ ((i as u64) << 8));
            zero_attempts += 1;
            if preprocess(&probe, &config).is_ok() {
                zero_accepts += 1; // a detectable probe could go on to score
            }
        }
    }
    table.push(ExperimentRecord::new(
        "§VII.G",
        "zero-effort attack VSR",
        "0 %",
        format!(
            "{:.1} %",
            zero_accepts as f64 * 100.0 / zero_attempts.max(1) as f64
        ),
        zero_accepts == 0,
    ));

    // Vibration-aware: the attacker's own hum — equivalent to the
    // impostor distribution, so FAR at the operating threshold.
    let mut vib_scores = Vec::new();
    for victim in users.iter().take(5) {
        let victim_embeds = stack.embeddings_for(victim, Condition::Normal, probes, 0x3a);
        for attacker in users.iter().filter(|a| a.id != victim.id).take(6) {
            for s in 0..probes as u64 {
                let probe = vibration_aware_probe(attacker, &stack.recorder, 0x3b ^ s);
                if let Ok(arr) = preprocess(&probe, &config) {
                    let Ok(grad) = GradientArray::from_signal_array(&arr, config.half_n()) else {
                        continue;
                    };
                    if let Ok(prints) = stack.extractor.extract(&[&grad]) {
                        for v in &victim_embeds {
                            vib_scores.push(cosine_distance(v, prints[0].as_slice()));
                        }
                    }
                }
            }
        }
    }
    let vib_far = mandipass_eval::metrics::far_at(&vib_scores, threshold);
    table.push(ExperimentRecord::new(
        "§VII.G",
        "vibration-aware attack VSR",
        "1.28 % (the EER)",
        format!("{:.2} %", vib_far * 100.0),
        vib_far < 0.2,
    ));

    // Impersonation: mimicked voicing manner, attacker's mandible.
    let mut imp_scores = Vec::new();
    for victim in users.iter().take(5) {
        let victim_embeds = stack.embeddings_for(victim, Condition::Normal, probes, 0x4a);
        for attacker in users.iter().filter(|a| a.id != victim.id).take(6) {
            for s in 0..probes as u64 {
                let probe = impersonation_probe(attacker, victim, &stack.recorder, 0x4b ^ s);
                if let Ok(arr) = preprocess(&probe, &config) {
                    let Ok(grad) = GradientArray::from_signal_array(&arr, config.half_n()) else {
                        continue;
                    };
                    if let Ok(prints) = stack.extractor.extract(&[&grad]) {
                        for v in &victim_embeds {
                            imp_scores.push(cosine_distance(v, prints[0].as_slice()));
                        }
                    }
                }
            }
        }
    }
    let imp_far = mandipass_eval::metrics::far_at(&imp_scores, threshold);
    table.push(ExperimentRecord::new(
        "§VII.G",
        "impersonation attack VSR",
        "1.30 %",
        format!("{:.2} %", imp_far * 100.0),
        imp_far < 0.25,
    ));

    // Replay: templates under different Gaussian matrices.
    let dim = stack.extractor.embedding_dim();
    let mut replay_scores = Vec::new();
    for (i, user) in users.iter().enumerate() {
        let embeds = stack.embeddings_for(user, Condition::Normal, 4, 0x5a);
        for (j, e) in embeds.iter().enumerate() {
            let print = MandiblePrint::new(e.clone());
            let old = GaussianMatrix::generate(1000 + i as u64, dim);
            let new = GaussianMatrix::generate(2000 + i as u64 + j as u64, dim);
            let stolen = old.transform(&print).expect("dims match");
            let fresh = new.transform(&print).expect("dims match");
            replay_scores.push(cosine_distance(stolen.as_slice(), fresh.as_slice()));
        }
    }
    let replay_far = mandipass_eval::metrics::far_at(&replay_scores, threshold);
    table.push(ExperimentRecord::new(
        "§VII.G",
        "replay attack VSR (stolen template vs revoked matrix)",
        "0.6 %",
        format!("{:.2} %", replay_far * 100.0),
        replay_far < 0.1,
    ));
    table
}

/// §VII.E overhead: wall-clock and storage of the deployed pipeline.
///
/// Timing comes from the telemetry span tree (captured on this thread),
/// not hand-rolled timers, so the numbers here and the
/// [`telemetry_report`] breakdown share one measurement path.
pub fn exp_overhead(stack: &mut TrainedStack) -> ReportTable {
    let mut table = ReportTable::new("§VII.E: overhead");
    let user = stack.held_out_users()[0].clone();
    let config = PipelineConfig::default();
    let rec = stack.recorder.record(&user, Condition::Normal, 0xee);

    // Signal collection: fixed by physics — n samples at the IMU rate.
    let collection = config.n as f64 / stack.recorder.imu.sample_rate_hz;
    table.push(ExperimentRecord::new(
        "§VII.E",
        "signal collection",
        "0.2 s (60 ÷ 350)",
        format!("{collection:.3} s"),
        (collection - 0.171).abs() < 0.05,
    ));

    // Pipeline wall-clock, via the instrumented spans themselves.
    let arr = preprocess(&rec, &config).expect("probe preprocesses");
    let grad = GradientArray::from_signal_array(&arr, config.half_n()).expect("probe gradients");
    let extractor = &mut stack.extractor;
    let ((), tree) = mandipass_telemetry::capture(|| {
        for _ in 0..200 {
            let _ = preprocess(&rec, &config).expect("probe preprocesses");
        }
        for _ in 0..20 {
            let _span = mandipass_telemetry::span("extract");
            let _ = extractor.extract(&[&grad]).expect("extracts");
        }
        for _ in 0..20 {
            let _span = mandipass_telemetry::span("extract_naive");
            let _ = extractor.extract_naive(&[&grad]).expect("extracts");
        }
    });
    let stats = mandipass_telemetry::report::stage_stats(&tree);
    let mean_secs = |name: &str| {
        stats
            .iter()
            .find(|s| s.name == name)
            .map_or(f64::NAN, |s| s.mean / 1e9)
    };
    let pre = mean_secs("preprocess");
    table.push(ExperimentRecord::new(
        "§VII.E",
        "signal preprocessing",
        "< 0.01 s",
        format!("{pre:.5} s"),
        pre < 0.01,
    ));
    // The deployed extraction path is the im2col+GEMM arena fast path;
    // the naive tensor-per-layer oracle rides along for attribution so
    // the table says which implementation produced which number.
    let extract = mean_secs("extract");
    table.push(ExperimentRecord::new(
        "§VII.E",
        "MandiblePrint extraction (fast path)",
        "< 1 s",
        format!("{extract:.4} s"),
        extract < 1.0,
    ));
    let extract_naive = mean_secs("extract_naive");
    table.push(ExperimentRecord::new(
        "§VII.E",
        "MandiblePrint extraction (naive oracle)",
        "< 1 s",
        format!("{extract_naive:.4} s"),
        extract_naive < 1.0,
    ));

    // Storage.
    let model_bytes = mandipass_nn::serialize::serialized_size(&mut stack.extractor);
    table.push(ExperimentRecord::new(
        "§VII.E",
        "extractor storage",
        "≈ 5 MB",
        format!("{:.2} MB", model_bytes as f64 / 1e6),
        model_bytes < 20_000_000,
    ));
    let dim = stack.extractor.embedding_dim();
    let matrix = GaussianMatrix::generate(1, dim);
    let print = MandiblePrint::new(vec![0.5; dim]);
    let template = matrix.transform(&print).expect("dims match");
    table.push(ExperimentRecord::new(
        "§VII.E",
        "cancelable template storage",
        "≈ 1.8 KB",
        format!("{:.2} KB", template.storage_bytes() as f64 / 1e3),
        template.storage_bytes() < 10_000,
    ));
    table
}

/// Hot path: the zero-alloc im2col+GEMM inference path measured against
/// the naive tensor-per-layer oracle, in the same binary in the same
/// run, plus the fused conv+BN variant and the batched [N,C,H,W]
/// forward. Produces the schema-versioned `BENCH_hotpath.json` document
/// the CI perf gate consumes; every ratio in it is same-run, so the
/// gate is machine-independent.
///
/// # Errors
///
/// Propagates extraction and fusion failures.
pub fn exp_hotpath(stack: &mut TrainedStack) -> Result<(ReportTable, Value), MandiPassError> {
    use std::time::Instant;
    let _span = mandipass_telemetry::span("exp_hotpath");
    let env_usize = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let iters = env_usize("MANDIPASS_HOTPATH_ITERS", 150).max(3);
    let batch = env_usize("MANDIPASS_HOTPATH_BATCH", 4).max(2);
    // Per-call seconds as the best of three equal chunks: the minimum
    // discards one-time warm-up noise (page faults, frequency ramp)
    // that a single short mean absorbs, without needing long runs.
    let chunk = iters.div_ceil(3);
    let time_min = |f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            for _ in 0..chunk {
                f();
            }
            best = best.min(t.elapsed().as_secs_f64() / chunk as f64);
        }
        best
    };
    let config = PipelineConfig::default();
    let user = stack.held_out_users()[0].clone();
    let grads: Vec<GradientArray> = (0..batch as u64)
        .map(|s| {
            let rec = stack
                .recorder
                .record(&user, Condition::Normal, 0x0407_0000 ^ s);
            let arr = preprocess(&rec, &config).expect("probe preprocesses");
            GradientArray::from_signal_array(&arr, config.half_n()).expect("probe gradients")
        })
        .collect();
    let single = [&grads[0]];
    let extractor = &stack.extractor;

    // Parity first — this also warms both paths and sizes the arena.
    let naive_prints = extractor.extract_naive(&single)?;
    let fast_prints = extractor.extract_prints_batch(&single)?;
    let fast_bitwise = naive_prints[0].as_slice() == fast_prints[0].as_slice();

    // Naive oracle timing.
    let naive_per = time_min(&mut || {
        let _ = extractor.extract_naive(&single).expect("naive extracts");
    });

    // Fast path, steady state: the warm-up above already sized the
    // arena, so the timed window must not grow it at all.
    mandipass::extractor::reset_arena_growth();
    let fast_per = time_min(&mut || {
        let _ = extractor
            .extract_prints_batch(&single)
            .expect("fast extracts");
    });
    let arena = mandipass::extractor::arena_stats();

    // Batched: all probes through one [N,C,H,W] forward.
    let refs: Vec<&GradientArray> = grads.iter().collect();
    let _ = extractor.extract_prints_batch(&refs)?; // size the pool for N
    let batched_per = time_min(&mut || {
        let _ = extractor
            .extract_prints_batch(&refs)
            .expect("batch extracts");
    }) / batch as f64;

    // Fused variant on a clone: BN running stats folded into the
    // preceding convs, opt-in because parity loosens to ≤1e-6.
    let mut fused_extractor = stack.extractor.clone();
    let folded = fused_extractor.fuse()?;
    let fused_prints = fused_extractor.extract_prints_batch(&single)?;
    let fused_err = naive_prints[0]
        .as_slice()
        .iter()
        .zip(fused_prints[0].as_slice())
        .map(|(a, b)| f64::from((a - b).abs()))
        .fold(0.0_f64, f64::max);
    let fused_per = time_min(&mut || {
        let _ = fused_extractor
            .extract_prints_batch(&single)
            .expect("fused extracts");
    });

    // Per-stage attribution from the instrumented spans themselves, so
    // this table and the telemetry report share one measurement path.
    let (parity, tree) = mandipass_telemetry::capture(|| extractor.extract_prints_batch(&single));
    let _ = parity?;
    let stats = mandipass_telemetry::report::stage_stats(&tree);
    let mean_ns = |name: &str| {
        stats
            .iter()
            .find(|s| s.name == name)
            .map_or(0.0, |s| s.mean)
    };

    // Embedded profile summary from a *separate* profiled pass after
    // the timed windows — the profiler's frame-table updates must not
    // pollute the same-run speedup measurement the gate relies on.
    let profile_section = {
        let was_profiling = mandipass_telemetry::profile::enabled();
        mandipass_telemetry::profile::set_enabled(true);
        mandipass_telemetry::profile::reset();
        for _ in 0..chunk {
            let _ = extractor.extract_prints_batch(&single)?;
        }
        let section = mandipass_telemetry::profile::snapshot().summary_json();
        mandipass_telemetry::profile::set_enabled(was_profiling);
        section
    };

    let speedup_fast = naive_per / fast_per;
    let speedup_fused = naive_per / fused_per;
    let speedup_batched = naive_per / batched_per;
    let mut table = ReportTable::new("Hot path: zero-alloc im2col+GEMM inference");
    table.push(
        ExperimentRecord::new(
            "Hot path",
            "per-verify forward speedup (fast vs naive oracle)",
            "≥ 3x (same run)",
            format!("{speedup_fast:.1}x"),
            speedup_fast >= 3.0,
        )
        .with_note(format!(
            "naive {:.3} ms, fast {:.3} ms per verify",
            naive_per * 1e3,
            fast_per * 1e3
        )),
    );
    table.push(ExperimentRecord::new(
        "Hot path",
        "steady-state arena growth events",
        "0 (zero-alloc after warm-up)",
        format!("{}", arena.growth_events),
        arena.growth_events == 0,
    ));
    table.push(ExperimentRecord::new(
        "Hot path",
        "fast-path parity vs naive oracle",
        "bit-exact",
        if fast_bitwise {
            "bit-exact"
        } else {
            "DIVERGED"
        }
        .to_string(),
        fast_bitwise,
    ));
    table.push(
        ExperimentRecord::new(
            "Hot path",
            "fused conv+BN parity vs naive oracle",
            "≤ 1e-6 per element",
            format!("{fused_err:.2e}"),
            fused_err <= 1e-6,
        )
        .with_note(format!(
            "{folded} affine layers folded, {:.1}x speedup",
            speedup_fused
        )),
    );
    table.push(
        ExperimentRecord::new(
            "Hot path",
            format!("batched extraction per-probe latency (N={batch})"),
            "≤ single-probe fast path",
            format!("{:.3} ms", batched_per * 1e3),
            batched_per <= fast_per * 1.25,
        )
        .with_note(format!("{speedup_batched:.1}x vs naive per probe")),
    );

    let doc = Value::Object(vec![
        ("schema".into(), Value::String(BENCH_HOTPATH_SCHEMA.into())),
        ("scale".into(), Value::String(format!("{:?}", stack.scale))),
        ("iters".into(), Value::Number(iters as f64)),
        ("batch".into(), Value::Number(batch as f64)),
        ("folded_layers".into(), Value::Number(folded as f64)),
        (
            "per_verify_seconds".into(),
            Value::Object(vec![
                ("naive".into(), Value::Number(naive_per)),
                ("fast".into(), Value::Number(fast_per)),
                ("fused".into(), Value::Number(fused_per)),
                ("batched_per_probe".into(), Value::Number(batched_per)),
            ]),
        ),
        (
            "speedup".into(),
            Value::Object(vec![
                ("fast".into(), Value::Number(speedup_fast)),
                ("fused".into(), Value::Number(speedup_fused)),
                ("batched".into(), Value::Number(speedup_batched)),
            ]),
        ),
        (
            "parity".into(),
            Value::Object(vec![
                ("fast_bitwise".into(), Value::Bool(fast_bitwise)),
                ("fused_max_abs_err".into(), Value::Number(fused_err)),
            ]),
        ),
        (
            "arena".into(),
            Value::Object(vec![
                (
                    "steady_growth_events".into(),
                    Value::Number(arena.growth_events as f64),
                ),
                (
                    "high_water_bytes".into(),
                    Value::Number(arena.high_water_bytes as f64),
                ),
                (
                    "pooled_buffers".into(),
                    Value::Number(arena.pooled_buffers as f64),
                ),
            ]),
        ),
        (
            "stages".into(),
            Value::Object(vec![
                ("im2col_mean_ns".into(), Value::Number(mean_ns("im2col"))),
                ("gemm_mean_ns".into(), Value::Number(mean_ns("gemm"))),
                (
                    "bias_act_mean_ns".into(),
                    Value::Number(mean_ns("bias_act")),
                ),
            ]),
        ),
        ("profile".into(), profile_section),
    ]);
    debug_assert!(validate_bench_hotpath(&doc).is_ok());
    Ok((table, doc))
}

/// The per-stage latency breakdown behind `run_all --telemetry-report`:
/// one enrol + one verify end to end under a telemetry capture, rendered
/// as a [`mandipass_telemetry::report::latency_report`] JSON document.
/// Every stage (preprocess, gradient array, CNN forward, template
/// transform, similarity, enclave access) appears as its own span.
pub fn telemetry_report(stack: &mut TrainedStack) -> String {
    use mandipass::similarity::accepts;

    let user = stack.held_out_users()[0].clone();
    let config = PipelineConfig::default();
    let dim = stack.extractor.embedding_dim();
    let matrix = GaussianMatrix::generate(0x7472, dim);
    let enclave = SecureEnclave::new();
    let recorder = &stack.recorder;
    let extractor = &stack.extractor;
    let ((), tree) = mandipass_telemetry::capture(|| {
        let _root = mandipass_telemetry::span("verify_pipeline");
        // Enrol: mean of three probes, transformed, sealed in the enclave.
        let prints: Vec<MandiblePrint> = (0..3u64)
            .filter_map(|s| {
                let rec = recorder.record(&user, Condition::Normal, 0x7e1e ^ s);
                let arr = preprocess(&rec, &config).ok()?;
                let grad = GradientArray::from_signal_array(&arr, config.half_n()).ok()?;
                extractor.extract(&[&grad]).ok().map(|mut p| p.remove(0))
            })
            .collect();
        let mean = MandiblePrint::mean(&prints).expect("enrolment probes preprocess");
        let template = matrix.transform(&mean).expect("dims match");
        enclave.store(user.id, template);
        // Verify one fresh probe.
        let stored = {
            let _span = mandipass_telemetry::span("enclave_load");
            enclave.load(user.id).expect("stored above")
        };
        let rec = recorder.record(&user, Condition::Normal, 0x7e1e ^ 99);
        let arr = preprocess(&rec, &config).expect("probe preprocesses");
        let grad =
            GradientArray::from_signal_array(&arr, config.half_n()).expect("probe gradients");
        let prints = extractor.extract(&[&grad]).expect("extracts");
        let cancelable = matrix.transform(&prints[0]).expect("dims match");
        let distance = {
            let _span = mandipass_telemetry::span("similarity");
            cosine_distance(stored.as_slice(), cancelable.as_slice())
        };
        enclave.record_verify(user.id, accepts(distance, config.threshold), distance);
    });
    mandipass_telemetry::report::latency_report(&tree).to_json()
}

/// Table I: comparison with SkullConduct and EarEcho.
pub fn table1_comparison(stack: &mut TrainedStack, threshold: f64) -> ReportTable {
    use mandipass_baselines::comparison::BaselineBench;
    use mandipass_baselines::SystemProperties;

    let mut table = ReportTable::new("Table I: comparison with SkullConduct and EarEcho");

    // MandiPass measured: RTC = one probe; FRR at the operating point;
    // RARA from the cancelable-template experiment; IAN because acoustic
    // noise does not couple into the IMU at all (the vibration path is
    // intracorporal), so VSR is unchanged by ambient sound.
    let eval = stack.main_evaluation();
    let frr = frr_at(&eval.scores.genuine, threshold);
    let replay_resilient = {
        let dim = stack.extractor.embedding_dim();
        let print = MandiblePrint::new(eval.per_user[0][0].clone());
        let old = GaussianMatrix::generate(1, dim)
            .transform(&print)
            .expect("dims");
        let new = GaussianMatrix::generate(2, dim)
            .transform(&print)
            .expect("dims");
        cosine_distance(old.as_slice(), new.as_slice()) >= threshold
    };
    let mandipass = SystemProperties {
        name: "MandiPass".to_string(),
        registration_seconds: PipelineConfig::default().n as f64
            / stack.recorder.imu.sample_rate_hz,
        frr,
        replay_resilient,
        noise_immune: true,
    };

    let bench = BaselineBench::default();
    let skull = bench.measure_skullconduct();
    let earecho = bench.measure_earecho();

    let paper_rows = [
        ("MandiPass", (true, true, true, true)),
        ("SkullConduct", (true, false, false, false)),
        ("EarEcho", (false, false, false, false)),
    ];
    for (props, (name, paper)) in [&mandipass, &skull, &earecho].iter().zip(&paper_rows) {
        let marks = props.checkmarks();
        // FRR band is testbed-dependent; the structural claims are RTC,
        // RARA and IAN.
        let shape = marks.0 == paper.0 && marks.2 == paper.2 && marks.3 == paper.3;
        table.push(ExperimentRecord::new(
            "Table I",
            format!("{name}: RTC≤1s / FRR≤2% / RARA / IAN"),
            format!("{:?}", paper),
            format!(
                "{:?} (RTC {:.2} s, FRR {:.2} %)",
                marks,
                props.registration_seconds,
                props.frr * 100.0
            ),
            shape,
        ));
    }
    table
}

/// One (fault profile, intensity) cell of the robustness sweep.
struct RobustnessCell {
    profile: String,
    intensity: f64,
    far: f64,
    frr: f64,
    reject_rate: f64,
    degraded_accepts: usize,
    untyped_rejects: usize,
    genuine_trials: usize,
    impostor_trials: usize,
}

impl RobustnessCell {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("profile".into(), Value::String(self.profile.clone())),
            ("intensity".into(), Value::Number(self.intensity)),
            ("far".into(), Value::Number(self.far)),
            ("frr".into(), Value::Number(self.frr)),
            ("reject_rate".into(), Value::Number(self.reject_rate)),
            (
                "degraded_accepts".into(),
                Value::Number(self.degraded_accepts as f64),
            ),
            (
                "untyped_rejects".into(),
                Value::Number(self.untyped_rejects as f64),
            ),
            (
                "genuine_trials".into(),
                Value::Number(self.genuine_trials as f64),
            ),
            (
                "impostor_trials".into(),
                Value::Number(self.impostor_trials as f64),
            ),
        ])
    }
}

/// What one policy-mediated verification trial produced.
enum TrialOutcome {
    /// The policy reached a decision that accepted the claimant.
    Accept { degraded: bool },
    /// The policy reached a decision that rejected the claimant.
    Reject,
    /// Every probe was rejected before a decision; `typed` says whether
    /// each attempt carried a machine-readable reason.
    Gated { typed: bool },
}

/// Robustness under sensor faults: every injector from
/// [`sweep_profiles`] at each requested intensity, driven end to end
/// through [`MandiPass::verify_with_policy`] over a small deployed
/// cohort cloned off the trained stack.
///
/// Per cell, each cohort user runs genuine trials (their own faulted
/// probes) and impostor trials (the next user's faulted probes against
/// their template); a trial offers the policy `max_attempts`
/// independently faulted probes. The returned JSON document carries
/// FAR, FRR and the typed-reject rate per cell so the
/// robustness/accuracy trade-off is measured rather than asserted.
///
/// # Errors
///
/// Propagates enrolment failures; individual trial rejections are data,
/// not errors.
pub fn exp_robustness(
    stack: &mut TrainedStack,
    threshold: f64,
    intensities: &[f64],
) -> Result<(ReportTable, Value), MandiPassError> {
    let _span = mandipass_telemetry::span("exp_robustness");
    const COHORT: usize = 4;
    const TRIALS_PER_USER: usize = 3;

    let users: Vec<UserProfile> = stack
        .held_out_users()
        .iter()
        .take(COHORT)
        .cloned()
        .collect();
    let recorder = stack.recorder.clone();
    let config = PipelineConfig {
        threshold,
        ..PipelineConfig::default()
    };
    let auth = {
        let mut auth = MandiPass::new(stack.extractor.clone(), config);
        let dim = auth.embedding_dim();
        let matrices: Vec<GaussianMatrix> = users
            .iter()
            .map(|u| GaussianMatrix::generate(0x0b0e ^ u64::from(u.id), dim))
            .collect();
        for (user, matrix) in users.iter().zip(&matrices) {
            let recs: Vec<Recording> = (0..4u64)
                .map(|s| {
                    recorder.record(
                        user,
                        Condition::Normal,
                        0x0e17_0000 ^ (u64::from(user.id) << 8) ^ s,
                    )
                })
                .collect();
            auth.enroll(user.id, &recs, matrix)?;
        }
        (auth, matrices)
    };
    let (auth, matrices) = auth;
    let policy = VerifyPolicy::default();

    // One trial: `max_attempts` faulted probes from `prober`, verified
    // against `target`'s template under the policy.
    let trial = |target: &UserProfile,
                 matrix: &GaussianMatrix,
                 prober: &UserProfile,
                 faulty: &FaultyRecorder,
                 seed: u64|
     -> Result<TrialOutcome, MandiPassError> {
        let probes: Vec<Recording> = (0..policy.max_attempts as u64)
            .map(|a| faulty.record(prober, Condition::Normal, seed ^ (a << 48)))
            .collect();
        match auth.verify_with_policy(target.id, &probes, matrix, &policy) {
            Ok(decision) if decision.outcome.accepted => Ok(TrialOutcome::Accept {
                degraded: decision.degraded,
            }),
            Ok(_) => Ok(TrialOutcome::Reject),
            Err(MandiPassError::RetriesExhausted { attempts, reasons }) => {
                Ok(TrialOutcome::Gated {
                    typed: reasons.len() == attempts
                        && reasons.iter().all(|r| {
                            r.split_once(':')
                                .is_some_and(|(_, label)| !label.is_empty())
                        }),
                })
            }
            Err(e) => Err(e),
        }
    };

    // One (profile, intensity) cell: genuine and impostor trials for
    // every cohort user under the given injector.
    let run_cell = |profile: FaultProfile,
                    intensity: f64,
                    cell_seed: u64|
     -> Result<RobustnessCell, MandiPassError> {
        let name = profile.name.clone();
        let faulty = FaultyRecorder::new(recorder.clone(), profile);
        let mut genuine_accepts = 0usize;
        let mut impostor_accepts = 0usize;
        let mut gated = 0usize;
        let mut untyped = 0usize;
        let mut degraded_accepts = 0usize;
        let genuine_trials = users.len() * TRIALS_PER_USER;
        let impostor_trials = genuine_trials;
        for (u, user) in users.iter().enumerate() {
            let impostor = &users[(u + 1) % users.len()];
            for t in 0..TRIALS_PER_USER as u64 {
                let seed = 0x0b57 ^ (cell_seed << 32) ^ ((u as u64) << 24) ^ (t << 16);
                let mut tally = |outcome: TrialOutcome, genuine: bool| match outcome {
                    TrialOutcome::Accept { degraded } => {
                        if genuine {
                            genuine_accepts += 1;
                        } else {
                            impostor_accepts += 1;
                        }
                        if degraded {
                            degraded_accepts += 1;
                        }
                    }
                    TrialOutcome::Reject => {}
                    TrialOutcome::Gated { typed } => {
                        gated += 1;
                        if !typed {
                            untyped += 1;
                        }
                    }
                };
                tally(trial(user, &matrices[u], user, &faulty, seed)?, true);
                tally(
                    trial(user, &matrices[u], impostor, &faulty, seed ^ 1)?,
                    false,
                );
            }
        }
        Ok(RobustnessCell {
            profile: name,
            intensity,
            far: impostor_accepts as f64 / impostor_trials as f64,
            frr: 1.0 - genuine_accepts as f64 / genuine_trials as f64,
            reject_rate: gated as f64 / (genuine_trials + impostor_trials) as f64,
            degraded_accepts,
            untyped_rejects: untyped,
            genuine_trials,
            impostor_trials,
        })
    };

    let mut cells: Vec<RobustnessCell> = Vec::new();
    // Clean control first: the same trial machinery with no injector,
    // giving the FAR/FRR baseline the faulted cells are judged against.
    cells.push(run_cell(FaultProfile::clean(), 0.0, 0)?);
    for (ii, &intensity) in intensities.iter().enumerate() {
        for (pi, profile) in sweep_profiles(intensity).into_iter().enumerate() {
            cells.push(run_cell(
                profile,
                intensity,
                ((ii as u64) << 8) | (pi as u64 + 1),
            )?);
        }
    }

    let table = robustness_table(&cells, threshold, intensities);
    let doc = Value::Object(vec![
        ("experiment".into(), Value::String("robustness".into())),
        ("threshold".into(), Value::Number(threshold)),
        ("cohort".into(), Value::Number(users.len() as f64)),
        (
            "trials_per_cell".into(),
            Value::Number((2 * users.len() * TRIALS_PER_USER) as f64),
        ),
        (
            "max_attempts".into(),
            Value::Number(policy.max_attempts as f64),
        ),
        (
            "intensities".into(),
            Value::Array(intensities.iter().map(|&i| Value::Number(i)).collect()),
        ),
        (
            "cells".into(),
            Value::Array(cells.iter().map(RobustnessCell::to_value).collect()),
        ),
    ]);
    Ok((table, doc))
}

/// Renders the robustness sweep as paper-vs-measured rows: the paper has
/// no fault-injection artifact, so the "paper" column states the design
/// expectation each row checks.
fn robustness_table(cells: &[RobustnessCell], threshold: f64, intensities: &[f64]) -> ReportTable {
    let mut table = ReportTable::new("Robustness: fault injection vs FAR/FRR/reject rate");
    let lo = intensities.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = intensities
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let at = |name: &str, intensity: f64| {
        cells
            .iter()
            .find(|c| c.profile == name && c.intensity == intensity)
    };

    // Clean control: the quality gate must never reject a healthy probe.
    let clean = cells.iter().find(|c| c.profile == "clean");
    let clean_reject = clean.map_or(1.0, |c| c.reject_rate);
    let clean_frr = clean.map_or(1.0, |c| c.frr);
    table.push(
        ExperimentRecord::new(
            "Robustness",
            "clean profile: gate reject rate",
            "0 (no false gating)",
            format!("{clean_reject:.3}"),
            clean_reject == 0.0,
        )
        .with_note(format!("operating threshold {threshold:.3}")),
    );

    // Each injector: gating must not *decrease* as the fault worsens.
    for name in [
        "dropout",
        "stuck_gyro",
        "clipping",
        "non_finite",
        "truncate",
        "gain_drift",
    ] {
        let (Some(first), Some(last)) = (at(name, lo), at(name, hi)) else {
            continue;
        };
        table.push(ExperimentRecord::new(
            "Robustness",
            format!("{name}: reject rate at intensity {lo:.2} → {hi:.2}"),
            "non-decreasing with intensity",
            format!("{:.3} → {:.3}", first.reject_rate, last.reject_rate),
            last.reject_rate >= first.reject_rate,
        ));
    }

    // NaN/Inf bursts must be fully gated at the top intensity.
    if let Some(cell) = at("non_finite", hi) {
        table.push(ExperimentRecord::new(
            "Robustness",
            "non_finite at max intensity: fully gated",
            "reject rate 1.0",
            format!("{:.3}", cell.reject_rate),
            cell.reject_rate == 1.0,
        ));
    }

    // Faults must never mint impostor accepts beyond the clean FAR.
    let clean_far = clean.map_or(0.0, |c| c.far);
    let worst_far = cells.iter().map(|c| c.far).fold(0.0, f64::max);
    table.push(ExperimentRecord::new(
        "Robustness",
        "worst-case FAR under faults",
        "no inflation over clean FAR",
        format!("{worst_far:.3} (clean {clean_far:.3})"),
        worst_far <= clean_far + 0.25,
    ));

    // Every gated trial carried a machine-readable reason, and the whole
    // sweep completed without a panic (we are here rendering it).
    let untyped: usize = cells.iter().map(|c| c.untyped_rejects).sum();
    let trials: usize = cells
        .iter()
        .map(|c| c.genuine_trials + c.impostor_trials)
        .sum();
    table.push(
        ExperimentRecord::new(
            "Robustness",
            "typed reject reasons / zero panics",
            "every gated trial typed",
            format!("{untyped} untyped over {trials} trials"),
            untyped == 0,
        )
        .with_note(format!("clean FRR {clean_frr:.3}")),
    );
    table
}

/// Live-monitoring drift detection: the [`DriftDetector`] must stay
/// `Healthy` over clean genuine traffic and flag `Degrading`/`Alarm`
/// when a combined gain-drift + dropout ramp
/// ([`FaultProfile::degradation_ramp`]) corrupts the probes — with the
/// rejected probes' structured records retained in the flight recorder.
///
/// Runs against a private [`Monitor`] so concurrent experiments sharing
/// the process never pollute the windows under test.
///
/// [`DriftDetector`]: mandipass_telemetry::drift::DriftDetector
/// [`Monitor`]: mandipass_telemetry::monitor::Monitor
///
/// # Errors
///
/// Propagates enrolment failures; rejected trials are data, not errors.
pub fn exp_monitor(
    stack: &mut TrainedStack,
    threshold: f64,
) -> Result<(ReportTable, Value), MandiPassError> {
    let _span = mandipass_telemetry::span("exp_monitor");
    const COHORT: usize = 4;
    const CLEAN_PROBES: usize = 3;
    const RAMP_TRIALS: usize = 2;
    const RAMP: [f64; 3] = [0.5, 0.75, 1.0];

    let monitor: &'static mandipass_telemetry::Monitor =
        Box::leak(Box::new(mandipass_telemetry::Monitor::default()));
    let users: Vec<UserProfile> = stack
        .held_out_users()
        .iter()
        .take(COHORT)
        .cloned()
        .collect();
    let recorder = stack.recorder.clone();
    let config = PipelineConfig {
        threshold,
        ..PipelineConfig::default()
    };
    let mut auth = MandiPass::new(stack.extractor.clone(), config);
    auth.set_monitor(monitor);
    let dim = auth.embedding_dim();
    let matrices: Vec<GaussianMatrix> = users
        .iter()
        .map(|u| GaussianMatrix::generate(0x3017 ^ u64::from(u.id), dim))
        .collect();
    // Enrolment feeds and freezes the monitor's drift baseline.
    for (user, matrix) in users.iter().zip(&matrices) {
        let recs: Vec<Recording> = (0..4u64)
            .map(|s| {
                recorder.record(
                    user,
                    Condition::Normal,
                    0x3017_0000 ^ (u64::from(user.id) << 8) ^ s,
                )
            })
            .collect();
        auth.enroll(user.id, &recs, matrix)?;
    }
    // Re-freeze the baseline on live probe distances: enrolment froze
    // the prints-vs-template distribution, which sits closer to the
    // template than fresh probes ever will, and the PSI would read that
    // gap as drift. Operationally this is the post-enrolment
    // calibration pass.
    let mut calibration = Vec::new();
    for (u, user) in users.iter().enumerate() {
        for s in 0..4u64 {
            let probe =
                recorder.record(user, Condition::Normal, 0x3017_3000 ^ ((u as u64) << 8) ^ s);
            calibration.push(auth.verify(user.id, &probe, &matrices[u])?.distance);
        }
    }
    monitor.extend_baseline(&calibration);
    monitor.freeze_baseline();
    // Enrolment and calibration fed the windows; judge only live traffic.
    monitor.reset_windows();

    // Phase 1 — clean genuine traffic must read Healthy.
    let policy = VerifyPolicy::default();
    for (u, user) in users.iter().enumerate() {
        for s in 0..CLEAN_PROBES as u64 {
            let probe =
                recorder.record(user, Condition::Normal, 0x3017_1000 ^ ((u as u64) << 8) ^ s);
            let _ = auth.verify_with_policy(user.id, &[probe], &matrices[u], &policy);
        }
    }
    let clean_health = monitor.health();
    let clean_psi = monitor.psi();
    let clean_flights = monitor.flights().len();

    // Phase 2 — a fresh window under the degradation ramp must flag.
    monitor.reset_windows();
    for &intensity in &RAMP {
        let faulty =
            FaultyRecorder::new(recorder.clone(), FaultProfile::degradation_ramp(intensity));
        for (u, user) in users.iter().enumerate() {
            for t in 0..RAMP_TRIALS as u64 {
                let seed = 0x3017_2000 ^ ((intensity * 100.0) as u64) << 32 ^ ((u as u64) << 8) ^ t;
                let probes: Vec<Recording> = (0..policy.max_attempts as u64)
                    .map(|a| faulty.record(user, Condition::Normal, seed ^ (a << 48)))
                    .collect();
                let _ = auth.verify_with_policy(user.id, &probes, &matrices[u], &policy);
            }
        }
    }
    let ramp_health = monitor.health();
    let ramp_psi = monitor.psi();
    let ramp_flights = monitor.flights();

    let mut table = ReportTable::new("Monitor: drift detection under fault ramps");
    table.push(
        ExperimentRecord::new(
            "Monitor",
            "clean genuine traffic",
            "Healthy",
            clean_health.status.label().to_string(),
            clean_health.status == HealthStatus::Healthy,
        )
        .with_note(format!(
            "PSI {clean_psi:.3} over {} decisions",
            clean_health.decisions
        )),
    );
    table.push(
        ExperimentRecord::new(
            "Monitor",
            "gain-drift + dropout ramp",
            "Degrading/Alarm",
            ramp_health.status.label().to_string(),
            ramp_health.status != HealthStatus::Healthy,
        )
        .with_note(format!(
            "PSI {ramp_psi:.3}, reasons: {}",
            ramp_health
                .reasons()
                .iter()
                .map(|r| r.signal.label())
                .collect::<Vec<_>>()
                .join(", ")
        )),
    );
    table.push(ExperimentRecord::new(
        "Monitor",
        "flight recorder retains failed verifications",
        "ramp flights > clean flights",
        format!("{} vs {clean_flights}", ramp_flights.len()),
        ramp_flights.len() > clean_flights,
    ));

    let doc = Value::Object(vec![
        ("experiment".into(), Value::String("monitor".into())),
        ("threshold".into(), Value::Number(threshold)),
        ("cohort".into(), Value::Number(users.len() as f64)),
        ("clean_health".into(), clean_health.to_json()),
        ("ramp_health".into(), ramp_health.to_json()),
        ("snapshot".into(), monitor.snapshot()),
    ]);
    Ok((table, doc))
}

/// Serving layer: closed-loop mixed traffic against one enrolled
/// deployment, in-process and over TCP, plus the schema-versioned
/// `BENCH_serve.json` document the CI perf gate consumes.
pub fn exp_serve(
    stack: &mut TrainedStack,
    threshold: f64,
) -> Result<(ReportTable, Value), MandiPassError> {
    let _span = mandipass_telemetry::span("exp_serve");
    const COHORT: usize = 4;
    let env_usize = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let clients = env_usize("MANDIPASS_SERVE_CLIENTS", 4).max(1);
    let requests = env_usize("MANDIPASS_SERVE_REQUESTS", 24).max(1);
    let workers = env_usize("MANDIPASS_SERVE_WORKERS", 4).max(1);

    // A private monitor so load traffic does not pollute the global
    // deployment's drift windows (same idiom as `exp_monitor`).
    let monitor: &'static mandipass_telemetry::Monitor =
        Box::leak(Box::new(mandipass_telemetry::Monitor::default()));
    // Enrol from the trained cohort: this experiment measures the
    // serving layer (throughput, parity, monitoring), so it wants a
    // deployment with real accept/reject contrast — which the tiny
    // held-out split cannot provide at smoke scale.
    let users: Vec<UserProfile> = stack
        .population
        .users()
        .iter()
        .take(COHORT)
        .cloned()
        .collect();
    let recorder = stack.recorder.clone();
    let config = PipelineConfig {
        threshold,
        ..PipelineConfig::default()
    };
    let mut auth = MandiPass::new(stack.extractor.clone(), config);
    auth.set_monitor(monitor);
    let dim = auth.embedding_dim();
    let mut service = VerifyService::new(auth, VerifyPolicy::default());
    for user in &users {
        let matrix = GaussianMatrix::generate(0x5e12 ^ u64::from(user.id), dim);
        let recs: Vec<Recording> = (0..4u64)
            .map(|s| {
                recorder.record(
                    user,
                    Condition::Normal,
                    0x5e12_0000 ^ (u64::from(user.id) << 8) ^ s,
                )
            })
            .collect();
        service.enroll(user.id, &recs, matrix)?;
    }
    // Post-enrolment calibration does two jobs. (a) Re-freeze the drift
    // baseline on live genuine distances so the PSI judges traffic
    // against traffic, not against the tighter prints-vs-template
    // distribution. (b) Recalibrate the operating threshold for THIS
    // deployment from its own genuine-vs-cross-user distance gap — the
    // EER threshold was fit on a different matrix pairing and need not
    // separate this cohort, especially at smoke scales.
    let mut genuine_cal = Vec::new();
    let mut impostor_cal = Vec::new();
    for (u, user) in users.iter().enumerate() {
        for s in 0..4u64 {
            let seed = 0x5e12_3000 ^ ((u as u64) << 8) ^ s;
            let own = recorder.record(user, Condition::Normal, seed);
            if let Response::Decision { distance, .. } = service.handle(&Request::Verify {
                user_id: user.id,
                probe: own,
            }) {
                genuine_cal.push(distance);
            }
            let other = &users[(u + 1) % users.len()];
            let foreign = recorder.record(other, Condition::Normal, seed ^ 0x77);
            if let Response::Decision { distance, .. } = service.handle(&Request::Verify {
                user_id: user.id,
                probe: foreign,
            }) {
                impostor_cal.push(distance);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (genuine_mean, impostor_mean) = (mean(&genuine_cal), mean(&impostor_cal));
    if impostor_mean > genuine_mean {
        service.system_mut().config_mut().threshold = (genuine_mean + impostor_mean) / 2.0;
    }
    monitor.extend_baseline(&genuine_cal);
    monitor.freeze_baseline();
    monitor.reset_windows();

    let service = std::sync::Arc::new(service);
    let load_config = LoadConfig {
        clients,
        requests_per_client: requests,
        // Probes per policy request; >2 exercises the server's batched
        // extraction path under load (default 2 keeps historical plans).
        policy_batch: env_usize("MANDIPASS_POLICY_BATCH", 2).max(1),
        ..LoadConfig::default()
    };
    let in_process = run_load(
        &LoadTarget::InProcess(&service),
        &users,
        &recorder,
        &load_config,
        Some(monitor),
    );
    // Fresh drift window per transport so each verdict covers exactly
    // its own run's traffic.
    monitor.reset_windows();
    let mut server = VerifyServer::bind(
        std::sync::Arc::clone(&service),
        "127.0.0.1:0",
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
    )
    .expect("bind verify server on loopback");
    // Profile the TCP burst: each worker thread labels its subtree, so
    // the embedded summary (and `/profile/cpu`) shows per-worker call
    // trees merged under `workerN.…` roots. The per-close cost (one
    // lock + map update) is microseconds against millisecond verifies,
    // well inside the baseline gate's envelope.
    let was_profiling = mandipass_telemetry::profile::enabled();
    mandipass_telemetry::profile::set_enabled(true);
    mandipass_telemetry::profile::reset();
    let tcp = run_load(
        &LoadTarget::Tcp(server.local_addr()),
        &users,
        &recorder,
        &load_config,
        Some(monitor),
    );
    let profile_section = mandipass_telemetry::profile::snapshot().summary_json();
    mandipass_telemetry::profile::set_enabled(was_profiling);
    server.shutdown();
    let health = monitor.health();

    let scale_desc = format!("{clients} clients x {requests} requests, {workers} workers");
    let mut doc = bench_serve_document(&scale_desc, &load_config, workers, &in_process, &tcp);
    if let Value::Object(members) = &mut doc {
        members.push(("profile".to_string(), profile_section));
    }

    let mut table = ReportTable::new("Serve: closed-loop load, in-process vs TCP");
    table.push(
        ExperimentRecord::new(
            "Serve",
            "sustained TCP throughput",
            "> 0 req/s",
            format!("{:.0} req/s", tcp.qps),
            tcp.qps > 0.0,
        )
        .with_note(format!(
            "in-process {:.0} req/s over {} requests",
            in_process.qps, in_process.requests
        )),
    );
    table.push(ExperimentRecord::new(
        "Serve",
        "TCP latency quantiles ordered",
        "p50 <= p99 <= p999",
        format!(
            "{:.1} / {:.1} / {:.1} ms",
            tcp.latency.p50 * 1e3,
            tcp.latency.p99 * 1e3,
            tcp.latency.p999 * 1e3
        ),
        tcp.latency.p50 > 0.0
            && tcp.latency.p50 <= tcp.latency.p99
            && tcp.latency.p99 <= tcp.latency.p999,
    ));
    table.push(
        ExperimentRecord::new(
            "Serve",
            "decision parity across transports",
            "identical tallies",
            if in_process.decision_signature() == tcp.decision_signature() {
                "identical".to_string()
            } else {
                format!(
                    "{:?} vs {:?}",
                    in_process.decision_signature(),
                    tcp.decision_signature()
                )
            },
            in_process.decision_signature() == tcp.decision_signature(),
        )
        .with_note("util JSON round-trips f64 exactly, so a TCP hop must not move any decision"),
    );
    let genuine_rate = if tcp.genuine == 0 {
        0.0
    } else {
        tcp.genuine_accepted as f64 / tcp.genuine as f64
    };
    let impostor_rate = if tcp.impostor == 0 {
        0.0
    } else {
        tcp.impostor_accepted as f64 / tcp.impostor as f64
    };
    table.push(ExperimentRecord::new(
        "Serve",
        "impostor acceptance below genuine",
        "impostor < genuine",
        format!(
            "{:.0}% vs {:.0}%",
            impostor_rate * 100.0,
            genuine_rate * 100.0
        ),
        impostor_rate < genuine_rate,
    ));
    table.push(ExperimentRecord::new(
        "Serve",
        "drift monitor observed the TCP run",
        "decisions > 0",
        format!(
            "{} over {} decisions",
            health.status.label(),
            health.decisions
        ),
        health.decisions > 0,
    ));
    table.push(ExperimentRecord::new(
        "Serve",
        "BENCH_serve.json validates against schema",
        "ok",
        match validate_bench_serve(&doc) {
            Ok(()) => "ok".to_string(),
            Err(e) => e,
        },
        validate_bench_serve(&doc).is_ok(),
    ));
    Ok((table, doc))
}

/// Overload robustness: measures closed-loop capacity, then drives
/// open-loop offered load below and ~2.2x above it against a
/// small-queue server (breaker disabled so the queue bound itself is
/// what's measured), checks the four overload acceptance gates —
/// saturated tail latency within 5x unsaturated, typed sheds with zero
/// transport errors, admitted-decision parity against an in-process
/// replay of the same planned stream, and a breaker drill that opens,
/// recovers, and repeats bit-identically — and writes the
/// schema-versioned `BENCH_overload.json`.
pub fn exp_overload(
    stack: &mut TrainedStack,
    threshold: f64,
) -> Result<(ReportTable, Value), MandiPassError> {
    let _span = mandipass_telemetry::span("exp_overload");
    const COHORT: usize = 4;
    let env_usize = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let requests = env_usize("MANDIPASS_OVERLOAD_REQUESTS", 120).max(16);
    let workers = env_usize("MANDIPASS_OVERLOAD_WORKERS", 2).max(1);
    let seed: u64 = 0x0ea6_10ad;

    let users: Vec<UserProfile> = stack
        .population
        .users()
        .iter()
        .take(COHORT)
        .cloned()
        .collect();
    let recorder = stack.recorder.clone();
    // Deployment factory: the sweep needs one breaker-disabled service
    // and the drill needs TWO bit-identical breaker-enabled ones, so
    // enrolment + calibration must be a repeatable function of its
    // arguments only (same idiom as `exp_serve`, wrapped for reuse).
    let build_service = |breaker: mandipass_serve::BreakerConfig,
                         monitor: &'static mandipass_telemetry::Monitor|
     -> Result<VerifyService, MandiPassError> {
        let config = PipelineConfig {
            threshold,
            ..PipelineConfig::default()
        };
        let mut auth = MandiPass::new(stack.extractor.clone(), config);
        auth.set_monitor(monitor);
        let dim = auth.embedding_dim();
        let mut service = VerifyService::with_breaker(auth, VerifyPolicy::default(), breaker);
        for user in &users {
            let matrix = GaussianMatrix::generate(0x5e12 ^ u64::from(user.id), dim);
            let recs: Vec<Recording> = (0..4u64)
                .map(|s| {
                    recorder.record(
                        user,
                        Condition::Normal,
                        0x5e12_0000 ^ (u64::from(user.id) << 8) ^ s,
                    )
                })
                .collect();
            service.enroll(user.id, &recs, matrix)?;
        }
        // Recalibrate threshold and drift baseline on this deployment's
        // own genuine/cross-user gap (see `exp_serve` for the why).
        let mut genuine_cal = Vec::new();
        let mut impostor_cal = Vec::new();
        for (u, user) in users.iter().enumerate() {
            for s in 0..4u64 {
                let cal_seed = 0x5e12_3000 ^ ((u as u64) << 8) ^ s;
                let own = recorder.record(user, Condition::Normal, cal_seed);
                if let Response::Decision { distance, .. } = service.handle(&Request::Verify {
                    user_id: user.id,
                    probe: own,
                }) {
                    genuine_cal.push(distance);
                }
                let other = &users[(u + 1) % users.len()];
                let foreign = recorder.record(other, Condition::Normal, cal_seed ^ 0x77);
                if let Response::Decision { distance, .. } = service.handle(&Request::Verify {
                    user_id: user.id,
                    probe: foreign,
                }) {
                    impostor_cal.push(distance);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let (genuine_mean, impostor_mean) = (mean(&genuine_cal), mean(&impostor_cal));
        if impostor_mean > genuine_mean {
            service.system_mut().config_mut().threshold = (genuine_mean + impostor_mean) / 2.0;
        }
        monitor.extend_baseline(&genuine_cal);
        monitor.freeze_baseline();
        monitor.reset_windows();
        Ok(service)
    };

    // ----- Phase 1 + 2: capacity, then an open-loop sweep ------------
    // The sweep server runs with a queue bound of `workers`: waiting
    // depth caps at one queued connection per worker, so admitted
    // queue wait — and with it the admitted p99 — stays bounded no
    // matter how far past capacity the offered load goes. Everything
    // above the bound becomes a typed `overloaded` shed.
    let sweep_monitor: &'static mandipass_telemetry::Monitor =
        Box::leak(Box::new(mandipass_telemetry::Monitor::default()));
    let service = std::sync::Arc::new(build_service(
        mandipass_serve::BreakerConfig::disabled(),
        sweep_monitor,
    )?);
    let mut server = VerifyServer::bind(
        std::sync::Arc::clone(&service),
        "127.0.0.1:0",
        ServeConfig {
            workers,
            queue_capacity: workers,
            ..ServeConfig::default()
        },
    )
    .expect("bind overload sweep server on loopback");
    let addr = server.local_addr();

    // Capacity is the SERVICE rate, so the closed-loop probe must keep
    // every worker busy: `workers` clients alone under-measure it
    // (client-side turnaround idles workers), which would make the
    // "2.4x capacity" overload point barely saturate and the shed
    // counts flaky. 2x workers fills both the workers and the queue
    // bound exactly.
    let closed_config = LoadConfig {
        clients: workers * 2,
        requests_per_client: (requests / (workers * 2)).max(8),
        seed,
        ..LoadConfig::default()
    };
    let closed = run_load(
        &LoadTarget::Tcp(addr),
        &users,
        &recorder,
        &closed_config,
        None,
    );
    let capacity_qps = closed.qps.max(1.0);

    let mix = TrafficMix::default();
    let fault_intensity = LoadConfig::default().fault_intensity;
    let policy_batch = LoadConfig::default().policy_batch;
    let open_point = |rate: f64, total: usize, senders: usize| OpenLoopConfig {
        rate_per_sec: rate,
        total_requests: total,
        senders,
        mix,
        fault_intensity,
        policy_batch,
        seed,
        deadline_ms: None,
    };
    // 2.75x capacity offered (gate: >= 2x ACHIEVED) leaves headroom
    // for sender lag — at saturation a sender's turnaround includes
    // the admitted tail, so achieved sags a few percent below offered.
    // The overload point runs 3x the requests of the unsaturated one:
    // its window is what both the saturation ratio and the admitted
    // p99 are judged over, and a window of tens of milliseconds would
    // let a single scheduler stall decide the verdict.
    let unsaturated = run_open_loop(
        addr,
        &users,
        &recorder,
        &open_point(capacity_qps * 0.8, requests, 8),
    );
    let overload = run_open_loop(
        addr,
        &users,
        &recorder,
        &open_point(capacity_qps * 2.75, requests * 3, 32),
    );
    server.shutdown();

    // Parity: every admitted (served) open-loop outcome must carry the
    // same decision signature as an in-process replay of the exact
    // request `plan_indexed_request` assigns to that index — overload
    // may change WHETHER a request is served, never WHAT is decided.
    let mut parity_checked = 0u64;
    let mut parity_mismatches = 0u64;
    for report in [&unsaturated, &overload] {
        for (index, outcome) in report.outcomes.iter().enumerate() {
            if let OpenOutcome::Served { signature } = outcome {
                let (request, _) = plan_indexed_request(
                    seed,
                    index,
                    &users,
                    &recorder,
                    mix,
                    fault_intensity,
                    policy_batch,
                );
                let replay = outcome_signature(&service.handle(&request));
                parity_checked += 1;
                if *signature != replay {
                    parity_mismatches += 1;
                }
            }
        }
    }
    let saturation_ratio = overload.achieved_rate / capacity_qps;
    // Unsaturated tail reference: the larger of the two unsaturated
    // probes (closed-loop at capacity, open-loop at 0.8x). Either
    // alone is a p99 over ~a hundred samples — one scheduler stall on
    // a shared box moves it severalfold; the max is the honest "what
    // does the tail look like when the queue is not the bottleneck".
    let unsat_p99 = unsaturated.latency.p99.max(closed.latency.p99).max(1e-9);
    let p99_ratio = overload.latency.p99 / unsat_p99;
    let transport_errors = unsaturated.transport_errors + overload.transport_errors;

    // ----- Phase 3: deterministic breaker drill ----------------------
    // A fixed request script against a tight breaker: drift alarm ->
    // Degraded overlay (policy-only), recovery; then four blown
    // deadlines -> Open, two fast-rejects of cooldown, and two probes
    // -> Closed. Run twice from identical deployments; the sequences
    // must match bit-for-bit.
    let drill = || -> Result<(Vec<String>, Vec<String>, u64, u64), MandiPassError> {
        let monitor: &'static mandipass_telemetry::Monitor =
            Box::leak(Box::new(mandipass_telemetry::Monitor::default()));
        let breaker_config = mandipass_serve::BreakerConfig {
            enabled: true,
            window: 8,
            min_failures: 4,
            open_threshold: 0.5,
            cooldown_rejects: 3,
            probe_interval: 1,
            close_after: 2,
            retry_after_ms: 25,
        };
        let service = std::sync::Arc::new(build_service(breaker_config, monitor)?);
        let mut server = VerifyServer::bind(
            std::sync::Arc::clone(&service),
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .expect("bind overload drill server on loopback");
        let addr = server.local_addr();
        let user = &users[0];
        let probe = recorder.record(user, Condition::Normal, 0x0d41_0001);
        let verify = Request::Verify {
            user_id: user.id,
            probe: probe.clone(),
        };
        let policy = Request::VerifyWithPolicy {
            user_id: user.id,
            probes: vec![probe],
        };
        let shed_deadline_before = mandipass_telemetry::metrics().counter("serve.shed.deadline");
        let shed_breaker_before = mandipass_telemetry::metrics().counter("serve.shed.breaker");
        let (deadline0, breaker0) = (shed_deadline_before.get(), shed_breaker_before.get());
        // One fresh connection per request: queue wait is attributed to
        // a connection's FIRST request, which is what a `deadline_ms`
        // of 0 must always lose against.
        let shot = |request: &Request, deadline_ms: Option<u64>| -> String {
            let mut client = VerifyClient::connect(addr).expect("connect to overload drill server");
            let (response, _) = client
                .call_with_options(request, None, deadline_ms)
                .expect("drill request must get a typed reply, never a transport error");
            outcome_signature(&response)
        };
        let mut kinds = Vec::new();
        // Drift alarm: a burst of far, rejected decisions trips the
        // windowed reject-rate + PSI alarm deterministically.
        for _ in 0..16 {
            monitor.observe_decision(0.9, false, false);
        }
        kinds.push(shot(&verify, None)); // degraded_only: overlay up
        kinds.push(shot(&policy, None)); // policy path still served
        monitor.reset_windows(); // drift recovers
        kinds.push(shot(&verify, None)); // served: overlay down
        for _ in 0..4 {
            kinds.push(shot(&verify, Some(0))); // blown budget -> shed
        }
        kinds.push(shot(&verify, None)); // open: fast-reject 1
        kinds.push(shot(&verify, None)); // open: fast-reject 2
        kinds.push(shot(&verify, None)); // cooldown done -> probe 1
        kinds.push(shot(&verify, None)); // probe 2 -> closed
        let history = service.breaker().history();
        let shed_deadline = shed_deadline_before.get() - deadline0;
        let shed_breaker = shed_breaker_before.get() - breaker0;
        server.shutdown();
        Ok((kinds, history, shed_deadline, shed_breaker))
    };
    let run_a = drill()?;
    let run_b = drill()?;
    let runs_identical = run_a == run_b;
    let (kinds, history, shed_deadline, shed_breaker) = run_a;
    let opened = history.iter().any(|l| l.contains("->open:"));
    let recovered = history
        .iter()
        .any(|l| l.contains("->closed:probes_recovered"));

    // ----- Document --------------------------------------------------
    let scale_desc =
        format!("{requests} open-loop requests per point, {workers} workers, queue {workers}");
    let mut overload_section = match overload.to_json() {
        Value::Object(fields) => fields,
        _ => unreachable!("OpenLoopReport::to_json returns an object"),
    };
    overload_section.push((
        "saturation_ratio".to_string(),
        Value::Number(saturation_ratio),
    ));
    overload_section.push((
        "p99_ratio_vs_unsaturated".to_string(),
        Value::Number(p99_ratio),
    ));
    overload_section.push((
        "parity_checked".to_string(),
        Value::Number(parity_checked as f64),
    ));
    overload_section.push((
        "parity_mismatches".to_string(),
        Value::Number(parity_mismatches as f64),
    ));
    let doc = Value::Object(vec![
        (
            "schema".to_string(),
            Value::String(crate::load::BENCH_OVERLOAD_SCHEMA.to_string()),
        ),
        ("scale".to_string(), Value::String(scale_desc.clone())),
        ("seed".to_string(), Value::Number(seed as f64)),
        (
            "capacity".to_string(),
            Value::Object(vec![
                ("qps".to_string(), Value::Number(capacity_qps)),
                (
                    "p99_seconds".to_string(),
                    Value::Number(closed.latency.p99.max(1e-9)),
                ),
            ]),
        ),
        (
            "sweep".to_string(),
            Value::Array(vec![unsaturated.to_json(), overload.to_json()]),
        ),
        ("overload".to_string(), Value::Object(overload_section)),
        (
            "drill".to_string(),
            Value::Object(vec![
                (
                    "transitions".to_string(),
                    Value::Array(history.iter().cloned().map(Value::String).collect()),
                ),
                (
                    "responses".to_string(),
                    Value::Array(kinds.iter().cloned().map(Value::String).collect()),
                ),
                (
                    "shed_deadline".to_string(),
                    Value::Number(shed_deadline as f64),
                ),
                (
                    "shed_breaker".to_string(),
                    Value::Number(shed_breaker as f64),
                ),
                ("runs_identical".to_string(), Value::Bool(runs_identical)),
            ]),
        ),
    ]);

    // ----- Report ----------------------------------------------------
    let mut table = ReportTable::new("Overload: bounded admission, shedding, breaker drill");
    table.push(
        ExperimentRecord::new(
            "Overload",
            "closed-loop capacity measured",
            "> 0 req/s",
            format!("{capacity_qps:.0} req/s"),
            capacity_qps > 0.0,
        )
        .with_note(scale_desc),
    );
    table.push(
        ExperimentRecord::new(
            "Overload",
            "offered load saturates the deployment",
            ">= 2x capacity",
            format!("{saturation_ratio:.2}x achieved"),
            saturation_ratio >= 2.0,
        )
        .with_note(format!(
            "offered {:.0} req/s, achieved {:.0} req/s",
            overload.offered_rate, overload.achieved_rate
        )),
    );
    table.push(
        ExperimentRecord::new(
            "Overload",
            "excess load shed as typed replies",
            "sheds > 0, transport errors = 0",
            format!(
                "{} overloaded / {} deadline sheds, {transport_errors} transport errors",
                overload.shed_overloaded, overload.shed_deadline
            ),
            overload.shed_overloaded > 0 && transport_errors == 0,
        )
        .with_note("a saturated server must refuse loudly, never hang up"),
    );
    table.push(ExperimentRecord::new(
        "Overload",
        "admitted p99 bounded under saturation",
        "<= 5x unsaturated p99",
        format!(
            "{:.1} ms vs {:.1} ms ({p99_ratio:.2}x)",
            overload.latency.p99 * 1e3,
            unsat_p99 * 1e3
        ),
        p99_ratio <= 5.0,
    ));
    table.push(
        ExperimentRecord::new(
            "Overload",
            "admitted decisions match closed-loop replay",
            "0 mismatches",
            format!("{parity_mismatches} of {parity_checked} compared"),
            parity_checked > 0 && parity_mismatches == 0,
        )
        .with_note("overload may change whether a request is served, never what is decided"),
    );
    table.push(
        ExperimentRecord::new(
            "Overload",
            "breaker drill opens and recovers",
            "closed->open, ...->closed",
            history.join(", "),
            opened && recovered,
        )
        .with_note(format!(
            "drill sheds: {shed_deadline} deadline, {shed_breaker} breaker"
        )),
    );
    table.push(ExperimentRecord::new(
        "Overload",
        "drill is deterministic across runs",
        "identical sequences",
        if runs_identical {
            "identical".to_string()
        } else {
            "diverged".to_string()
        },
        runs_identical,
    ));
    table.push(ExperimentRecord::new(
        "Overload",
        "BENCH_overload.json validates against schema",
        "ok",
        match validate_bench_overload(&doc) {
            Ok(()) => "ok".to_string(),
            Err(e) => e,
        },
        validate_bench_overload(&doc).is_ok(),
    ));
    Ok((table, doc))
}

/// One plain HTTP GET against a loopback server; returns the body.
fn http_get_body(addr: std::net::SocketAddr, path: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| e.to_string())?;
    raw.split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| "no header/body separator in HTTP response".to_string())
}

/// End-to-end request tracing: traced TCP load against an enrolled
/// deployment, with the latency-attribution report and the sampled
/// trace-store invariants the ISSUE acceptance criteria name — every
/// sampled trace's stage durations sum to within its total, error and
/// degraded requests always carry the captured pipeline span tree, the
/// trace id echoed to the client locates the same trace over a real
/// `GET /traces`, and the probabilistic sampler is a bit-identical,
/// order-independent function of the id.
pub fn exp_trace(
    stack: &mut TrainedStack,
    threshold: f64,
) -> Result<(ReportTable, Value), MandiPassError> {
    let _span = mandipass_telemetry::span("exp_trace");
    const COHORT: usize = 4;
    let env_usize = |name: &str, default: usize| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let clients = env_usize("MANDIPASS_SERVE_CLIENTS", 4).max(1);
    let requests = env_usize("MANDIPASS_SERVE_REQUESTS", 16).max(1);
    let workers = env_usize("MANDIPASS_SERVE_WORKERS", 4).max(1);

    // A private monitor: the trace store under test must contain exactly
    // this experiment's requests.
    let monitor: &'static mandipass_telemetry::Monitor =
        Box::leak(Box::new(mandipass_telemetry::Monitor::default()));
    let users: Vec<UserProfile> = stack
        .population
        .users()
        .iter()
        .take(COHORT)
        .cloned()
        .collect();
    let recorder = stack.recorder.clone();
    let config = PipelineConfig {
        threshold,
        ..PipelineConfig::default()
    };
    let mut auth = MandiPass::new(stack.extractor.clone(), config);
    auth.set_monitor(monitor);
    let dim = auth.embedding_dim();
    let mut service = VerifyService::new(auth, VerifyPolicy::default());
    for user in &users {
        let matrix = GaussianMatrix::generate(0x7217 ^ u64::from(user.id), dim);
        let recs: Vec<Recording> = (0..4u64)
            .map(|s| {
                recorder.record(
                    user,
                    Condition::Normal,
                    0x7217_0000 ^ (u64::from(user.id) << 8) ^ s,
                )
            })
            .collect();
        service.enroll(user.id, &recs, matrix)?;
    }
    // Same post-enrolment calibration as `exp_serve`: freeze the drift
    // baseline on live genuine distances and recalibrate the threshold
    // from this deployment's own genuine-vs-impostor gap.
    let mut genuine_cal = Vec::new();
    let mut impostor_cal = Vec::new();
    for (u, user) in users.iter().enumerate() {
        for s in 0..4u64 {
            let seed = 0x7217_3000 ^ ((u as u64) << 8) ^ s;
            let own = recorder.record(user, Condition::Normal, seed);
            if let Response::Decision { distance, .. } = service.handle(&Request::Verify {
                user_id: user.id,
                probe: own,
            }) {
                genuine_cal.push(distance);
            }
            let other = &users[(u + 1) % users.len()];
            let foreign = recorder.record(other, Condition::Normal, seed ^ 0x77);
            if let Response::Decision { distance, .. } = service.handle(&Request::Verify {
                user_id: user.id,
                probe: foreign,
            }) {
                impostor_cal.push(distance);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let (genuine_mean, impostor_mean) = (mean(&genuine_cal), mean(&impostor_cal));
    if impostor_mean > genuine_mean {
        service.system_mut().config_mut().threshold = (genuine_mean + impostor_mean) / 2.0;
    }
    monitor.extend_baseline(&genuine_cal);
    monitor.freeze_baseline();
    // Calibration traffic committed traces too; judge only the load.
    monitor.reset_windows();

    let service = std::sync::Arc::new(service);
    let mut server = VerifyServer::bind(
        std::sync::Arc::clone(&service),
        "127.0.0.1:0",
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
    )
    .expect("bind verify server on loopback");
    // The monitor's own HTTP listener: the /traces assertion below goes
    // over a real socket, not a method call.
    let http_addr =
        std::env::var("MANDIPASS_TRACE_HTTP_ADDR").unwrap_or_else(|_| "127.0.0.1:0".into());
    let mut http = MonitorServer::bind(monitor, &http_addr).expect("bind monitor HTTP listener");

    let load_config = LoadConfig {
        clients,
        requests_per_client: requests,
        seed: 0x7217_4e20,
        ..LoadConfig::default()
    };
    let tcp = run_load(
        &LoadTarget::Tcp(server.local_addr()),
        &users,
        &recorder,
        &load_config,
        Some(monitor),
    );

    // Two targeted requests with caller-chosen ids: an error (unknown
    // user) and a degraded candidate (stuck gyro through the policy
    // path) — the classes the sampler must never drop.
    let mut client = VerifyClient::connect(server.local_addr()).expect("connect trace client");
    let error_id = 0x7217_0000_0000_0e01_u64;
    let probe = recorder.record(&users[0], Condition::Normal, 0x7217_5001);
    let (error_resp, error_echo) = client
        .call_traced(
            &Request::Verify {
                user_id: 999_999,
                probe,
            },
            Some(error_id),
        )
        .expect("traced error request");
    let degraded_id = 0x7217_0000_0000_0e02_u64;
    let clean = recorder.record(&users[0], Condition::Normal, 0x7217_5002);
    let mut axes = clean.axes().to_vec();
    let frozen = axes[3][0];
    for v in axes[3].iter_mut() {
        *v = frozen;
    }
    let gyro_fault = Recording::from_parts(
        clean.sample_rate_hz(),
        axes,
        clean.condition(),
        clean.user_id(),
    )
    .expect("gyro-fault recording stays well-formed");
    let (_, degraded_echo) = client
        .call_traced(
            &Request::VerifyWithPolicy {
                user_id: users[0].id,
                probes: vec![gyro_fault],
            },
            Some(degraded_id),
        )
        .expect("traced degraded request");
    // Traces commit just after the response write; give the workers a
    // beat before reading the store.
    for _ in 0..200 {
        if monitor.find_trace(degraded_id).is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let traces = monitor.traces();
    let stage_sums_ok =
        !traces.is_empty() && traces.iter().all(|t| t.stage_nanos() <= t.total_nanos);
    let error_degraded: Vec<&RequestTrace> = traces
        .iter()
        .filter(|t| t.is_error() || t.is_degraded())
        .collect();
    let spans_ok = !error_degraded.is_empty() && error_degraded.iter().all(|t| t.spans.is_some());
    let echoed_unique = {
        let mut ids = tcp.trace_ids.clone();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        before == tcp.trace_ids.len() && ids.len() == before
    };
    assert!(matches!(error_resp, Response::Error { .. }));
    assert_eq!(error_echo, Some(error_id), "error trace id must echo");
    assert_eq!(
        degraded_echo,
        Some(degraded_id),
        "degraded trace id must echo"
    );

    // The id the client got back locates the same trace over real HTTP.
    let http_located = http_get_body(http.local_addr(), "/traces")
        .ok()
        .and_then(|body| mandipass_util::json::parse(&body).ok())
        .and_then(|doc| {
            doc.get("traces").and_then(|list| match list {
                Value::Array(items) => Some(items.iter().any(|t| {
                    t.get("trace_id").and_then(Value::as_str)
                        == Some(format_trace_id(error_id)).as_deref()
                })),
                _ => None,
            })
        })
        .unwrap_or(false);

    // The probabilistic sampler is a pure function of (seed, id): two
    // replays of the echoed ids keep bit-identical stores, and a
    // reversed replay keeps the same id set.
    let sampler_config = TraceConfig {
        capacity: (tcp.trace_ids.len() + 1).max(8),
        sample_rate: 0.5,
        slow_threshold_nanos: u64::MAX,
        seed: 0x7217_0005,
    };
    let replay = |ids: &[u64]| {
        let mut store = TraceStore::new(sampler_config.clone());
        for &id in ids {
            let mut t = RequestTrace::new(id, "verify", "accepted");
            t.stage("verify", 1);
            store.offer_at(0, t);
        }
        store
    };
    let first = replay(&tcp.trace_ids);
    let second = replay(&tcp.trace_ids);
    let bit_identical = first.to_json().to_json() == second.to_json().to_json();
    let mut reversed_ids = tcp.trace_ids.clone();
    reversed_ids.reverse();
    let reversed = replay(&reversed_ids);
    let sorted_ids = |store: &TraceStore| {
        let mut ids: Vec<u64> = store.traces().iter().map(|t| t.trace_id).collect();
        ids.sort_unstable();
        ids
    };
    let order_independent = sorted_ids(&first) == sorted_ids(&reversed);
    let sampler_thinned = first.len() < tcp.trace_ids.len();

    let attribution = trace_attribution(monitor, 5);
    let doc = Value::Object(vec![
        (
            "schema".to_string(),
            Value::String(BENCH_TRACE_SCHEMA.to_string()),
        ),
        (
            "scale".to_string(),
            Value::String(format!(
                "{clients} clients x {requests} requests, {workers} workers"
            )),
        ),
        ("requests".to_string(), Value::Number(tcp.requests as f64)),
        (
            "echoed_ids".to_string(),
            Value::Number(tcp.trace_ids.len() as f64),
        ),
        ("attribution".to_string(), attribution.clone()),
        (
            "store".to_string(),
            monitor
                .snapshot()
                .get("traces")
                .cloned()
                .unwrap_or(Value::Null),
        ),
        (
            "checks".to_string(),
            Value::Object(
                [
                    ("stage_sums_within_total", stage_sums_ok),
                    ("error_degraded_have_spans", spans_ok),
                    ("http_locates_echoed_trace", http_located),
                    ("echoed_ids_unique", echoed_unique),
                    ("sampling_bit_identical", bit_identical),
                    ("sampling_order_independent", order_independent),
                ]
                .into_iter()
                .map(|(k, v)| (k.to_string(), Value::Bool(v)))
                .collect(),
            ),
        ),
    ]);

    let mut table = ReportTable::new("Trace: end-to-end request tracing over TCP");
    table.push(
        ExperimentRecord::new(
            "Trace",
            "every echoed id is unique",
            format!("{} distinct ids", tcp.trace_ids.len()),
            if echoed_unique {
                "unique"
            } else {
                "duplicates"
            }
            .to_string(),
            echoed_unique && !tcp.trace_ids.is_empty(),
        )
        .with_note("TCP load rides call_traced; the server echoes each request's id"),
    );
    table.push(ExperimentRecord::new(
        "Trace",
        "stage durations sum to within the total",
        "queue_wait + decode + verify + write <= total",
        if stage_sums_ok { "holds" } else { "violated" }.to_string(),
        stage_sums_ok,
    ));
    table.push(ExperimentRecord::new(
        "Trace",
        "error/degraded traces carry the pipeline span tree",
        "> 0 such traces, all with spans",
        format!("{} traces", error_degraded.len()),
        spans_ok,
    ));
    table.push(
        ExperimentRecord::new(
            "Trace",
            "echoed id locates the trace via GET /traces",
            "found over HTTP",
            if http_located { "found" } else { "missing" }.to_string(),
            http_located,
        )
        .with_note(format!("queried {}", http.local_addr())),
    );
    table.push(
        ExperimentRecord::new(
            "Trace",
            "sampling is deterministic and order-independent",
            "two runs bit-identical, reversal invariant",
            format!(
                "bit-identical: {bit_identical}, order-independent: {order_independent}, \
                 kept {}/{}",
                first.len(),
                tcp.trace_ids.len()
            ),
            bit_identical && order_independent && sampler_thinned,
        )
        .with_note("replayed the echoed ids through two fresh stores at rate 0.5"),
    );
    let p99_attributed = attribution
        .get("stages")
        .and_then(|s| s.get("verify"))
        .and_then(|v| v.get("p99_nanos"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    table.push(ExperimentRecord::new(
        "Trace",
        "attribution report covers the verify stage",
        "p99 > 0 ns",
        format!("{:.0} ns", p99_attributed),
        p99_attributed > 0.0,
    ));
    table.push(ExperimentRecord::new(
        "Trace",
        "BENCH_trace.json validates against schema",
        "ok",
        match validate_bench_trace(&doc) {
            Ok(()) => "ok".to_string(),
            Err(e) => e,
        },
        validate_bench_trace(&doc).is_ok(),
    ));

    // Optional hold for CI: keep both listeners alive so an external
    // probe can curl /metrics and /traces while the process is up.
    if let Some(secs) = std::env::var("MANDIPASS_TRACE_HOLD_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|s| *s > 0)
    {
        println!("TRACE_HTTP: {}", http.local_addr());
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }
    server.shutdown();
    http.shutdown();
    Ok((table, doc))
}
