//! The transport-free request handler.
//!
//! [`VerifyService`] owns an enrolled [`MandiPass`] deployment plus the
//! per-user Gaussian matrices and answers [`Request`] values directly.
//! Both fronts go through [`VerifyService::handle`] — the TCP workers in
//! [`crate::server`] and in-process callers like the bench load
//! generator — so decisions, telemetry (`serve.requests` /
//! `serve.errors` counters, the `serve.request_seconds` latency
//! histogram, a `serve_request` span per request), and the drift-monitor
//! feed are identical regardless of transport.
//!
//! All request handling is `&self`: enrolment happens before the
//! service is shared, then worker threads verify concurrently against
//! the same templates (the enclave serialises its own audit trail; the
//! extractor's inference path is read-only).

use std::collections::BTreeMap;
use std::time::Instant;

use mandipass::prelude::*;
use mandipass_imu_sim::Recording;

use crate::protocol::{Request, Response};

/// The enrolled deployment behind the server.
#[derive(Debug)]
pub struct VerifyService {
    system: MandiPass,
    matrices: BTreeMap<u32, GaussianMatrix>,
    policy: VerifyPolicy,
}

impl VerifyService {
    /// Wraps a deployment. Enrol users with [`VerifyService::enroll`]
    /// before sharing the service with workers.
    pub fn new(system: MandiPass, policy: VerifyPolicy) -> Self {
        VerifyService {
            system,
            matrices: BTreeMap::new(),
            policy,
        }
    }

    /// Enrols `user_id` and retains the Gaussian matrix the server will
    /// apply to that user's future probes (the cancelable-template
    /// secret stays server-side, like the templates themselves).
    ///
    /// # Errors
    ///
    /// Propagates enrolment failures; the matrix is only retained on
    /// success.
    pub fn enroll(
        &mut self,
        user_id: u32,
        recordings: &[Recording],
        matrix: GaussianMatrix,
    ) -> Result<(), MandiPassError> {
        self.system.enroll(user_id, recordings, &matrix)?;
        self.matrices.insert(user_id, matrix);
        Ok(())
    }

    /// The wrapped deployment.
    pub fn system(&self) -> &MandiPass {
        &self.system
    }

    /// Mutable deployment access for pre-share set-up (threshold
    /// calibration, monitor rebinding).
    pub fn system_mut(&mut self) -> &mut MandiPass {
        &mut self.system
    }

    /// Number of enrolled identities.
    pub fn enrolled(&self) -> usize {
        self.matrices.len()
    }

    /// Answers one request. Never panics; failures become
    /// [`Response::Error`] with a stable `kind`.
    pub fn handle(&self, request: &Request) -> Response {
        let start = Instant::now();
        let _span = mandipass_telemetry::span("serve_request");
        mandipass_telemetry::counter!("serve.requests").inc();
        let response = self.dispatch(request);
        mandipass_telemetry::histogram!("serve.request_seconds")
            .observe(start.elapsed().as_secs_f64());
        if matches!(response, Response::Error { .. }) {
            mandipass_telemetry::counter!("serve.errors").inc();
        }
        response
    }

    fn dispatch(&self, request: &Request) -> Response {
        match request {
            Request::Health => Response::Health {
                health: self.system.monitor().health().to_json(),
                enrolled: self.enrolled(),
            },
            Request::Verify { user_id, probe } => {
                let Some(matrix) = self.matrices.get(user_id) else {
                    return not_enrolled(*user_id);
                };
                match self.system.verify(*user_id, probe, matrix) {
                    Ok(outcome) => Response::Decision {
                        accepted: outcome.accepted,
                        distance: outcome.distance,
                        threshold: outcome.threshold,
                        degraded: false,
                        attempts: 1,
                        rejects: Vec::new(),
                    },
                    Err(e) => error_response(&e),
                }
            }
            Request::VerifyWithPolicy { user_id, probes } => {
                let Some(matrix) = self.matrices.get(user_id) else {
                    return not_enrolled(*user_id);
                };
                match self
                    .system
                    .verify_with_policy(*user_id, probes, matrix, &self.policy)
                {
                    Ok(decision) => Response::Decision {
                        accepted: decision.outcome.accepted,
                        distance: decision.outcome.distance,
                        threshold: decision.outcome.threshold,
                        degraded: decision.degraded,
                        attempts: decision.attempts,
                        rejects: decision.rejects,
                    },
                    Err(e) => error_response(&e),
                }
            }
        }
    }
}

fn not_enrolled(user_id: u32) -> Response {
    Response::Error {
        kind: "not_enrolled".to_string(),
        message: format!("user {user_id} has no template"),
    }
}

fn error_response(error: &MandiPassError) -> Response {
    Response::Error {
        kind: error.label().to_string(),
        message: error.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_service;

    #[test]
    fn health_reports_enrolment_count() {
        let service = shared_service();
        match service.handle(&Request::Health) {
            Response::Health { enrolled, health } => {
                assert!(enrolled >= 1);
                assert!(health.get("status").is_some());
            }
            other => panic!("expected health, got {other:?}"),
        }
    }

    #[test]
    fn verify_accepts_a_genuine_probe_and_rejects_unknown_users() {
        let service = shared_service();
        let (user, probe) = crate::test_support::genuine_probe(17);
        match service.handle(&Request::Verify {
            user_id: user,
            probe: probe.clone(),
        }) {
            Response::Decision {
                distance, attempts, ..
            } => {
                assert!(distance.is_finite());
                assert_eq!(attempts, 1);
            }
            other => panic!("expected a decision, got {other:?}"),
        }
        match service.handle(&Request::Verify {
            user_id: 9999,
            probe,
        }) {
            Response::Error { kind, .. } => assert_eq!(kind, "not_enrolled"),
            other => panic!("expected not_enrolled, got {other:?}"),
        }
    }

    #[test]
    fn policy_verify_accepts_over_multiple_probes() {
        let service = shared_service();
        let (user, probes) = crate::test_support::genuine_probes(23, 3);
        match service.handle(&Request::VerifyWithPolicy {
            user_id: user,
            probes,
        }) {
            Response::Decision {
                accepted, attempts, ..
            } => {
                assert!(accepted, "three genuine probes must verify");
                assert!(attempts >= 1);
            }
            other => panic!("expected a decision, got {other:?}"),
        }
    }
}
