//! The transport-free request handler.
//!
//! [`VerifyService`] owns an enrolled [`MandiPass`] deployment plus the
//! per-user Gaussian matrices and answers [`Request`] values directly.
//! Both fronts go through [`VerifyService::handle`] /
//! [`VerifyService::handle_traced`] — the TCP workers in
//! [`crate::server`] and in-process callers like the bench load
//! generator — so decisions, telemetry (`serve.requests` /
//! `serve.errors` counters, the `serve.request_seconds` and
//! per-endpoint `serve.latency.*` histograms, a `serve_request` span
//! per request), and the drift-monitor feed are identical regardless of
//! transport.
//!
//! Every request runs under a trace id (client-supplied or freshly
//! minted), inside a [`mandipass_telemetry::trace::scope`] so flight
//! records in the policy path pick the id up, and wrapped in
//! `span::try_capture` so the pipeline's span tree lands in the
//! [`RequestTrace`] the handler offers to the monitor's sampled trace
//! store. The TCP front measures the wire stages (queue wait, frame
//! decode, response write) around the handler via [`WireTiming`] and
//! [`PendingTrace::commit`]; in-process callers get a verify-only
//! stage breakdown for free.
//!
//! All request handling is `&self`: enrolment happens before the
//! service is shared, then worker threads verify concurrently against
//! the same templates (the enclave serialises its own audit trail; the
//! extractor's inference path is read-only).

use std::collections::BTreeMap;
use std::time::Instant;

use mandipass::prelude::*;
use mandipass_imu_sim::Recording;
use mandipass_telemetry::{trace, Monitor, RequestTrace};
use mandipass_util::json::Value;

use crate::breaker::{Admission, BreakerConfig, CircuitBreaker, RequestClass};
use crate::protocol::{self, Request, Response};

/// Wire-stage timings the TCP front measured before the handler ran;
/// in-process callers use the zeroed [`Default`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireTiming {
    /// Time the connection waited between `accept()` and a worker
    /// picking it up (first request on a connection only).
    pub queue_wait_nanos: u64,
    /// Time spent parsing the request frame.
    pub decode_nanos: u64,
}

/// A [`RequestTrace`] the handler built but has not recorded yet: the
/// TCP front still owes the response encode+write timing. Committing
/// appends the `write` stage, fixes the total, and offers the trace to
/// the monitor's sampled store.
#[derive(Debug)]
#[must_use = "an uncommitted trace is never recorded"]
pub struct PendingTrace {
    trace: RequestTrace,
}

impl PendingTrace {
    /// A trace for a frame that never parsed into a [`Request`]; the
    /// decision is `error:bad_request`, so the sampler always keeps it.
    pub fn bad_request(trace_id: u64, timing: WireTiming) -> Self {
        let mut trace = RequestTrace::new(trace_id, "bad_request", "error:bad_request");
        if timing.queue_wait_nanos > 0 {
            trace.stage("queue_wait", timing.queue_wait_nanos);
        }
        trace.stage("decode", timing.decode_nanos);
        PendingTrace { trace }
    }

    /// A trace for a request shed before dispatch (blown deadline,
    /// shutdown drain); the decision is `error:{kind}`, so the sampler
    /// always keeps it.
    pub fn shed(trace_id: u64, kind: &str, timing: WireTiming) -> Self {
        let mut trace = RequestTrace::new(trace_id, "shed", &format!("error:{kind}"));
        if timing.queue_wait_nanos > 0 {
            trace.stage("queue_wait", timing.queue_wait_nanos);
        }
        trace.stage("decode", timing.decode_nanos);
        PendingTrace { trace }
    }

    /// The trace id this pending record carries.
    pub fn trace_id(&self) -> u64 {
        self.trace.trace_id
    }

    /// Appends the `write` stage, sets the end-to-end total (clamped so
    /// stage sums never exceed it), and offers the trace to `monitor`'s
    /// store; returns whether the sampler kept it.
    pub fn commit(mut self, monitor: &Monitor, write_nanos: u64, total_nanos: u64) -> bool {
        self.trace.stage("write", write_nanos);
        self.trace.total_nanos = total_nanos.max(self.trace.stage_nanos());
        monitor.record_trace(self.trace)
    }
}

/// The stable endpoint label of a request.
fn endpoint_label(request: &Request) -> &'static str {
    match request {
        Request::Health => "health",
        Request::Verify { .. } => "verify",
        Request::VerifyWithPolicy { .. } => "verify_policy",
    }
}

/// The breaker admission class of a request.
fn request_class(request: &Request) -> RequestClass {
    match request {
        Request::Health => RequestClass::Health,
        Request::Verify { .. } => RequestClass::Verify,
        Request::VerifyWithPolicy { .. } => RequestClass::VerifyPolicy,
    }
}

/// The stable decision label of a response (degraded decisions label as
/// `degraded` whichever way they went — the sampler always keeps them).
fn decision_label(response: &Response) -> String {
    match response {
        Response::Health { .. } => "ok".to_string(),
        Response::Decision { degraded: true, .. } => "degraded".to_string(),
        Response::Decision { accepted: true, .. } => "accepted".to_string(),
        Response::Decision { .. } => "rejected".to_string(),
        Response::Error { kind, .. } => format!("error:{kind}"),
    }
}

/// The enrolled deployment behind the server.
#[derive(Debug)]
pub struct VerifyService {
    system: MandiPass,
    matrices: BTreeMap<u32, GaussianMatrix>,
    policy: VerifyPolicy,
    breaker: CircuitBreaker,
}

impl VerifyService {
    /// Wraps a deployment with the default circuit-breaker
    /// configuration. Enrol users with [`VerifyService::enroll`] before
    /// sharing the service with workers.
    pub fn new(system: MandiPass, policy: VerifyPolicy) -> Self {
        Self::with_breaker(system, policy, BreakerConfig::default())
    }

    /// Wraps a deployment with an explicit breaker configuration
    /// ([`BreakerConfig::disabled`] for raw-shedding benches).
    pub fn with_breaker(system: MandiPass, policy: VerifyPolicy, breaker: BreakerConfig) -> Self {
        VerifyService {
            system,
            matrices: BTreeMap::new(),
            policy,
            breaker: CircuitBreaker::new(breaker),
        }
    }

    /// The service's circuit breaker (the server's shed paths feed it
    /// failures via `record_shed`; benches read its transition
    /// history).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Flushes breaker transitions recorded since the last flush to the
    /// `serve.breaker.state` gauge, the `serve.breaker.transitions`
    /// counter, the flight recorder, and the monitor's published
    /// breaker state (surfaced on `GET /health`).
    fn flush_breaker_events(&self) {
        for transition in self.breaker.take_transitions() {
            mandipass_telemetry::gauge!("serve.breaker.state").set(transition.to.gauge_value());
            mandipass_telemetry::counter!("serve.breaker.transitions").inc();
            self.system.monitor().observe_breaker_transition(
                transition.from.label(),
                transition.to.label(),
                transition.reason,
                self.breaker.state_json(),
            );
        }
    }

    /// Enrols `user_id` and retains the Gaussian matrix the server will
    /// apply to that user's future probes (the cancelable-template
    /// secret stays server-side, like the templates themselves).
    ///
    /// # Errors
    ///
    /// Propagates enrolment failures; the matrix is only retained on
    /// success.
    pub fn enroll(
        &mut self,
        user_id: u32,
        recordings: &[Recording],
        matrix: GaussianMatrix,
    ) -> Result<(), MandiPassError> {
        self.system.enroll(user_id, recordings, &matrix)?;
        self.matrices.insert(user_id, matrix);
        // Publish the (closed) breaker state so `GET /health` shows it
        // from the first request on, not only after a transition.
        if self.breaker.config().enabled {
            self.system
                .monitor()
                .set_breaker_state(self.breaker.state_json());
        }
        Ok(())
    }

    /// The wrapped deployment.
    pub fn system(&self) -> &MandiPass {
        &self.system
    }

    /// Mutable deployment access for pre-share set-up (threshold
    /// calibration, monitor rebinding).
    pub fn system_mut(&mut self) -> &mut MandiPass {
        &mut self.system
    }

    /// Deployment-time inference optimisation: fuses batch-norm running
    /// statistics into the preceding convolutions (see
    /// [`MandiPass::fuse`]). Decisions then match the unfused network to
    /// ≈1e-6 in embedding space, not bit for bit — call before sharing
    /// the service, and only when that tolerance is acceptable (the
    /// un-fused fast path is already zero-allocation and bit-exact).
    /// Returns the number of layers folded away.
    ///
    /// # Errors
    ///
    /// Propagates a pending-training-cache refusal from the extractor.
    pub fn optimize_for_inference(&mut self) -> Result<usize, MandiPassError> {
        self.system.fuse()
    }

    /// Number of enrolled identities.
    pub fn enrolled(&self) -> usize {
        self.matrices.len()
    }

    /// Answers one request. Never panics; failures become
    /// [`Response::Error`] with a stable `kind`. Mints a fresh trace id
    /// and commits the trace immediately (no wire stages) — the
    /// in-process front.
    pub fn handle(&self, request: &Request) -> Response {
        let start = Instant::now();
        let (response, pending) =
            self.handle_traced(request, trace::mint_id(), WireTiming::default());
        pending.commit(
            self.system.monitor(),
            0,
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        response
    }

    /// Answers one request under `trace_id`, returning the response
    /// together with the [`PendingTrace`] the caller must commit once
    /// it knows the response write timing. The id is active as the
    /// thread's [`trace::current`] for the duration, and the dispatch
    /// runs inside `span::try_capture`, so flight records pick up the
    /// id and the trace picks up the pipeline span tree.
    pub fn handle_traced(
        &self,
        request: &Request,
        trace_id: u64,
        timing: WireTiming,
    ) -> (Response, PendingTrace) {
        let _scope = trace::scope(trace_id);
        mandipass_telemetry::counter!("serve.requests").inc();
        if timing.queue_wait_nanos > 0 {
            mandipass_telemetry::histogram!("serve.queue_wait_seconds")
                .observe(timing.queue_wait_nanos as f64 / 1e9);
        }
        let start = Instant::now();
        let class = request_class(request);
        let admission = if self.breaker.config().enabled {
            // The health probe is cheap relative to a forward pass and
            // the overlay must react to the *live* drift verdict.
            let health = self.system.monitor().health().status;
            self.breaker.admit(health, class)
        } else {
            Admission::Admit
        };
        let (response, spans) = match admission {
            Admission::Admit | Admission::Probe => {
                let captured = mandipass_telemetry::try_capture(|| {
                    let _span = mandipass_telemetry::span("serve_request");
                    self.dispatch(request)
                });
                // Any produced response is successful service — system
                // faults (sheds) reach the breaker through the server's
                // `record_shed`, not through biometric outcomes.
                if class != RequestClass::Health {
                    self.breaker
                        .record_outcome(admission == Admission::Probe, false);
                }
                captured
            }
            Admission::RejectOpen { retry_after_ms } => {
                mandipass_telemetry::counter!("serve.shed.breaker").inc();
                (
                    Response::overloaded("circuit breaker open", retry_after_ms),
                    None,
                )
            }
            Admission::RejectDegraded => {
                mandipass_telemetry::counter!("serve.shed.breaker").inc();
                (
                    Response::error(
                        protocol::KIND_DEGRADED_ONLY,
                        "drift alarm: only verify_policy (accel-only fallback) is served",
                    ),
                    None,
                )
            }
        };
        self.flush_breaker_events();
        let verify_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let elapsed_secs = verify_nanos as f64 / 1e9;
        mandipass_telemetry::histogram!("serve.request_seconds").observe(elapsed_secs);
        let endpoint = endpoint_label(request);
        match endpoint {
            "health" => mandipass_telemetry::histogram!("serve.latency.health"),
            "verify" => mandipass_telemetry::histogram!("serve.latency.verify"),
            _ => mandipass_telemetry::histogram!("serve.latency.verify_policy"),
        }
        .observe(elapsed_secs);
        if matches!(response, Response::Error { .. }) {
            mandipass_telemetry::counter!("serve.errors").inc();
        }
        let mut trace = RequestTrace::new(trace_id, endpoint, &decision_label(&response));
        if timing.queue_wait_nanos > 0 {
            trace.stage("queue_wait", timing.queue_wait_nanos);
        }
        if timing.decode_nanos > 0 {
            trace.stage("decode", timing.decode_nanos);
        }
        trace.stage("verify", verify_nanos);
        trace.spans = spans;
        (response, PendingTrace { trace })
    }

    fn dispatch(&self, request: &Request) -> Response {
        match request {
            Request::Health => {
                let mut health = self.system.monitor().health().to_json();
                if let Value::Object(members) = &mut health {
                    members.push(("breaker".to_string(), self.breaker.state_json()));
                }
                Response::Health {
                    health,
                    enrolled: self.enrolled(),
                }
            }
            Request::Verify { user_id, probe } => {
                let Some(matrix) = self.matrices.get(user_id) else {
                    return not_enrolled(*user_id);
                };
                match self.system.verify(*user_id, probe, matrix) {
                    Ok(outcome) => Response::Decision {
                        accepted: outcome.accepted,
                        distance: outcome.distance,
                        threshold: outcome.threshold,
                        degraded: false,
                        attempts: 1,
                        rejects: Vec::new(),
                    },
                    Err(e) => error_response(&e),
                }
            }
            Request::VerifyWithPolicy { user_id, probes } => {
                let Some(matrix) = self.matrices.get(user_id) else {
                    return not_enrolled(*user_id);
                };
                match self
                    .system
                    .verify_with_policy(*user_id, probes, matrix, &self.policy)
                {
                    Ok(decision) => Response::Decision {
                        accepted: decision.outcome.accepted,
                        distance: decision.outcome.distance,
                        threshold: decision.outcome.threshold,
                        degraded: decision.degraded,
                        attempts: decision.attempts,
                        rejects: decision.rejects,
                    },
                    Err(e) => error_response(&e),
                }
            }
        }
    }
}

fn not_enrolled(user_id: u32) -> Response {
    Response::error("not_enrolled", format!("user {user_id} has no template"))
}

fn error_response(error: &MandiPassError) -> Response {
    Response::error(error.label(), error.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_service;

    #[test]
    fn health_reports_enrolment_count() {
        let service = shared_service();
        match service.handle(&Request::Health) {
            Response::Health { enrolled, health } => {
                assert!(enrolled >= 1);
                assert!(health.get("status").is_some());
            }
            other => panic!("expected health, got {other:?}"),
        }
    }

    #[test]
    fn verify_accepts_a_genuine_probe_and_rejects_unknown_users() {
        let service = shared_service();
        let (user, probe) = crate::test_support::genuine_probe(17);
        match service.handle(&Request::Verify {
            user_id: user,
            probe: probe.clone(),
        }) {
            Response::Decision {
                distance, attempts, ..
            } => {
                assert!(distance.is_finite());
                assert_eq!(attempts, 1);
            }
            other => panic!("expected a decision, got {other:?}"),
        }
        match service.handle(&Request::Verify {
            user_id: 9999,
            probe,
        }) {
            Response::Error { kind, .. } => assert_eq!(kind, "not_enrolled"),
            other => panic!("expected not_enrolled, got {other:?}"),
        }
    }

    #[test]
    fn handle_traced_records_a_sampled_trace_with_spans() {
        let service = shared_service();
        let monitor = service.system().monitor();
        let (user, probe) = crate::test_support::genuine_probe(61);
        let trace_id = trace::mint_id();
        let (response, pending) = service.handle_traced(
            &Request::Verify {
                user_id: user,
                probe,
            },
            trace_id,
            WireTiming {
                queue_wait_nanos: 1_000,
                decode_nanos: 2_000,
            },
        );
        assert!(matches!(response, Response::Decision { .. }));
        assert_eq!(pending.trace_id(), trace_id);
        assert!(
            pending.commit(monitor, 500, 10_000_000),
            "default sampler keeps every trace"
        );
        let trace = monitor
            .find_trace(trace_id)
            .unwrap_or_else(|| panic!("committed trace must be findable"));
        assert_eq!(trace.endpoint, "verify");
        assert!(trace.stage_nanos() <= trace.total_nanos);
        let stages: Vec<&str> = trace.stages.iter().map(|s| s.name).collect();
        assert_eq!(stages, ["queue_wait", "decode", "verify", "write"]);
        let spans = trace
            .spans
            .as_ref()
            .unwrap_or_else(|| panic!("an untraced worker thread must capture the pipeline spans"));
        assert_eq!(spans.count("serve_request"), 1);
        assert!(spans.count("verify") >= 1, "pipeline spans missing");
    }

    #[test]
    fn error_requests_are_always_traced_and_tag_no_spans_gap() {
        let service = shared_service();
        let monitor = service.system().monitor();
        let trace_id = trace::mint_id();
        let (_, probe) = crate::test_support::genuine_probe(62);
        let (response, pending) = service.handle_traced(
            &Request::Verify {
                user_id: 424_242,
                probe,
            },
            trace_id,
            WireTiming::default(),
        );
        assert!(matches!(response, Response::Error { .. }));
        assert!(pending.commit(monitor, 0, 0), "errors are always sampled");
        let trace = monitor.find_trace(trace_id).unwrap();
        assert_eq!(trace.decision, "error:not_enrolled");
        assert_eq!(trace.reason, Some(mandipass_telemetry::SampleReason::Error));
        assert!(trace.spans.is_some());
    }

    #[test]
    fn optimize_for_inference_preserves_decisions() {
        use mandipass_imu_sim::{Condition, Population, Recorder};
        // A fresh (untrained — cheap) deployment: fusion parity is a
        // property of the network transform, not of training quality.
        let pop = Population::generate(3, 909);
        let recorder = Recorder::default();
        let extractor = BiometricExtractor::new(ExtractorConfig::tiny(2)).unwrap();
        let system = MandiPass::new(extractor, PipelineConfig::default());
        let user = pop.users()[0].clone();
        let matrix = GaussianMatrix::generate(5, system.embedding_dim());
        let enrolment: Vec<Recording> = (0..3)
            .map(|s| recorder.record(&user, Condition::Normal, 700 + s))
            .collect();
        let mut service = VerifyService::new(system, VerifyPolicy::default());
        service.enroll(user.id, &enrolment, matrix).unwrap();
        let probe = recorder.record(&user, Condition::Normal, 777);

        let before = match service.handle(&Request::Verify {
            user_id: user.id,
            probe: probe.clone(),
        }) {
            Response::Decision {
                accepted, distance, ..
            } => (accepted, distance),
            other => panic!("expected a decision, got {other:?}"),
        };
        let folded = service.optimize_for_inference().unwrap();
        assert_eq!(folded, 6, "three batch norms per branch fold away");
        match service.handle(&Request::Verify {
            user_id: user.id,
            probe,
        }) {
            Response::Decision {
                accepted, distance, ..
            } => {
                assert_eq!(accepted, before.0, "fusion flipped the decision");
                assert!(
                    (distance - before.1).abs() < 1e-3,
                    "fused distance {distance} vs unfused {}",
                    before.1
                );
            }
            other => panic!("expected a decision, got {other:?}"),
        }
    }

    #[test]
    fn policy_verify_accepts_over_multiple_probes() {
        let service = shared_service();
        let (user, probes) = crate::test_support::genuine_probes(23, 3);
        match service.handle(&Request::VerifyWithPolicy {
            user_id: user,
            probes,
        }) {
            Response::Decision {
                accepted, attempts, ..
            } => {
                assert!(accepted, "three genuine probes must verify");
                assert!(attempts >= 1);
            }
            other => panic!("expected a decision, got {other:?}"),
        }
    }
}
