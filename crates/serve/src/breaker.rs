//! A health-coupled circuit breaker for the serving layer.
//!
//! The breaker is the serve stack's *admission policy* once overload or
//! drift is already happening: bounded admission (the server's queue)
//! sheds individual requests, while the breaker decides whether the
//! service should be accepting verify traffic at all.
//!
//! States:
//!
//! * **Closed** — normal operation, every request admitted.
//! * **Degraded** — not a stored state but an overlay: the machine is
//!   Closed while the drift [`Monitor`] reports `Alarm`. Only the
//!   policy path (with its accel-only fallback, the biometric layer's
//!   own degraded mode) and `health` are served; plain `verify` is
//!   fast-rejected with a typed `degraded_only` error.
//! * **Open** — the windowed failure rate (sheds + internal faults over
//!   the last [`BreakerConfig::window`] observed outcomes) crossed
//!   [`BreakerConfig::open_threshold`]. Verify traffic is fast-rejected
//!   with `overloaded` + `retry_after_ms`; after
//!   [`BreakerConfig::cooldown_rejects`] rejections the machine moves
//!   to HalfOpen.
//! * **HalfOpen** — deterministic probe admission: every
//!   [`BreakerConfig::probe_interval`]-th verify request is admitted as
//!   a probe, the rest are fast-rejected.
//!   [`BreakerConfig::close_after`] consecutive probe successes close
//!   the breaker; one probe failure reopens it.
//!
//! Everything is **count-based**, never wall-clock-based: the window is
//! a ring of the last N outcomes, cooldown counts rejections, and probe
//! admission counts requests. Two runs that observe the same outcome
//! sequence therefore produce bit-identical transition sequences — the
//! property `exp_overload`'s determinism assertion rests on.
//!
//! The breaker itself is transport-free; [`crate::service`] consults it
//! per request and flushes transition events to the drift monitor's
//! flight recorder, the `serve.breaker.state` gauge, and the
//! `serve.breaker.transitions` counter. The server's shed paths (queue
//! full, blown deadline) feed it failures via
//! [`CircuitBreaker::record_shed`] — deliberately *not* an
//! acceptor-side fast path, because cooldown and probe admission are
//! counted inside [`CircuitBreaker::admit`]: requests must keep
//! reaching the service for the breaker to ever recover.
//!
//! [`Monitor`]: mandipass_telemetry::Monitor

use std::sync::{Mutex, PoisonError};

use mandipass_telemetry::HealthStatus;
use mandipass_util::json::Value;

/// The externally visible breaker state (Degraded is the Closed machine
/// under a drift alarm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Drift alarm: only the policy path (accel-only fallback) and
    /// health are served.
    Degraded,
    /// Fast-rejecting all verify traffic.
    Open,
    /// Admitting deterministic probes to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case label for logs, flights, and `/health`.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Degraded => "degraded",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Numeric encoding for the `serve.breaker.state` gauge
    /// (0 closed, 1 degraded, 2 open, 3 half-open).
    pub fn gauge_value(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::Degraded => 1.0,
            BreakerState::Open => 2.0,
            BreakerState::HalfOpen => 3.0,
        }
    }
}

/// Breaker tuning knobs. Counts, not durations — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Master switch; a disabled breaker admits everything and records
    /// nothing (used by bench phases that measure raw shedding).
    pub enabled: bool,
    /// Ring of the last N observed outcomes the failure rate is judged
    /// over.
    pub window: usize,
    /// Minimum failures in the window before the rate is judged at all
    /// (a single early failure must not open a cold breaker).
    pub min_failures: usize,
    /// Failure fraction of the window that opens the breaker.
    pub open_threshold: f64,
    /// Fast-rejections counted in Open before moving to HalfOpen.
    pub cooldown_rejects: u64,
    /// In HalfOpen, admit every Nth verify request as a probe.
    pub probe_interval: u64,
    /// Consecutive probe successes that close the breaker.
    pub close_after: u64,
    /// The `retry_after_ms` hint attached to breaker fast-rejects.
    pub retry_after_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            window: 64,
            min_failures: 16,
            open_threshold: 0.5,
            cooldown_rejects: 16,
            probe_interval: 4,
            close_after: 3,
            retry_after_ms: 100,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never trips (admits everything, observes nothing).
    pub fn disabled() -> Self {
        BreakerConfig {
            enabled: false,
            ..BreakerConfig::default()
        }
    }
}

/// What kind of request is asking for admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// `health` — always admitted (operators must see a sick server).
    Health,
    /// Single-probe `verify` — gated in Degraded.
    Verify,
    /// `verify_policy` — has the accel-only fallback, served in
    /// Degraded.
    VerifyPolicy,
}

/// The breaker's verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve it; report the outcome via [`CircuitBreaker::record_outcome`]
    /// with `probe = false`.
    Admit,
    /// Serve it as a HalfOpen probe; report with `probe = true`.
    Probe,
    /// Fast-reject: breaker Open (or HalfOpen off-probe). Reply
    /// `overloaded` with this retry hint.
    RejectOpen {
        /// Back-off hint for the client.
        retry_after_ms: u64,
    },
    /// Fast-reject: Degraded and the endpoint has no degraded mode.
    /// Reply `degraded_only`.
    RejectDegraded,
}

/// One logged state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Stable reason label (`error_rate`, `cooldown`, `probe_failed`,
    /// `probes_recovered`, `drift_alarm`, `drift_recovered`).
    pub reason: &'static str,
}

impl Transition {
    /// `closed->open:error_rate`-style label for logs and reports.
    pub fn label(&self) -> String {
        format!("{}->{}:{}", self.from.label(), self.to.label(), self.reason)
    }
}

#[derive(Debug)]
enum Machine {
    Closed,
    Open { rejected: u64 },
    HalfOpen { asked: u64, successes: u64 },
}

#[derive(Debug)]
struct Inner {
    machine: Machine,
    /// Ring of the last `window` outcomes; `true` = failure.
    outcomes: std::collections::VecDeque<bool>,
    failures: usize,
    /// Last reported effective state, for overlay-change detection.
    reported: BreakerState,
    /// Transitions not yet drained by the service.
    pending: Vec<Transition>,
    /// Full transition history labels (bounded), for tests and benches.
    history: Vec<String>,
    total_transitions: u64,
}

const HISTORY_CAP: usize = 256;

/// The thread-safe breaker. All methods take `&self`; one short mutex
/// guards the counters.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given configuration.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner {
                machine: Machine::Closed,
                outcomes: std::collections::VecDeque::new(),
                failures: 0,
                reported: BreakerState::Closed,
                pending: Vec::new(),
                history: Vec::new(),
                total_transitions: 0,
            }),
        }
    }

    /// The configuration the breaker was built with.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Asks for admission of one request, folding in the monitor's
    /// current health verdict (Alarm ⇒ Degraded overlay on a Closed
    /// machine).
    pub fn admit(&self, health: HealthStatus, class: RequestClass) -> Admission {
        if !self.config.enabled {
            return Admission::Admit;
        }
        let mut inner = self.lock();
        let verdict = match inner.machine {
            Machine::Closed => {
                if health == HealthStatus::Alarm && class == RequestClass::Verify {
                    Admission::RejectDegraded
                } else {
                    Admission::Admit
                }
            }
            Machine::Open { ref mut rejected } => {
                if class == RequestClass::Health {
                    Admission::Admit
                } else {
                    *rejected += 1;
                    if *rejected >= self.config.cooldown_rejects {
                        inner.machine = Machine::HalfOpen {
                            asked: 1,
                            successes: 0,
                        };
                        // The request that completed the cooldown is the
                        // first probe.
                        Admission::Probe
                    } else {
                        Admission::RejectOpen {
                            retry_after_ms: self.config.retry_after_ms,
                        }
                    }
                }
            }
            Machine::HalfOpen { ref mut asked, .. } => {
                if class == RequestClass::Health {
                    Admission::Admit
                } else {
                    let probe = *asked % self.config.probe_interval.max(1) == 0;
                    *asked += 1;
                    if probe {
                        Admission::Probe
                    } else {
                        Admission::RejectOpen {
                            retry_after_ms: self.config.retry_after_ms,
                        }
                    }
                }
            }
        };
        Self::reconcile(&mut inner, health, "admission");
        verdict
    }

    /// Reports the outcome of an admitted request. `failure` means a
    /// *system* fault (shed, internal error) — biometric rejections and
    /// client mistakes are successful service. `probe` echoes whether
    /// [`CircuitBreaker::admit`] returned [`Admission::Probe`].
    pub fn record_outcome(&self, probe: bool, failure: bool) {
        if !self.config.enabled {
            return;
        }
        let mut inner = self.lock();
        if probe {
            match inner.machine {
                Machine::HalfOpen {
                    ref mut successes, ..
                } => {
                    if failure {
                        inner.machine = Machine::Open { rejected: 0 };
                        Self::note(&mut inner, BreakerState::Open, "probe_failed");
                    } else {
                        *successes += 1;
                        if *successes >= self.config.close_after {
                            inner.machine = Machine::Closed;
                            inner.outcomes.clear();
                            inner.failures = 0;
                            Self::note(&mut inner, BreakerState::Closed, "probes_recovered");
                        }
                    }
                }
                // A probe outcome racing a transition is folded into the
                // ordinary window instead of being lost.
                _ => Self::push_outcome(&mut inner, &self.config, failure),
            }
            return;
        }
        Self::push_outcome(&mut inner, &self.config, failure);
    }

    /// Reports a shed the server performed on the breaker's behalf-less
    /// paths (admission queue full, deadline blown). Sheds are failure
    /// observations: a sustained shed rate is exactly the overload the
    /// breaker exists to answer.
    pub fn record_shed(&self) {
        self.record_outcome(false, true);
    }

    fn push_outcome(inner: &mut Inner, config: &BreakerConfig, failure: bool) {
        if inner.outcomes.len() == config.window.max(1) {
            if let Some(true) = inner.outcomes.pop_front() {
                inner.failures -= 1;
            }
        }
        inner.outcomes.push_back(failure);
        if failure {
            inner.failures += 1;
        }
        if matches!(inner.machine, Machine::Closed)
            && inner.failures >= config.min_failures.max(1)
            && (inner.failures as f64) >= config.open_threshold * inner.outcomes.len() as f64
        {
            inner.machine = Machine::Open { rejected: 0 };
            inner.outcomes.clear();
            inner.failures = 0;
            Self::note(inner, BreakerState::Open, "error_rate");
        }
    }

    /// Folds a health verdict into the reported state (the Degraded
    /// overlay) without an admission decision — the service calls this
    /// when it learns the health status anyway.
    pub fn note_health(&self, health: HealthStatus) {
        if !self.config.enabled {
            return;
        }
        let mut inner = self.lock();
        Self::reconcile(&mut inner, health, "health");
    }

    fn effective(machine: &Machine, health: HealthStatus) -> BreakerState {
        match machine {
            Machine::Closed if health == HealthStatus::Alarm => BreakerState::Degraded,
            Machine::Closed => BreakerState::Closed,
            Machine::Open { .. } => BreakerState::Open,
            Machine::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Detects overlay-driven transitions (Closed↔Degraded) that no
    /// machine change produced.
    fn reconcile(inner: &mut Inner, health: HealthStatus, _why: &'static str) {
        let effective = Self::effective(&inner.machine, health);
        if effective != inner.reported {
            let reason = match effective {
                BreakerState::Degraded => "drift_alarm",
                BreakerState::Closed if inner.reported == BreakerState::Degraded => {
                    "drift_recovered"
                }
                _ => "machine",
            };
            Self::record_transition(inner, effective, reason);
        }
    }

    /// Records a machine-driven transition to `to`.
    fn note(inner: &mut Inner, to: BreakerState, reason: &'static str) {
        Self::record_transition(inner, to, reason);
    }

    fn record_transition(inner: &mut Inner, to: BreakerState, reason: &'static str) {
        let transition = Transition {
            from: inner.reported,
            to,
            reason,
        };
        inner.reported = to;
        inner.total_transitions += 1;
        if inner.history.len() < HISTORY_CAP {
            inner.history.push(transition.label());
        }
        inner.pending.push(transition);
    }

    /// The last reported state.
    pub fn state(&self) -> BreakerState {
        self.lock().reported
    }

    /// Drains transitions recorded since the last drain — the service
    /// flushes these to the flight recorder, gauge, and counter.
    pub fn take_transitions(&self) -> Vec<Transition> {
        std::mem::take(&mut self.lock().pending)
    }

    /// The full transition history labels, oldest first (bounded at
    /// 256; `total_transitions` keeps counting past the cap).
    pub fn history(&self) -> Vec<String> {
        self.lock().history.clone()
    }

    /// Total transitions ever recorded.
    pub fn total_transitions(&self) -> u64 {
        self.lock().total_transitions
    }

    /// The `/health`-exposed state document.
    pub fn state_json(&self) -> Value {
        let inner = self.lock();
        Value::Object(vec![
            (
                "state".to_string(),
                Value::String(inner.reported.label().to_string()),
            ),
            (
                "window_failures".to_string(),
                Value::Number(inner.failures as f64),
            ),
            (
                "window_len".to_string(),
                Value::Number(inner.outcomes.len() as f64),
            ),
            (
                "transitions".to_string(),
                Value::Number(inner.total_transitions as f64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_open(breaker: &CircuitBreaker) {
        // Enough failures to cross min_failures at a 100% failure rate.
        for _ in 0..breaker.config().min_failures {
            breaker.record_shed();
        }
    }

    fn tight() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_failures: 4,
            open_threshold: 0.5,
            cooldown_rejects: 3,
            probe_interval: 2,
            close_after: 2,
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn closed_to_open_to_half_open_to_closed() {
        let breaker = CircuitBreaker::new(tight());
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(
            breaker.admit(HealthStatus::Healthy, RequestClass::Verify),
            Admission::Admit
        );
        drive_open(&breaker);
        assert_eq!(breaker.state(), BreakerState::Open);
        // Cooldown: the first two rejections stay Open, the third
        // becomes the first HalfOpen probe.
        for _ in 0..2 {
            assert!(matches!(
                breaker.admit(HealthStatus::Healthy, RequestClass::Verify),
                Admission::RejectOpen { retry_after_ms } if retry_after_ms > 0
            ));
        }
        assert_eq!(
            breaker.admit(HealthStatus::Healthy, RequestClass::Verify),
            Admission::Probe
        );
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.record_outcome(true, false);
        // Off-probe requests are still rejected between probes.
        assert!(matches!(
            breaker.admit(HealthStatus::Healthy, RequestClass::Verify),
            Admission::RejectOpen { .. }
        ));
        assert_eq!(
            breaker.admit(HealthStatus::Healthy, RequestClass::Verify),
            Admission::Probe
        );
        breaker.record_outcome(true, false);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(
            breaker.history(),
            vec![
                "closed->open:error_rate",
                "open->half_open:machine",
                "half_open->closed:probes_recovered",
            ]
        );
    }

    #[test]
    fn probe_failure_reopens() {
        let breaker = CircuitBreaker::new(tight());
        drive_open(&breaker);
        for _ in 0..2 {
            let _ = breaker.admit(HealthStatus::Healthy, RequestClass::Verify);
        }
        assert_eq!(
            breaker.admit(HealthStatus::Healthy, RequestClass::Verify),
            Admission::Probe
        );
        breaker.record_outcome(true, true);
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn health_endpoint_is_always_admitted() {
        let breaker = CircuitBreaker::new(tight());
        drive_open(&breaker);
        assert_eq!(
            breaker.admit(HealthStatus::Healthy, RequestClass::Health),
            Admission::Admit
        );
    }

    #[test]
    fn alarm_overlays_degraded_and_gates_plain_verify_only() {
        let breaker = CircuitBreaker::new(tight());
        assert_eq!(
            breaker.admit(HealthStatus::Alarm, RequestClass::Verify),
            Admission::RejectDegraded
        );
        assert_eq!(breaker.state(), BreakerState::Degraded);
        assert_eq!(
            breaker.admit(HealthStatus::Alarm, RequestClass::VerifyPolicy),
            Admission::Admit
        );
        assert_eq!(
            breaker.admit(HealthStatus::Alarm, RequestClass::Health),
            Admission::Admit
        );
        assert_eq!(
            breaker.admit(HealthStatus::Healthy, RequestClass::Verify),
            Admission::Admit
        );
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(
            breaker.history(),
            vec![
                "closed->degraded:drift_alarm",
                "degraded->closed:drift_recovered"
            ]
        );
    }

    #[test]
    fn successes_heal_the_window() {
        let config = tight();
        let breaker = CircuitBreaker::new(config.clone());
        // Three failures (below min_failures), then a run of successes:
        // the ring evicts the failures and the breaker stays Closed.
        for _ in 0..3 {
            breaker.record_shed();
        }
        for _ in 0..config.window {
            breaker.record_outcome(false, false);
        }
        for _ in 0..3 {
            breaker.record_shed();
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn same_outcome_sequence_produces_identical_transitions() {
        let run = || {
            let breaker = CircuitBreaker::new(tight());
            for i in 0..64u64 {
                let class = if i % 3 == 0 {
                    RequestClass::VerifyPolicy
                } else {
                    RequestClass::Verify
                };
                match breaker.admit(HealthStatus::Healthy, class) {
                    Admission::Admit => breaker.record_outcome(false, i % 2 == 0),
                    Admission::Probe => breaker.record_outcome(true, false),
                    _ => {}
                }
            }
            breaker.history()
        };
        let first = run();
        assert_eq!(first, run(), "transition sequence must be deterministic");
        assert!(!first.is_empty());
    }

    #[test]
    fn disabled_breaker_admits_everything_and_stays_closed() {
        let breaker = CircuitBreaker::new(BreakerConfig::disabled());
        for _ in 0..100 {
            breaker.record_shed();
        }
        assert_eq!(
            breaker.admit(HealthStatus::Alarm, RequestClass::Verify),
            Admission::Admit
        );
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.history().is_empty());
    }

    #[test]
    fn state_json_has_the_exposed_fields() {
        let breaker = CircuitBreaker::new(tight());
        breaker.record_shed();
        let doc = breaker.state_json();
        assert_eq!(doc.get("state").and_then(Value::as_str), Some("closed"));
        assert_eq!(
            doc.get("window_failures").and_then(Value::as_f64),
            Some(1.0)
        );
        assert_eq!(doc.get("window_len").and_then(Value::as_f64), Some(1.0));
        assert_eq!(doc.get("transitions").and_then(Value::as_f64), Some(0.0));
    }
}
