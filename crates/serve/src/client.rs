//! A blocking client for the framed verify protocol, used by the bench
//! load generator and the tests. One connection, one in-flight request
//! at a time — the closed-loop shape the load generator measures.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{self, Request, Response};

/// A connected verify-protocol client.
#[derive(Debug)]
pub struct VerifyClient {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl VerifyClient {
    /// Connects with `TCP_NODELAY` and a 30 s response timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connects with an explicit response timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(VerifyClient {
            stream,
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Socket failures propagate; a server that closes the connection
    /// without answering surfaces as `UnexpectedEof`, and an unparseable
    /// response as `InvalidData`.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let payload = request.to_json().to_json();
        protocol::write_frame(&mut self.stream, payload.as_bytes())?;
        let frame =
            protocol::read_frame(&mut self.stream, self.max_frame_bytes)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed before answering",
                )
            })?;
        Response::from_frame(&frame)
            .map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))
    }
}
