//! A blocking client for the framed verify protocol, used by the bench
//! load generator and the tests. One connection, one in-flight request
//! at a time — the closed-loop shape the load generator measures.
//!
//! Two call surfaces:
//!
//! * [`VerifyClient::call`] / [`VerifyClient::call_traced`] — one shot,
//!   socket failures propagate. What a latency bench wants: failures
//!   are data, not something to paper over.
//! * [`VerifyClient::call_resilient`] — the retry loop a production
//!   caller wants: reconnects on broken connections, honours the
//!   server's `retry_after_ms` hint on typed `overloaded` /
//!   `shutting_down` errors, and spaces attempts with capped
//!   exponential backoff plus deterministic jitter (seeded from the
//!   request's trace id, so two same-seed runs retry on identical
//!   schedules). Retries reuse the same trace id — the request is
//!   idempotent on the server side (verification has no
//!   state-mutating effect), and a duplicated answer is correlated,
//!   not double-counted.
//!
//! Connects are time-bounded: [`VerifyClient::connect`] keeps its old
//! signature but now applies a default connect timeout, so a
//! black-holed address (unroutable IP, dropped SYN) fails in seconds
//! instead of blocking for the kernel's multi-minute TCP give-up.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::{Rng, SeedableRng};

use crate::protocol::{self, Request, Response};

/// Default bound on connection establishment (SYN → accept).
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Default bound on waiting for a response frame.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Retry/backoff policy for [`VerifyClient::call_resilient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryConfig {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Ceiling the exponential backoff saturates at.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream (mixed with the
    /// request's trace id, so concurrent clients sharing a seed do not
    /// retry in lockstep).
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0,
        }
    }
}

impl RetryConfig {
    /// The pause before retry number `retry` (1-based) of the request
    /// tagged `trace_id`, honouring the server's `retry_after_ms` hint
    /// when it exceeds the local schedule. Deterministic: a pure
    /// function of (config, trace_id, retry, hint).
    fn backoff(&self, trace_id: u64, retry: u32, retry_after_ms: Option<u64>) -> Duration {
        let base = self.base_backoff.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << retry.saturating_sub(1).min(20));
        let capped = exp.min(self.max_backoff.as_millis() as u64);
        // Full jitter in [capped/2, capped]: spreads synchronized
        // retry storms without ever collapsing the pause to zero.
        let mut rng = StdRng::seed_from_u64(self.jitter_seed ^ trace_id ^ (u64::from(retry) << 32));
        let jittered = capped / 2 + rng.gen_range(0..(capped / 2).max(1) + 1);
        let floor = retry_after_ms.unwrap_or(0);
        Duration::from_millis(jittered.max(floor))
    }
}

/// The terminal result of a resilient call: either a response (typed
/// errors included — they are answers, not transport failures) or the
/// I/O error that survived every retry.
#[derive(Debug)]
pub struct ResilientOutcome {
    /// The response of the final attempt.
    pub response: Response,
    /// Attempts it took (1 = first try succeeded).
    pub attempts: u32,
    /// Total time spent sleeping between attempts.
    pub backoff_total: Duration,
}

/// A connected verify-protocol client.
#[derive(Debug)]
pub struct VerifyClient {
    stream: TcpStream,
    addr: SocketAddr,
    connect_timeout: Duration,
    read_timeout: Duration,
    max_frame_bytes: usize,
}

impl VerifyClient {
    /// Connects with `TCP_NODELAY`, a bounded connect
    /// ([`DEFAULT_CONNECT_TIMEOUT`]) and a 30 s response timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect failures; a black-holed address surfaces as
    /// `TimedOut` within the connect timeout.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_timeout(addr, DEFAULT_READ_TIMEOUT)
    }

    /// Connects with an explicit response timeout (connect stays
    /// bounded by [`DEFAULT_CONNECT_TIMEOUT`]).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        Self::connect_with_timeouts(addr, DEFAULT_CONNECT_TIMEOUT, timeout)
    }

    /// Connects with explicit connect and response timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_with_timeouts(
        addr: SocketAddr,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> io::Result<Self> {
        let stream = Self::open(addr, connect_timeout, read_timeout)?;
        Ok(VerifyClient {
            stream,
            addr,
            connect_timeout,
            read_timeout,
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
        })
    }

    fn open(
        addr: SocketAddr,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(stream)
    }

    /// Drops the current connection and dials a fresh one to the same
    /// address with the same timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn reconnect(&mut self) -> io::Result<()> {
        self.stream = Self::open(self.addr, self.connect_timeout, self.read_timeout)?;
        Ok(())
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Socket failures propagate; a server that closes the connection
    /// without answering surfaces as `UnexpectedEof`, and an unparseable
    /// response as `InvalidData`.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let payload = request.to_json().to_json();
        protocol::write_frame(&mut self.stream, payload.as_bytes())?;
        let frame =
            protocol::read_frame(&mut self.stream, self.max_frame_bytes)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed before answering",
                )
            })?;
        Response::from_frame(&frame)
            .map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))
    }

    /// Sends one request tagged with a trace id (`trace_id`, or a
    /// freshly minted one when `None`) and blocks for its response,
    /// returning the response together with the trace id the server
    /// echoed back (`None` from a pre-tracing server).
    ///
    /// # Errors
    ///
    /// As [`VerifyClient::call`].
    pub fn call_traced(
        &mut self,
        request: &Request,
        trace_id: Option<u64>,
    ) -> io::Result<(Response, Option<u64>)> {
        let trace_id = trace_id.unwrap_or_else(mandipass_telemetry::mint_id);
        self.call_with_options(request, Some(trace_id), None)
    }

    /// Sends one request with full envelope control: an optional trace
    /// id (`None` leaves the frame untagged — the server mints one) and
    /// an optional `deadline_ms` budget the server may shed against if
    /// queue wait alone exceeds it. Returns the response and the echoed
    /// trace id.
    ///
    /// # Errors
    ///
    /// As [`VerifyClient::call`].
    pub fn call_with_options(
        &mut self,
        request: &Request,
        trace_id: Option<u64>,
        deadline_ms: Option<u64>,
    ) -> io::Result<(Response, Option<u64>)> {
        let mut doc = request.to_json();
        if let Some(id) = trace_id {
            doc = protocol::with_trace_id(doc, id);
        }
        if let Some(ms) = deadline_ms {
            doc = protocol::with_deadline_ms(doc, ms);
        }
        let payload = doc.to_json();
        protocol::write_frame(&mut self.stream, payload.as_bytes())?;
        let frame =
            protocol::read_frame(&mut self.stream, self.max_frame_bytes)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed before answering",
                )
            })?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("not UTF-8: {e}")))?;
        let doc = mandipass_util::json::parse(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad JSON: {e}")))?;
        let echoed = protocol::trace_id_of(&doc);
        let response = Response::from_json(&doc)
            .map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))?;
        Ok((response, echoed))
    }

    /// Sends one request with retries: transport failures (broken pipe,
    /// reset, EOF, timeout) trigger a reconnect and a retried send;
    /// typed `overloaded` / `shutting_down` errors trigger a retry
    /// honouring the server's `retry_after_ms` hint. Every attempt
    /// carries the same trace id, so the server sees retries as one
    /// logical request. Other responses — decisions, health, and all
    /// other typed errors — return immediately: they are answers.
    ///
    /// # Errors
    ///
    /// The final attempt's transport error, when every retry failed.
    pub fn call_resilient(
        &mut self,
        request: &Request,
        trace_id: Option<u64>,
        retry: &RetryConfig,
    ) -> io::Result<ResilientOutcome> {
        let trace_id = trace_id.unwrap_or_else(mandipass_telemetry::mint_id);
        let max_attempts = retry.max_attempts.max(1);
        let mut backoff_total = Duration::ZERO;
        let mut attempt = 1u32;
        loop {
            let outcome = self.call_traced(request, Some(trace_id));
            let retry_hint = match &outcome {
                Ok((
                    Response::Error {
                        kind,
                        retry_after_ms,
                        ..
                    },
                    _,
                )) if kind == protocol::KIND_OVERLOADED || kind == protocol::KIND_SHUTTING_DOWN => {
                    Some(*retry_after_ms)
                }
                Ok((response, _)) => {
                    return Ok(ResilientOutcome {
                        response: response.clone(),
                        attempts: attempt,
                        backoff_total,
                    });
                }
                Err(_) => None,
            };
            if attempt >= max_attempts {
                return match outcome {
                    Ok((response, _)) => Ok(ResilientOutcome {
                        response,
                        attempts: attempt,
                        backoff_total,
                    }),
                    Err(e) => Err(e),
                };
            }
            let pause = retry.backoff(trace_id, attempt, retry_hint.flatten());
            std::thread::sleep(pause);
            backoff_total += pause;
            if outcome.is_err() {
                // The connection is in an unknown state (partial write,
                // reset mid-frame): always re-dial before retrying. A
                // failed reconnect leaves the broken stream in place,
                // and the next attempt surfaces its error.
                let _ = self.reconnect();
            }
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn connect_times_out_on_a_black_holed_address() {
        // A local black hole: a listener that never accepts, its SYN
        // backlog pre-filled, so further SYNs are silently dropped —
        // exactly the failure a dead or firewalled server presents.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut backlog_hogs = Vec::new();
        for _ in 0..512 {
            match std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
                Ok(s) => backlog_hogs.push(s),
                Err(_) => break, // queue full: the black hole is armed
            }
        }
        assert!(
            !backlog_hogs.is_empty() && backlog_hogs.len() < 512,
            "backlog never filled; cannot arm the black hole"
        );
        let timeout = Duration::from_millis(250);
        let start = Instant::now();
        let result = VerifyClient::connect_with_timeouts(addr, timeout, Duration::from_secs(1));
        let elapsed = start.elapsed();
        assert!(result.is_err(), "a full backlog must not accept connects");
        assert!(
            elapsed < timeout + Duration::from_secs(2),
            "connect blocked for {elapsed:?} despite a {timeout:?} timeout"
        );
        drop(backlog_hogs);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_honours_the_server_hint() {
        let config = RetryConfig {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(80),
            jitter_seed: 7,
        };
        // Same inputs → same pause, different trace ids → (almost
        // always) different jitter.
        let a = config.backoff(42, 1, None);
        let b = config.backoff(42, 1, None);
        assert_eq!(a, b, "jitter must be a pure function of its seeds");
        // Exponential growth saturates at max_backoff (+ nothing above
        // it: jitter stays within [cap/2, cap]).
        for retry in 1..8 {
            let pause = config.backoff(42, retry, None);
            assert!(
                pause <= config.max_backoff,
                "retry {retry} paused {pause:?}, above the {:?} cap",
                config.max_backoff
            );
        }
        // The server's hint is a floor, not a suggestion.
        let hinted = config.backoff(42, 1, Some(500));
        assert!(hinted >= Duration::from_millis(500));
    }
}
