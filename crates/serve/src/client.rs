//! A blocking client for the framed verify protocol, used by the bench
//! load generator and the tests. One connection, one in-flight request
//! at a time — the closed-loop shape the load generator measures.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{self, Request, Response};

/// A connected verify-protocol client.
#[derive(Debug)]
pub struct VerifyClient {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl VerifyClient {
    /// Connects with `TCP_NODELAY` and a 30 s response timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connects with an explicit response timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(VerifyClient {
            stream,
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Socket failures propagate; a server that closes the connection
    /// without answering surfaces as `UnexpectedEof`, and an unparseable
    /// response as `InvalidData`.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        let payload = request.to_json().to_json();
        protocol::write_frame(&mut self.stream, payload.as_bytes())?;
        let frame =
            protocol::read_frame(&mut self.stream, self.max_frame_bytes)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed before answering",
                )
            })?;
        Response::from_frame(&frame)
            .map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))
    }

    /// Sends one request tagged with a trace id (`trace_id`, or a
    /// freshly minted one when `None`) and blocks for its response,
    /// returning the response together with the trace id the server
    /// echoed back (`None` from a pre-tracing server).
    ///
    /// # Errors
    ///
    /// As [`VerifyClient::call`].
    pub fn call_traced(
        &mut self,
        request: &Request,
        trace_id: Option<u64>,
    ) -> io::Result<(Response, Option<u64>)> {
        let trace_id = trace_id.unwrap_or_else(mandipass_telemetry::mint_id);
        let payload = protocol::with_trace_id(request.to_json(), trace_id).to_json();
        protocol::write_frame(&mut self.stream, payload.as_bytes())?;
        let frame =
            protocol::read_frame(&mut self.stream, self.max_frame_bytes)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed before answering",
                )
            })?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("not UTF-8: {e}")))?;
        let doc = mandipass_util::json::parse(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad JSON: {e}")))?;
        let echoed = protocol::trace_id_of(&doc);
        let response = Response::from_json(&doc)
            .map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))?;
        Ok((response, echoed))
    }
}
