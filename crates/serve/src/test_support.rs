//! Shared test fixture: one small trained deployment, built once per
//! test process (VSP training is the expensive part) and enrolled with a
//! single genuine user. Tests only exercise `&self` request paths, so
//! sharing is safe — and is itself the property under test.

use std::sync::{Arc, OnceLock};

use mandipass::prelude::*;
use mandipass::train::{TrainingConfig, VspTrainer};
use mandipass_imu_sim::{Condition, Population, Recorder, Recording, UserProfile};

use crate::service::VerifyService;

pub struct Fixture {
    pub service: Arc<VerifyService>,
    pub user: UserProfile,
    pub recorder: Recorder,
}

pub fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let pop = Population::generate(6, 77);
        let recorder = Recorder::default();
        let trainer = VspTrainer::new(TrainingConfig {
            seconds_per_person: 4.0,
            epochs: 6,
            ..TrainingConfig::fast_demo()
        });
        let extractor = trainer
            .train(&pop.users()[2..], &recorder)
            .unwrap_or_else(|e| panic!("fixture training failed: {e}"));
        let mut system = MandiPass::new(extractor, PipelineConfig::default());
        // A private monitor keeps these tests independent of the
        // process-global one (and of each other's windows).
        let monitor: &'static mandipass_telemetry::Monitor =
            Box::leak(Box::new(mandipass_telemetry::Monitor::default()));
        system.set_monitor(monitor);
        let user = pop.users()[0].clone();
        let matrix = GaussianMatrix::generate(1, system.embedding_dim());
        let enrolment: Vec<Recording> = (0..4)
            .map(|s| recorder.record(&user, Condition::Normal, 100 + s))
            .collect();
        let mut service = VerifyService::new(system, VerifyPolicy::default());
        service
            .enroll(user.id, &enrolment, matrix)
            .unwrap_or_else(|e| panic!("fixture enrolment failed: {e}"));
        Fixture {
            service: Arc::new(service),
            user,
            recorder,
        }
    })
}

pub fn shared_service() -> &'static VerifyService {
    &fixture().service
}

pub fn shared_arc() -> Arc<VerifyService> {
    Arc::clone(&fixture().service)
}

/// A fresh genuine probe for the enrolled user.
pub fn genuine_probe(seed: u64) -> (u32, Recording) {
    let f = fixture();
    (
        f.user.id,
        f.recorder.record(&f.user, Condition::Normal, seed),
    )
}

/// `n` fresh genuine probes for the enrolled user.
pub fn genuine_probes(seed: u64, n: usize) -> (u32, Vec<Recording>) {
    let f = fixture();
    (
        f.user.id,
        (0..n as u64)
            .map(|i| f.recorder.record(&f.user, Condition::Normal, seed + i))
            .collect(),
    )
}
