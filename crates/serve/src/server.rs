//! The TCP front: acceptor thread + fixed worker pool.
//!
//! One acceptor thread owns the listener. Every accepted connection gets
//! `TCP_NODELAY` (responses are single small frames; Nagle would add a
//! full RTT under closed-loop load) and a read timeout (a stalled or
//! half-open client costs a worker at most one timeout, never a wedge),
//! then rides an `mpsc` channel to the first free worker. Workers answer
//! framed requests on the connection until the peer closes, an error or
//! timeout fires, or the server shuts down.
//!
//! Shutdown is graceful and idempotent: the stop flag flips, a loopback
//! connect unblocks `accept`, the acceptor exits and drops the channel
//! sender, each worker finishes its current connection and sees the
//! channel hang up, and `shutdown` joins them all. Dropping the server
//! shuts it down.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::{self, Request, Response};
use crate::service::VerifyService;

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads (and thus maximum concurrently served
    /// connections).
    pub workers: usize,
    /// Per-read socket timeout; a connection idle longer is dropped.
    pub read_timeout: Duration,
    /// Largest accepted request frame.
    pub max_frame_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            read_timeout: Duration::from_secs(2),
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// The running verify server. Dropping it shuts it down.
pub struct VerifyServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for VerifyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl VerifyServer {
    /// Binds `addr` (port 0 for ephemeral) and starts the acceptor plus
    /// `config.workers` worker threads over the shared `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind and thread-spawn failures.
    pub fn bind(service: Arc<VerifyService>, addr: &str, config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (sender, receiver) = channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let service = Arc::clone(&service);
                let receiver = Arc::clone(&receiver);
                let stop = Arc::clone(&stop);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("mandipass-serve-{i}"))
                    .spawn(move || worker_loop(&service, &receiver, &stop, &config))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let acceptor = {
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::Builder::new()
                .name("mandipass-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // Latency hygiene + wedge protection, applied
                        // before the connection reaches any worker.
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(Some(config.read_timeout));
                        mandipass_telemetry::counter!("serve.connections").inc();
                        if sender.send(stream).is_err() {
                            break;
                        }
                    }
                    // Dropping `sender` here hangs up the channel and
                    // lets idle workers exit.
                })?
        };

        Ok(VerifyServer {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, lets each worker finish its
    /// current connection, joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; the loop re-checks the flag first.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for VerifyServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    service: &VerifyService,
    receiver: &Mutex<Receiver<TcpStream>>,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    loop {
        // Hold the lock only for the hand-off, not while serving.
        let stream = receiver
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv();
        match stream {
            Ok(mut stream) => serve_connection(service, &mut stream, stop, config),
            Err(_) => break, // acceptor hung up: shutdown
        }
    }
}

/// Answers framed requests on one connection until the peer closes, an
/// I/O error or read timeout fires, or shutdown is requested.
fn serve_connection(
    service: &VerifyService,
    stream: &mut TcpStream,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    while !stop.load(Ordering::SeqCst) {
        match protocol::read_frame(stream, config.max_frame_bytes) {
            Ok(Some(payload)) => {
                let response = match Request::from_frame(&payload) {
                    Ok(request) => service.handle(&request),
                    Err(message) => {
                        mandipass_telemetry::counter!("serve.bad_requests").inc();
                        Response::Error {
                            kind: "bad_request".to_string(),
                            message,
                        }
                    }
                };
                let payload = response.to_json().to_json();
                if protocol::write_frame(stream, payload.as_bytes()).is_err() {
                    break;
                }
            }
            // Clean close, garbage, timeout, or disconnect: in every
            // case the worker moves on to the next connection.
            Ok(None) | Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::VerifyClient;
    use crate::test_support::{genuine_probe, genuine_probes, shared_arc};
    use std::io::Write as _;
    use std::time::Instant;

    #[test]
    fn serves_verify_and_health_over_tcp() {
        let server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let mut client = VerifyClient::connect(server.local_addr()).unwrap();
        match client.call(&Request::Health).unwrap() {
            Response::Health { enrolled, .. } => assert!(enrolled >= 1),
            other => panic!("expected health, got {other:?}"),
        }
        let (user, probes) = genuine_probes(51_000, 3);
        match client
            .call(&Request::VerifyWithPolicy {
                user_id: user,
                probes,
            })
            .unwrap()
        {
            Response::Decision { accepted, .. } => assert!(accepted),
            other => panic!("expected decision, got {other:?}"),
        }
        // Unknown user → typed error, connection stays usable.
        let (_, probe) = genuine_probe(51_100);
        match client
            .call(&Request::Verify {
                user_id: 4242,
                probe,
            })
            .unwrap()
        {
            Response::Error { kind, .. } => assert_eq!(kind, "not_enrolled"),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_frame_gets_a_bad_request_response() {
        let server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        protocol::write_frame(&mut stream, b"this is not json").unwrap();
        let payload = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
        match Response::from_frame(&payload).unwrap() {
            Response::Error { kind, .. } => assert_eq!(kind, "bad_request"),
            other => panic!("expected bad_request, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_clients_all_get_answers() {
        let server = VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                workers: 4,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    let mut client = VerifyClient::connect(addr).unwrap();
                    for r in 0..3u64 {
                        let (user, probe) = genuine_probe(52_000 + t * 100 + r);
                        let response = client
                            .call(&Request::Verify {
                                user_id: user,
                                probe,
                            })
                            .unwrap();
                        assert!(
                            matches!(response, Response::Decision { .. }),
                            "worker thread dropped a request: {response:?}"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn half_open_client_cannot_wedge_the_single_worker() {
        let server = VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                read_timeout: Duration::from_millis(100),
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        // A client that connects and then stalls — it even trickles a
        // partial frame header so the server is mid-read when it stops.
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(&[0u8, 0]).unwrap();
        // The single worker must shed the stalled connection at the read
        // timeout and answer the next client promptly.
        let start = Instant::now();
        let mut client = VerifyClient::connect(addr).unwrap();
        let response = client.call(&Request::Health).unwrap();
        assert!(matches!(response, Response::Health { .. }));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "stalled client wedged the worker for {:?}",
            start.elapsed()
        );
        drop(stalled);
    }

    #[test]
    fn shutdown_joins_all_threads_and_is_idempotent() {
        let mut server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        // Accepting is over: a fresh connection gets no service (either
        // refused outright or closed without an answer).
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = protocol::write_frame(&mut stream, b"{\"v\":1,\"op\":\"health\"}");
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            assert!(
                !matches!(protocol::read_frame(&mut stream, 1 << 20), Ok(Some(_))),
                "server answered after shutdown"
            );
        }
    }
}
