//! The TCP front: acceptor thread + fixed worker pool.
//!
//! One acceptor thread owns the listener. Every accepted connection gets
//! `TCP_NODELAY` (responses are single small frames; Nagle would add a
//! full RTT under closed-loop load) and a read timeout (a stalled or
//! half-open client costs a worker at most one timeout, never a wedge),
//! then rides an `mpsc` channel to the first free worker. Workers answer
//! framed requests on the connection until the peer closes, an error or
//! timeout fires, or the server shuts down.
//!
//! Shutdown is graceful and idempotent: the stop flag flips, a loopback
//! connect unblocks `accept`, the acceptor exits and drops the channel
//! sender, each worker finishes its current connection and sees the
//! channel hang up, and `shutdown` joins them all. Dropping the server
//! shuts it down.
//!
//! Observability: the acceptor stamps each hand-off with its accept
//! time, so the worker attributes `queue_wait` to the connection's
//! first request; `serve.queue_depth` and `serve.connections_active`
//! gauges track the hand-off channel and in-flight connections, and
//! `serve.worker_busy_micros` accumulates time workers spend on
//! requests. Each request runs under a trace id (the client's, or a
//! freshly minted one), which is echoed back in the response frame's
//! `trace` field and recorded — with the queue-wait / decode / verify /
//! write stage breakdown — in the monitor's sampled trace store.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::{self, Request, Response};
use crate::service::{PendingTrace, VerifyService, WireTiming};

/// A connection handed from the acceptor to a worker, stamped with its
/// accept time so the worker can attribute queue wait.
type Handoff = (TcpStream, Instant);

fn duration_nanos(duration: Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads (and thus maximum concurrently served
    /// connections).
    pub workers: usize,
    /// Per-read socket timeout; a connection idle longer is dropped.
    pub read_timeout: Duration,
    /// Largest accepted request frame.
    pub max_frame_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            read_timeout: Duration::from_secs(2),
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// The running verify server. Dropping it shuts it down.
pub struct VerifyServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for VerifyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl VerifyServer {
    /// Binds `addr` (port 0 for ephemeral) and starts the acceptor plus
    /// `config.workers` worker threads over the shared `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind and thread-spawn failures.
    pub fn bind(service: Arc<VerifyService>, addr: &str, config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (sender, receiver) = channel::<Handoff>();
        let receiver = Arc::new(Mutex::new(receiver));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let service = Arc::clone(&service);
                let receiver = Arc::clone(&receiver);
                let stop = Arc::clone(&stop);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("mandipass-serve-{i}"))
                    .spawn(move || worker_loop(&service, &receiver, &stop, &config))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let acceptor = {
            let stop = Arc::clone(&stop);
            let config = config.clone();
            std::thread::Builder::new()
                .name("mandipass-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // Latency hygiene + wedge protection, applied
                        // before the connection reaches any worker.
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(Some(config.read_timeout));
                        mandipass_telemetry::counter!("serve.connections").inc();
                        mandipass_telemetry::gauge!("serve.queue_depth").add(1.0);
                        if sender.send((stream, Instant::now())).is_err() {
                            break;
                        }
                    }
                    // Dropping `sender` here hangs up the channel and
                    // lets idle workers exit.
                })?
        };

        Ok(VerifyServer {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, lets each worker finish its
    /// current connection, joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; the loop re-checks the flag first.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for VerifyServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    service: &VerifyService,
    receiver: &Mutex<Receiver<Handoff>>,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    loop {
        // Hold the lock only for the hand-off, not while serving.
        let handoff = receiver
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv();
        match handoff {
            Ok((mut stream, accepted_at)) => {
                mandipass_telemetry::gauge!("serve.queue_depth").add(-1.0);
                let active = mandipass_telemetry::gauge!("serve.connections_active");
                active.add(1.0);
                serve_connection(service, &mut stream, stop, config, accepted_at.elapsed());
                active.add(-1.0);
            }
            Err(_) => break, // acceptor hung up: shutdown
        }
    }
}

/// Answers framed requests on one connection until the peer closes, an
/// I/O error or read timeout fires, or shutdown is requested.
///
/// `queue_wait` (accept → worker pick-up) is attributed to the first
/// request only; later requests on the same connection waited in the
/// kernel socket buffer, not our queue.
fn serve_connection(
    service: &VerifyService,
    stream: &mut TcpStream,
    stop: &AtomicBool,
    config: &ServeConfig,
    queue_wait: Duration,
) {
    let mut queue_wait_nanos = duration_nanos(queue_wait);
    while !stop.load(Ordering::SeqCst) {
        match protocol::read_frame(stream, config.max_frame_bytes) {
            Ok(Some(payload)) => {
                let arrived = Instant::now();
                let timing_queue = std::mem::take(&mut queue_wait_nanos);
                let parsed = Request::from_frame_traced(&payload);
                let timing = WireTiming {
                    queue_wait_nanos: timing_queue,
                    decode_nanos: duration_nanos(arrived.elapsed()),
                };
                let (response, pending) = match parsed {
                    Ok((request, wire_id)) => {
                        let trace_id = wire_id.unwrap_or_else(mandipass_telemetry::mint_id);
                        service.handle_traced(&request, trace_id, timing)
                    }
                    Err(message) => {
                        mandipass_telemetry::counter!("serve.bad_requests").inc();
                        let response = Response::Error {
                            kind: "bad_request".to_string(),
                            message,
                        };
                        let pending =
                            PendingTrace::bad_request(mandipass_telemetry::mint_id(), timing);
                        (response, pending)
                    }
                };
                let payload =
                    protocol::with_trace_id(response.to_json(), pending.trace_id()).to_json();
                let write_start = Instant::now();
                let write_ok = protocol::write_frame(stream, payload.as_bytes()).is_ok();
                let write_nanos = duration_nanos(write_start.elapsed());
                let total_nanos = timing_queue.saturating_add(duration_nanos(arrived.elapsed()));
                pending.commit(service.system().monitor(), write_nanos, total_nanos);
                mandipass_telemetry::counter!("serve.worker_busy_micros")
                    .add(total_nanos.saturating_sub(timing_queue) / 1_000);
                if !write_ok {
                    break;
                }
            }
            // Clean close, garbage, timeout, or disconnect: in every
            // case the worker moves on to the next connection.
            Ok(None) | Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::VerifyClient;
    use crate::test_support::{genuine_probe, genuine_probes, shared_arc};
    use std::io::Write as _;
    use std::time::Instant;

    #[test]
    fn serves_verify_and_health_over_tcp() {
        let server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let mut client = VerifyClient::connect(server.local_addr()).unwrap();
        match client.call(&Request::Health).unwrap() {
            Response::Health { enrolled, .. } => assert!(enrolled >= 1),
            other => panic!("expected health, got {other:?}"),
        }
        let (user, probes) = genuine_probes(51_000, 3);
        match client
            .call(&Request::VerifyWithPolicy {
                user_id: user,
                probes,
            })
            .unwrap()
        {
            Response::Decision { accepted, .. } => assert!(accepted),
            other => panic!("expected decision, got {other:?}"),
        }
        // Unknown user → typed error, connection stays usable.
        let (_, probe) = genuine_probe(51_100);
        match client
            .call(&Request::Verify {
                user_id: 4242,
                probe,
            })
            .unwrap()
        {
            Response::Error { kind, .. } => assert_eq!(kind, "not_enrolled"),
            other => panic!("expected error, got {other:?}"),
        }
    }

    /// The worker commits the trace after writing the response (the
    /// `write` stage must be measured first), so a client that has the
    /// answer may be a few microseconds ahead of the store.
    fn wait_for_trace(
        monitor: &mandipass_telemetry::Monitor,
        trace_id: u64,
    ) -> Option<mandipass_telemetry::RequestTrace> {
        for _ in 0..200 {
            if let Some(trace) = monitor.find_trace(trace_id) {
                return Some(trace);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        None
    }

    #[test]
    fn trace_ids_echo_over_tcp_and_land_in_the_store() {
        let server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let mut client = VerifyClient::connect(server.local_addr()).unwrap();
        let service = shared_arc();
        let monitor = service.system().monitor();

        // Client-supplied id: echoed verbatim and findable in the store.
        let (user, probe) = genuine_probe(53_000);
        let chosen = 0x00c0_ffee_0000_0001_u64;
        let (response, echoed) = client
            .call_traced(
                &Request::Verify {
                    user_id: user,
                    probe,
                },
                Some(chosen),
            )
            .unwrap();
        assert!(matches!(response, Response::Decision { .. }));
        assert_eq!(echoed, Some(chosen));
        let trace = wait_for_trace(monitor, chosen)
            .unwrap_or_else(|| panic!("trace {chosen:x} not recorded"));
        assert_eq!(trace.endpoint, "verify");
        assert!(trace.stage_nanos() <= trace.total_nanos);
        let names: Vec<&str> = trace.stages.iter().map(|s| s.name).collect();
        assert!(
            names.contains(&"verify") && names.contains(&"write"),
            "wire stages missing: {names:?}"
        );

        // No explicit id: the client mints one and the server echoes it.
        let (_, echoed) = client.call_traced(&Request::Health, None).unwrap();
        let minted = echoed.unwrap_or_else(|| panic!("server did not echo a minted id"));
        assert!(wait_for_trace(monitor, minted).is_some());
    }

    #[test]
    fn garbage_frame_gets_a_bad_request_response() {
        let server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        protocol::write_frame(&mut stream, b"this is not json").unwrap();
        let payload = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
        match Response::from_frame(&payload).unwrap() {
            Response::Error { kind, .. } => assert_eq!(kind, "bad_request"),
            other => panic!("expected bad_request, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_clients_all_get_answers() {
        let server = VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                workers: 4,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    let mut client = VerifyClient::connect(addr).unwrap();
                    for r in 0..3u64 {
                        let (user, probe) = genuine_probe(52_000 + t * 100 + r);
                        let response = client
                            .call(&Request::Verify {
                                user_id: user,
                                probe,
                            })
                            .unwrap();
                        assert!(
                            matches!(response, Response::Decision { .. }),
                            "worker thread dropped a request: {response:?}"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn half_open_client_cannot_wedge_the_single_worker() {
        let server = VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                read_timeout: Duration::from_millis(100),
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        // A client that connects and then stalls — it even trickles a
        // partial frame header so the server is mid-read when it stops.
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(&[0u8, 0]).unwrap();
        // The single worker must shed the stalled connection at the read
        // timeout and answer the next client promptly.
        let start = Instant::now();
        let mut client = VerifyClient::connect(addr).unwrap();
        let response = client.call(&Request::Health).unwrap();
        assert!(matches!(response, Response::Health { .. }));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "stalled client wedged the worker for {:?}",
            start.elapsed()
        );
        drop(stalled);
    }

    #[test]
    fn shutdown_joins_all_threads_and_is_idempotent() {
        let mut server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        // Accepting is over: a fresh connection gets no service (either
        // refused outright or closed without an answer).
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = protocol::write_frame(&mut stream, b"{\"v\":1,\"op\":\"health\"}");
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            assert!(
                !matches!(protocol::read_frame(&mut stream, 1 << 20), Ok(Some(_))),
                "server answered after shutdown"
            );
        }
    }
}
