//! The TCP front: acceptor thread + bounded admission queue + fixed
//! worker pool.
//!
//! One acceptor thread owns the listener. Every accepted connection gets
//! `TCP_NODELAY` (responses are single small frames; Nagle would add a
//! full RTT under closed-loop load) and a read timeout (a stalled or
//! half-open client costs a worker at most one timeout, never a wedge),
//! then rides a **capacity-bounded** `sync_channel` to the first free
//! worker. When the queue is full the connection is shed immediately
//! with a typed `overloaded` error carrying `retry_after_ms` — the
//! server says "no" instead of letting latency grow without bound.
//! Workers answer framed requests on the connection until the peer
//! closes, an error or timeout fires, or the server shuts down.
//!
//! Shed taxonomy (each a typed counter):
//!
//! * `serve.shed.queue_full` — the admission queue was full at accept.
//! * `serve.shed.deadline` — the request carried a `deadline_ms` budget
//!   its queue wait alone had already blown; the worker replies
//!   `deadline_exceeded` without running the forward pass.
//! * `serve.shed.breaker` — the service's circuit breaker fast-rejected
//!   (counted in [`crate::service`]).
//!
//! Queue-full and deadline sheds feed the breaker's failure window
//! (`CircuitBreaker::record_shed`), so a sustained shed rate opens the
//! breaker and clients get told to back off before they even enqueue.
//!
//! Shutdown is graceful and idempotent: the stop flag flips, a loopback
//! connect unblocks `accept`, the acceptor exits and drops the channel
//! sender, each worker finishes its current connection, **drains** any
//! connection still queued with a typed `shutting_down` reply (within a
//! bounded drain window) rather than a silent hang-up, sees the channel
//! hang up, and `shutdown` joins them all. Dropping the server shuts it
//! down.
//!
//! Observability: the acceptor stamps each hand-off with its accept
//! time, so the worker attributes `queue_wait` to the connection's
//! first request; `serve.queue_depth` gauges connections *waiting* in
//! the admission queue only, `serve.inflight` gauges requests currently
//! being processed, `serve.connections_active` gauges connections a
//! worker holds, and `serve.worker_busy_micros` accumulates time
//! workers spend on requests. Each request runs under a trace id (the
//! client's, or a freshly minted one), which is echoed back in the
//! response frame's `trace` field and recorded — with the queue-wait /
//! decode / verify / write stage breakdown — in the monitor's sampled
//! trace store.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mandipass_util::json;

use crate::protocol::{self, Request, Response};
use crate::service::{PendingTrace, VerifyService, WireTiming};

/// A connection handed from the acceptor to a worker, stamped with its
/// accept time so the worker can attribute queue wait.
type Handoff = (TcpStream, Instant);

fn duration_nanos(duration: Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// Default bound on the admission queue (connections waiting for a
/// worker), overridable via the `MANDIPASS_SERVE_QUEUE` environment
/// variable through [`ServeConfig::default`].
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Environment variable [`ServeConfig::default`] reads for the
/// admission-queue capacity.
pub const QUEUE_ENV: &str = "MANDIPASS_SERVE_QUEUE";

fn env_queue_capacity() -> usize {
    std::env::var(QUEUE_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_QUEUE_CAPACITY)
}

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads (and thus maximum concurrently served
    /// connections).
    pub workers: usize,
    /// Per-read socket timeout; a connection idle longer is dropped.
    pub read_timeout: Duration,
    /// Largest accepted request frame.
    pub max_frame_bytes: usize,
    /// Admission-queue bound: connections waiting for a worker beyond
    /// this are shed with a typed `overloaded` reply instead of queued.
    pub queue_capacity: usize,
    /// The `retry_after_ms` hint attached to queue-full sheds.
    pub retry_after_ms: u64,
    /// At shutdown, how long each worker keeps answering queued
    /// connections with `shutting_down` before dropping the rest.
    pub drain_window: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            read_timeout: Duration::from_secs(2),
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
            queue_capacity: env_queue_capacity(),
            retry_after_ms: 100,
            drain_window: Duration::from_millis(500),
        }
    }
}

/// The running verify server. Dropping it shuts it down.
pub struct VerifyServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for VerifyServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifyServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl VerifyServer {
    /// Binds `addr` (port 0 for ephemeral) and starts the acceptor plus
    /// `config.workers` worker threads over the shared `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind and thread-spawn failures.
    pub fn bind(service: Arc<VerifyService>, addr: &str, config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (sender, receiver) = sync_channel::<Handoff>(config.queue_capacity.max(1));
        let receiver = Arc::new(Mutex::new(receiver));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let service = Arc::clone(&service);
                let receiver = Arc::clone(&receiver);
                let stop = Arc::clone(&stop);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("mandipass-serve-{i}"))
                    .spawn(move || {
                        // Label this worker's profiler subtree so
                        // per-worker call trees merge under distinct
                        // `workerN.…` roots instead of aliasing.
                        mandipass_telemetry::profile::set_thread_root(&format!("worker{i}"));
                        worker_loop(&service, &receiver, &stop, &config)
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        let acceptor = {
            let stop = Arc::clone(&stop);
            let config = config.clone();
            let shedders = Arc::new(AtomicUsize::new(0));
            std::thread::Builder::new()
                .name("mandipass-serve-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // Latency hygiene + wedge protection, applied
                        // before the connection reaches any worker.
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(Some(config.read_timeout));
                        mandipass_telemetry::counter!("serve.connections").inc();
                        match sender.try_send((stream, Instant::now())) {
                            Ok(()) => {
                                mandipass_telemetry::gauge!("serve.queue_depth").add(1.0);
                            }
                            Err(TrySendError::Full((stream, _))) => {
                                mandipass_telemetry::counter!("serve.shed.queue_full").inc();
                                service.breaker().record_shed();
                                shed_overloaded(stream, &config, &shedders);
                            }
                            Err(TrySendError::Disconnected(_)) => break,
                        }
                    }
                    // Dropping `sender` here hangs up the channel and
                    // lets idle workers exit.
                })?
        };

        Ok(VerifyServer {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stops accepting, lets each worker finish its
    /// current connection and drain still-queued ones with a typed
    /// `shutting_down` reply, joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; the loop re-checks the flag first.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for VerifyServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Most shed connections still hold an unread request frame; replying
/// and draining it in a short-lived thread keeps the acceptor free and
/// avoids the reset-on-close that would destroy the reply in the
/// peer's receive buffer. Bounded: past this many concurrent shedder
/// threads the connection is dropped unanswered (a connect flood must
/// not trade queue exhaustion for thread exhaustion).
const MAX_SHEDDER_THREADS: usize = 64;

fn shed_overloaded(stream: TcpStream, config: &ServeConfig, shedders: &Arc<AtomicUsize>) {
    if shedders.fetch_add(1, Ordering::SeqCst) >= MAX_SHEDDER_THREADS {
        shedders.fetch_sub(1, Ordering::SeqCst);
        return; // drop: the flood gets a close, not a thread
    }
    let in_thread = Arc::clone(shedders);
    let max_frame_bytes = config.max_frame_bytes;
    let retry_after_ms = config.retry_after_ms;
    let spawned = std::thread::Builder::new()
        .name("mandipass-serve-shed".to_string())
        .spawn(move || {
            let mut stream = stream;
            reply_and_drain(
                &mut stream,
                max_frame_bytes,
                &Response::overloaded("admission queue full", retry_after_ms),
            );
            in_thread.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        shedders.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Reads the pending request frame (so the close is clean and the trace
/// id can be echoed), writes the typed reply, lets the stream drop.
fn reply_and_drain(stream: &mut TcpStream, max_frame_bytes: usize, response: &Response) {
    let trace_id = match protocol::read_frame(stream, max_frame_bytes) {
        Ok(Some(payload)) => std::str::from_utf8(&payload)
            .ok()
            .and_then(|text| json::parse(text).ok())
            .and_then(|doc| protocol::trace_id_of(&doc)),
        _ => None,
    };
    let doc = match trace_id {
        Some(id) => protocol::with_trace_id(response.to_json(), id),
        None => response.to_json(),
    };
    let _ = protocol::write_frame(stream, doc.to_json().as_bytes());
}

fn worker_loop(
    service: &VerifyService,
    receiver: &Mutex<Receiver<Handoff>>,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    // Set when this worker first sees a queued connection after the
    // stop flag flipped; bounds how long draining may take.
    let mut drain_deadline: Option<Instant> = None;
    loop {
        // Hold the lock only for the hand-off, not while serving.
        let handoff = receiver
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv();
        match handoff {
            Ok((mut stream, accepted_at)) => {
                mandipass_telemetry::gauge!("serve.queue_depth").add(-1.0);
                if stop.load(Ordering::SeqCst) {
                    let deadline =
                        *drain_deadline.get_or_insert_with(|| Instant::now() + config.drain_window);
                    drain_connection(&mut stream, config, deadline);
                    continue;
                }
                let active = mandipass_telemetry::gauge!("serve.connections_active");
                active.add(1.0);
                serve_connection(service, &mut stream, stop, config, accepted_at.elapsed());
                active.add(-1.0);
            }
            Err(_) => break, // acceptor hung up: shutdown
        }
    }
}

/// Answers one queued connection's pending request with a typed
/// `shutting_down` error instead of a silent hang-up, unless the drain
/// window is already spent.
fn drain_connection(stream: &mut TcpStream, config: &ServeConfig, deadline: Instant) {
    mandipass_telemetry::counter!("serve.drained").inc();
    let now = Instant::now();
    if now >= deadline {
        return; // window spent: the close itself is the answer
    }
    let budget = (deadline - now).min(config.read_timeout);
    let _ = stream.set_read_timeout(Some(budget));
    reply_and_drain(
        stream,
        config.max_frame_bytes,
        &Response::error(
            protocol::KIND_SHUTTING_DOWN,
            "server is shutting down; retry against another instance",
        ),
    );
}

/// Answers framed requests on one connection until the peer closes, an
/// I/O error or read timeout fires, or shutdown is requested.
///
/// `queue_wait` (accept → worker pick-up) is attributed to the first
/// request only; later requests on the same connection waited in the
/// kernel socket buffer, not our queue. A request whose `deadline_ms`
/// budget is smaller than that queue wait is shed without running the
/// forward pass.
fn serve_connection(
    service: &VerifyService,
    stream: &mut TcpStream,
    stop: &AtomicBool,
    config: &ServeConfig,
    queue_wait: Duration,
) {
    let mut queue_wait_nanos = duration_nanos(queue_wait);
    while !stop.load(Ordering::SeqCst) {
        match protocol::read_frame(stream, config.max_frame_bytes) {
            Ok(Some(payload)) => {
                let arrived = Instant::now();
                let inflight = mandipass_telemetry::gauge!("serve.inflight");
                inflight.add(1.0);
                let timing_queue = std::mem::take(&mut queue_wait_nanos);
                let parsed = Request::from_frame_meta(&payload);
                let timing = WireTiming {
                    queue_wait_nanos: timing_queue,
                    decode_nanos: duration_nanos(arrived.elapsed()),
                };
                let (response, pending) = match parsed {
                    Ok((request, meta)) => {
                        let trace_id = meta.trace_id.unwrap_or_else(mandipass_telemetry::mint_id);
                        let blown = meta
                            .deadline_ms
                            .is_some_and(|ms| timing_queue > ms.saturating_mul(1_000_000));
                        if blown {
                            mandipass_telemetry::counter!("serve.shed.deadline").inc();
                            service.breaker().record_shed();
                            let response = Response::error(
                                protocol::KIND_DEADLINE,
                                format!(
                                    "queue wait {} ms blew the {} ms deadline",
                                    timing_queue / 1_000_000,
                                    meta.deadline_ms.unwrap_or(0),
                                ),
                            );
                            let pending =
                                PendingTrace::shed(trace_id, protocol::KIND_DEADLINE, timing);
                            (response, pending)
                        } else {
                            service.handle_traced(&request, trace_id, timing)
                        }
                    }
                    Err(message) => {
                        mandipass_telemetry::counter!("serve.bad_requests").inc();
                        let response = Response::error("bad_request", message);
                        let pending =
                            PendingTrace::bad_request(mandipass_telemetry::mint_id(), timing);
                        (response, pending)
                    }
                };
                let payload =
                    protocol::with_trace_id(response.to_json(), pending.trace_id()).to_json();
                let write_start = Instant::now();
                let write_ok = protocol::write_frame(stream, payload.as_bytes()).is_ok();
                let write_nanos = duration_nanos(write_start.elapsed());
                let total_nanos = timing_queue.saturating_add(duration_nanos(arrived.elapsed()));
                pending.commit(service.system().monitor(), write_nanos, total_nanos);
                mandipass_telemetry::counter!("serve.worker_busy_micros")
                    .add(total_nanos.saturating_sub(timing_queue) / 1_000);
                inflight.add(-1.0);
                if !write_ok {
                    break;
                }
            }
            // Clean close, garbage, timeout, or disconnect: in every
            // case the worker moves on to the next connection.
            Ok(None) | Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::VerifyClient;
    use crate::protocol::with_deadline_ms;
    use crate::test_support::{genuine_probe, genuine_probes, shared_arc};
    use std::io::Write as _;
    use std::time::Instant;

    #[test]
    fn serves_verify_and_health_over_tcp() {
        let server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let mut client = VerifyClient::connect(server.local_addr()).unwrap();
        match client.call(&Request::Health).unwrap() {
            Response::Health { enrolled, health } => {
                assert!(enrolled >= 1);
                // The health document now carries the breaker state.
                assert_eq!(
                    health
                        .get("breaker")
                        .and_then(|b| b.get("state"))
                        .and_then(mandipass_util::json::Value::as_str),
                    Some("closed")
                );
            }
            other => panic!("expected health, got {other:?}"),
        }
        let (user, probes) = genuine_probes(51_000, 3);
        match client
            .call(&Request::VerifyWithPolicy {
                user_id: user,
                probes,
            })
            .unwrap()
        {
            Response::Decision { accepted, .. } => assert!(accepted),
            other => panic!("expected decision, got {other:?}"),
        }
        // Unknown user → typed error, connection stays usable.
        let (_, probe) = genuine_probe(51_100);
        match client
            .call(&Request::Verify {
                user_id: 4242,
                probe,
            })
            .unwrap()
        {
            Response::Error { kind, .. } => assert_eq!(kind, "not_enrolled"),
            other => panic!("expected error, got {other:?}"),
        }
    }

    /// The worker commits the trace after writing the response (the
    /// `write` stage must be measured first), so a client that has the
    /// answer may be a few microseconds ahead of the store.
    fn wait_for_trace(
        monitor: &mandipass_telemetry::Monitor,
        trace_id: u64,
    ) -> Option<mandipass_telemetry::RequestTrace> {
        for _ in 0..200 {
            if let Some(trace) = monitor.find_trace(trace_id) {
                return Some(trace);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        None
    }

    #[test]
    fn trace_ids_echo_over_tcp_and_land_in_the_store() {
        let server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let mut client = VerifyClient::connect(server.local_addr()).unwrap();
        let service = shared_arc();
        let monitor = service.system().monitor();

        // Client-supplied id: echoed verbatim and findable in the store.
        let (user, probe) = genuine_probe(53_000);
        let chosen = 0x00c0_ffee_0000_0001_u64;
        let (response, echoed) = client
            .call_traced(
                &Request::Verify {
                    user_id: user,
                    probe,
                },
                Some(chosen),
            )
            .unwrap();
        assert!(matches!(response, Response::Decision { .. }));
        assert_eq!(echoed, Some(chosen));
        let trace = wait_for_trace(monitor, chosen)
            .unwrap_or_else(|| panic!("trace {chosen:x} not recorded"));
        assert_eq!(trace.endpoint, "verify");
        assert!(trace.stage_nanos() <= trace.total_nanos);
        let names: Vec<&str> = trace.stages.iter().map(|s| s.name).collect();
        assert!(
            names.contains(&"verify") && names.contains(&"write"),
            "wire stages missing: {names:?}"
        );

        // No explicit id: the client mints one and the server echoes it.
        let (_, echoed) = client.call_traced(&Request::Health, None).unwrap();
        let minted = echoed.unwrap_or_else(|| panic!("server did not echo a minted id"));
        assert!(wait_for_trace(monitor, minted).is_some());
    }

    #[test]
    fn garbage_frame_gets_a_bad_request_response() {
        let server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        protocol::write_frame(&mut stream, b"this is not json").unwrap();
        let payload = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
        match Response::from_frame(&payload).unwrap() {
            Response::Error { kind, .. } => assert_eq!(kind, "bad_request"),
            other => panic!("expected bad_request, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_clients_all_get_answers() {
        let server = VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                workers: 4,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    let mut client = VerifyClient::connect(addr).unwrap();
                    for r in 0..3u64 {
                        let (user, probe) = genuine_probe(52_000 + t * 100 + r);
                        let response = client
                            .call(&Request::Verify {
                                user_id: user,
                                probe,
                            })
                            .unwrap();
                        assert!(
                            matches!(response, Response::Decision { .. }),
                            "worker thread dropped a request: {response:?}"
                        );
                    }
                });
            }
        });
    }

    #[test]
    fn half_open_client_cannot_wedge_the_single_worker() {
        let server = VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                read_timeout: Duration::from_millis(100),
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        // A client that connects and then stalls — it even trickles a
        // partial frame header so the server is mid-read when it stops.
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(&[0u8, 0]).unwrap();
        // The single worker must shed the stalled connection at the read
        // timeout and answer the next client promptly.
        let start = Instant::now();
        let mut client = VerifyClient::connect(addr).unwrap();
        let response = client.call(&Request::Health).unwrap();
        assert!(matches!(response, Response::Health { .. }));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "stalled client wedged the worker for {:?}",
            start.elapsed()
        );
        drop(stalled);
    }

    /// Occupies the single worker: a connection that sent a policy
    /// request whose faulted probes cost real pipeline time.
    fn plug_worker(addr: SocketAddr) -> TcpStream {
        let (user, probes) = genuine_probes(55_000, 3);
        let request = Request::VerifyWithPolicy {
            user_id: user,
            probes,
        };
        let mut plug = TcpStream::connect(addr).unwrap();
        protocol::write_frame(&mut plug, request.to_json().to_json().as_bytes()).unwrap();
        plug
    }

    /// Polls until the single worker actually holds a connection, so a
    /// subsequent flood deterministically contends for the queue.
    fn wait_for_active(before: f64) {
        let active = mandipass_telemetry::metrics().gauge("serve.connections_active");
        for _ in 0..500 {
            if active.get() > before {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("worker never picked the plug connection up");
    }

    #[test]
    fn queue_full_sheds_typed_overloaded_with_retry_hint() {
        let shed = mandipass_telemetry::metrics().counter("serve.shed.queue_full");
        let before_shed = shed.get();
        let active_before = mandipass_telemetry::metrics()
            .gauge("serve.connections_active")
            .get();
        let server = VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                retry_after_ms: 77,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        let _plug = plug_worker(addr);
        wait_for_active(active_before);
        // Fill the queue's single slot, then flood: every extra
        // connection must get a typed overloaded reply, not a hang-up.
        let mut filler = TcpStream::connect(addr).unwrap();
        protocol::write_frame(&mut filler, b"{\"v\":1,\"op\":\"health\"}").unwrap();
        std::thread::sleep(Duration::from_millis(50)); // let it enqueue
        let mut overloaded = 0usize;
        for _ in 0..4 {
            let mut extra = TcpStream::connect(addr).unwrap();
            extra
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            protocol::write_frame(
                &mut extra,
                b"{\"v\":1,\"op\":\"health\",\"trace\":\"00000000000000aa\"}",
            )
            .unwrap();
            let payload = protocol::read_frame(&mut extra, 1 << 20)
                .unwrap_or_else(|e| panic!("shed reply must arrive, got {e}"))
                .unwrap_or_else(|| panic!("shed reply must be a frame, not a close"));
            match Response::from_frame(&payload).unwrap() {
                Response::Error {
                    kind,
                    retry_after_ms,
                    ..
                } if kind == protocol::KIND_OVERLOADED => {
                    assert_eq!(retry_after_ms, Some(77));
                    overloaded += 1;
                }
                // The worker may have freed up mid-flood; decisions and
                // health replies are fine — hang-ups are not.
                _ => {}
            }
        }
        assert!(overloaded >= 1, "flood never hit the queue bound");
        assert!(shed.get() >= before_shed + overloaded as u64);
        // The shed reply echoes the client's trace id when one was sent.
    }

    #[test]
    fn blown_deadline_is_shed_before_the_forward_pass() {
        let shed = mandipass_telemetry::metrics().counter("serve.shed.deadline");
        let before = shed.get();
        let active_before = mandipass_telemetry::metrics()
            .gauge("serve.connections_active")
            .get();
        let server = VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                queue_capacity: 4,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        let _plug = plug_worker(addr);
        wait_for_active(active_before);
        // A zero budget cannot survive any queue wait; the worker must
        // shed it when it finally picks the connection up.
        let (user, probe) = genuine_probe(55_100);
        let request = Request::Verify {
            user_id: user,
            probe,
        };
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        protocol::write_frame(
            &mut stream,
            with_deadline_ms(request.to_json(), 0).to_json().as_bytes(),
        )
        .unwrap();
        let payload = protocol::read_frame(&mut stream, 1 << 20).unwrap().unwrap();
        match Response::from_frame(&payload).unwrap() {
            Response::Error { kind, .. } => assert_eq!(kind, protocol::KIND_DEADLINE),
            other => panic!("expected deadline shed, got {other:?}"),
        }
        assert!(shed.get() > before);
        // A generous budget on the same (now idle) server is served.
        let mut client = VerifyClient::connect(addr).unwrap();
        let (user, probe) = genuine_probe(55_200);
        assert!(matches!(
            client
                .call(&Request::Verify {
                    user_id: user,
                    probe
                })
                .unwrap(),
            Response::Decision { .. }
        ));
    }

    #[test]
    fn shutdown_drains_queued_connections_with_typed_reply() {
        let active_before = mandipass_telemetry::metrics()
            .gauge("serve.connections_active")
            .get();
        let mut server = VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                queue_capacity: 4,
                drain_window: Duration::from_secs(2),
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        let _plug = plug_worker(addr);
        wait_for_active(active_before);
        // Two connections sitting in the queue when shutdown starts.
        let mut queued: Vec<TcpStream> = (0..2)
            .map(|_| {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                protocol::write_frame(&mut s, b"{\"v\":1,\"op\":\"health\"}").unwrap();
                s
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50)); // let them enqueue
        let done = std::thread::spawn(move || {
            server.shutdown();
            server
        });
        for stream in &mut queued {
            let payload = protocol::read_frame(stream, 1 << 20)
                .unwrap_or_else(|e| panic!("drained connection must get a reply, got {e}"))
                .unwrap_or_else(|| panic!("drained connection must get a frame, not a close"));
            match Response::from_frame(&payload).unwrap() {
                Response::Error { kind, .. } => {
                    assert_eq!(kind, protocol::KIND_SHUTTING_DOWN)
                }
                other => panic!("expected shutting_down, got {other:?}"),
            }
        }
        let _server = done.join().unwrap();
    }

    #[test]
    fn shutdown_joins_all_threads_and_is_idempotent() {
        let mut server = VerifyServer::bind(shared_arc(), "127.0.0.1:0", ServeConfig::default())
            .unwrap_or_else(|e| panic!("bind: {e}"));
        let addr = server.local_addr();
        server.shutdown();
        server.shutdown();
        // Accepting is over: a fresh connection gets no service (either
        // refused outright or closed without an answer).
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = protocol::write_frame(&mut stream, b"{\"v\":1,\"op\":\"health\"}");
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            assert!(
                !matches!(protocol::read_frame(&mut stream, 1 << 20), Ok(Some(_))),
                "server answered after shutdown"
            );
        }
    }

    #[test]
    fn queue_env_knob_feeds_the_default_config() {
        // Default when unset or garbled.
        assert!(ServeConfig::default().queue_capacity >= 1);
        assert_eq!(env_queue_capacity(), DEFAULT_QUEUE_CAPACITY);
    }
}
