//! Deterministic network-chaos harness: an in-process TCP fault proxy.
//!
//! [`ChaosProxy`] sits between a client and an upstream server and
//! forwards bytes while injecting transport faults — frames split at
//! arbitrary byte boundaries, byte-trickle delivery, abrupt
//! mid-frame closes, stalled reads — so tests and the overload bench
//! can exercise the server's framing and timeout behaviour without a
//! real degraded network.
//!
//! Determinism is the point: a proxy is configured with an explicit
//! per-connection [`ConnPlan`] list (connection `i` gets plan
//! `i % plans.len()`), or with [`ChaosProxy::deterministic`], which
//! derives each connection's plan from a seed and the connection index
//! via the workspace PRNG. Two same-seed runs inject byte-identical
//! fault schedules, so chaos tests are reproducible, not flaky.
//!
//! The proxy is std-only: one acceptor thread, two pump threads per
//! connection (client→server and server→client), short read timeouts so
//! every thread notices shutdown promptly. It is *not* `cfg(test)` —
//! the bench crate drives it too.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::{Rng, SeedableRng};

/// A transport fault applied to one direction of one proxied
/// connection. Byte offsets count from the first byte of that
/// direction's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward bytes unmodified.
    Passthrough,
    /// Forward normally, but force a segment boundary (separate write
    /// plus a short pause) at this byte offset — a frame "split" at an
    /// arbitrary point, including mid-length-prefix.
    SplitAt(usize),
    /// Deliver in fixed-size chunks with a pause after each — trickle
    /// delivery (`Chunk { size: 1, .. }` is the classic byte-trickle).
    Chunk {
        /// Bytes per write.
        size: usize,
        /// Pause after each chunk, microseconds.
        delay_micros: u64,
    },
    /// Forward this many bytes, then close both directions abruptly —
    /// the peer sees a connection death mid-frame.
    CloseAfter(usize),
    /// Forward this many bytes, then go silent while holding the
    /// connection open — the peer's read stalls until its own timeout.
    StallAfter(usize),
}

/// Per-connection fault plan: independent faults per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnPlan {
    /// Applied to bytes flowing client → server.
    pub to_server: Fault,
    /// Applied to bytes flowing server → client.
    pub to_client: Fault,
}

impl ConnPlan {
    /// A plan that forwards both directions unmodified.
    pub fn passthrough() -> Self {
        ConnPlan {
            to_server: Fault::Passthrough,
            to_client: Fault::Passthrough,
        }
    }

    /// The plan connection `index` gets under `seed` — a pure function,
    /// so any run (or any assertion) can reconstruct the schedule.
    /// Mixes the index through SplitMix-style odd constants before
    /// seeding so consecutive indices get decorrelated streams.
    pub fn for_index(seed: u64, index: usize) -> Self {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let to_server = Self::draw(&mut rng);
        ConnPlan {
            to_server,
            to_client: Fault::Passthrough,
        }
    }

    fn draw(rng: &mut StdRng) -> Fault {
        match rng.gen_range(0u32..4) {
            0 => Fault::Passthrough,
            1 => Fault::SplitAt(rng.gen_range(1usize..64)),
            2 => Fault::Chunk {
                size: rng.gen_range(1usize..8),
                delay_micros: rng.gen_range(0u64..200),
            },
            _ => Fault::CloseAfter(rng.gen_range(1usize..32)),
        }
    }
}

/// The pause injected at a [`Fault::SplitAt`] boundary — long enough to
/// defeat kernel segment coalescing on loopback, short enough to stay
/// far below any read timeout.
const SPLIT_PAUSE: Duration = Duration::from_millis(2);

/// Pump-loop read timeout: bounds how long a proxy thread can miss the
/// stop flag.
const PUMP_TICK: Duration = Duration::from_millis(25);

/// A running fault proxy. Dropping it shuts it down.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("accepted", &self.accepted.load(Ordering::SeqCst))
            .finish()
    }
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port forwarding to
    /// `upstream`. Connection `i` (0-based accept order) runs under
    /// `plans[i % plans.len()]`; an empty list means passthrough.
    ///
    /// # Errors
    ///
    /// Propagates bind and thread-spawn failures.
    pub fn spawn(upstream: SocketAddr, plans: Vec<ConnPlan>) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            std::thread::Builder::new()
                .name("mandipass-chaos-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = stream else { continue };
                        let index = accepted.fetch_add(1, Ordering::SeqCst);
                        let plan = if plans.is_empty() {
                            ConnPlan::passthrough()
                        } else {
                            plans[index % plans.len()]
                        };
                        let stop = Arc::clone(&stop);
                        let _ = std::thread::Builder::new()
                            .name(format!("mandipass-chaos-{index}"))
                            .spawn(move || proxy_connection(client, upstream, plan, &stop));
                    }
                })?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            accepted,
            acceptor: Some(acceptor),
        })
    }

    /// A proxy whose per-connection plans are derived from `seed` via
    /// [`ConnPlan::for_index`] — the open-loop bench's chaos mode.
    ///
    /// # Errors
    ///
    /// As [`ChaosProxy::spawn`].
    pub fn deterministic(upstream: SocketAddr, seed: u64, connections: usize) -> io::Result<Self> {
        let plans = (0..connections.max(1))
            .map(|i| ConnPlan::for_index(seed, i))
            .collect();
        Self::spawn(upstream, plans)
    }

    /// The proxy's listening address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stops accepting and signals every pump thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Opens `count` connections to `addr` without sending a byte — the
/// connect-flood half of the chaos vocabulary. The returned sockets
/// keep the connections open; dropping them releases the flood.
///
/// # Errors
///
/// Propagates the first connect failure; sockets opened before the
/// failure are dropped, releasing their connections.
pub fn connect_flood(addr: SocketAddr, count: usize) -> io::Result<Vec<TcpStream>> {
    (0..count)
        .map(|_| TcpStream::connect_timeout(&addr, Duration::from_secs(5)))
        .collect()
}

fn proxy_connection(client: TcpStream, upstream: SocketAddr, plan: ConnPlan, stop: &AtomicBool) {
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) else {
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (Ok(client_rx), Ok(server_rx)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    std::thread::scope(|scope| {
        scope.spawn(|| pump(client_rx, server, plan.to_server, stop));
        pump(server_rx, client, plan.to_client, stop);
    });
}

/// Forwards bytes `from` → `to` under `fault` until EOF, error, or
/// stop. Read timeouts tick so the stop flag is honoured promptly.
fn pump(mut from: TcpStream, mut to: TcpStream, fault: Fault, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(PUMP_TICK));
    let mut forwarded = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        if !forward(&mut to, &buf[..n], &mut forwarded, fault, stop) {
            break;
        }
    }
    // Propagate the half-close so the other side sees EOF rather than a
    // stall (the StallAfter fault deliberately skips this by breaking
    // out of `forward` with the connection still open — its hang *is*
    // the fault — but once the pump exits, the shutdown is the cleanup).
    let _ = to.shutdown(std::net::Shutdown::Write);
}

/// Writes `bytes` under `fault`, tracking the absolute offset in
/// `forwarded`. Returns `false` when the connection should die.
fn forward(
    to: &mut TcpStream,
    bytes: &[u8],
    forwarded: &mut usize,
    fault: Fault,
    stop: &AtomicBool,
) -> bool {
    match fault {
        Fault::Passthrough => {
            *forwarded += bytes.len();
            to.write_all(bytes).is_ok()
        }
        Fault::SplitAt(split) => {
            let offset = *forwarded;
            *forwarded += bytes.len();
            if split > offset && split < offset + bytes.len() {
                let cut = split - offset;
                if to.write_all(&bytes[..cut]).is_err() || to.flush().is_err() {
                    return false;
                }
                std::thread::sleep(SPLIT_PAUSE);
                to.write_all(&bytes[cut..]).is_ok()
            } else {
                to.write_all(bytes).is_ok()
            }
        }
        Fault::Chunk { size, delay_micros } => {
            *forwarded += bytes.len();
            for chunk in bytes.chunks(size.max(1)) {
                if stop.load(Ordering::SeqCst) {
                    return false;
                }
                if to.write_all(chunk).is_err() || to.flush().is_err() {
                    return false;
                }
                if delay_micros > 0 {
                    std::thread::sleep(Duration::from_micros(delay_micros));
                }
            }
            true
        }
        Fault::CloseAfter(limit) => {
            let remaining = limit.saturating_sub(*forwarded);
            let cut = remaining.min(bytes.len());
            if cut > 0 && to.write_all(&bytes[..cut]).is_err() {
                return false;
            }
            *forwarded += cut;
            if *forwarded >= limit {
                // Abrupt death: both directions, mid-frame.
                let _ = to.shutdown(std::net::Shutdown::Both);
                return false;
            }
            true
        }
        Fault::StallAfter(limit) => {
            let remaining = limit.saturating_sub(*forwarded);
            let cut = remaining.min(bytes.len());
            if cut > 0 && to.write_all(&bytes[..cut]).is_err() {
                return false;
            }
            *forwarded += cut;
            if *forwarded >= limit {
                // Go silent but keep the socket open: the peer's read
                // must hit its own timeout. Wait for stop or peer close.
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(PUMP_TICK);
                }
                return false;
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::VerifyClient;
    use crate::protocol::{self, Request, Response};
    use crate::server::{ServeConfig, VerifyServer};
    use crate::test_support::{genuine_probe, shared_arc};
    use std::time::Instant;

    fn test_server() -> VerifyServer {
        VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                read_timeout: Duration::from_millis(500),
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"))
    }

    #[test]
    fn every_byte_boundary_split_still_parses() {
        let server = test_server();
        // The exact frame a health request puts on the wire.
        let payload = Request::Health.to_json().to_json();
        let frame_len = 4 + payload.len();
        // Exhaustive, proptest-spirited: a fresh proxied connection per
        // split point, every interior boundary including both
        // length-prefix cuts (1..4) and every JSON-body cut.
        let plans: Vec<ConnPlan> = (1..frame_len)
            .map(|cut| ConnPlan {
                to_server: Fault::SplitAt(cut),
                to_client: Fault::Passthrough,
            })
            .collect();
        let boundaries = plans.len();
        let mut proxy = ChaosProxy::spawn(server.local_addr(), plans).unwrap();
        for cut in 1..frame_len {
            let mut client = VerifyClient::connect(proxy.local_addr()).unwrap();
            match client.call(&Request::Health) {
                Ok(Response::Health { .. }) => {}
                other => panic!("split at byte {cut} broke framing: {other:?}"),
            }
        }
        assert_eq!(proxy.accepted(), boundaries);
        proxy.shutdown();
    }

    #[test]
    fn trickle_and_chunked_delivery_still_get_answers() {
        let server = test_server();
        let plans = vec![
            ConnPlan {
                to_server: Fault::Chunk {
                    size: 1,
                    delay_micros: 50,
                },
                to_client: Fault::Passthrough,
            },
            ConnPlan {
                to_server: Fault::Chunk {
                    size: 7,
                    delay_micros: 0,
                },
                to_client: Fault::Chunk {
                    size: 3,
                    delay_micros: 10,
                },
            },
        ];
        let proxy = ChaosProxy::spawn(server.local_addr(), plans).unwrap();
        // Byte-trickled health request.
        let mut client = VerifyClient::connect(proxy.local_addr()).unwrap();
        assert!(matches!(
            client.call(&Request::Health).unwrap(),
            Response::Health { .. }
        ));
        // Chunked-both-ways verify with a real probe frame.
        let (user, probe) = genuine_probe(57_000);
        let mut client = VerifyClient::connect(proxy.local_addr()).unwrap();
        assert!(matches!(
            client
                .call(&Request::Verify {
                    user_id: user,
                    probe
                })
                .unwrap(),
            Response::Decision { .. }
        ));
    }

    #[test]
    fn abrupt_close_mid_frame_does_not_wedge_the_server() {
        let server = test_server();
        let addr = server.local_addr();
        let plans = vec![ConnPlan {
            to_server: Fault::CloseAfter(2), // dies inside the length prefix
            to_client: Fault::Passthrough,
        }];
        let proxy = ChaosProxy::spawn(addr, plans).unwrap();
        let mut doomed = VerifyClient::connect(proxy.local_addr()).unwrap();
        // The call fails — reset or EOF, depending on timing — but must
        // not hang past the read timeout.
        let start = Instant::now();
        let result = doomed.call(&Request::Health);
        assert!(result.is_err(), "a connection cut mid-frame cannot answer");
        assert!(start.elapsed() < Duration::from_secs(5));
        // And the server is still healthy for direct clients.
        let mut direct = VerifyClient::connect(addr).unwrap();
        assert!(matches!(
            direct.call(&Request::Health).unwrap(),
            Response::Health { .. }
        ));
    }

    #[test]
    fn stalled_read_is_bounded_by_the_client_timeout() {
        let server = test_server();
        let plans = vec![ConnPlan {
            to_server: Fault::Passthrough,
            to_client: Fault::StallAfter(1), // reply stalls after one byte
        }];
        let proxy = ChaosProxy::spawn(server.local_addr(), plans).unwrap();
        let mut client =
            VerifyClient::connect_with_timeout(proxy.local_addr(), Duration::from_millis(300))
                .unwrap();
        let start = Instant::now();
        let result = client.call(&Request::Health);
        assert!(result.is_err(), "a stalled reply cannot parse");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "client read was not bounded: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn connect_flood_is_answered_with_typed_sheds_not_hangs() {
        let server = VerifyServer::bind(
            shared_arc(),
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                read_timeout: Duration::from_millis(500),
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("bind: {e}"));
        // Idle flood sockets occupy accept/queue slots without sending.
        let flood = connect_flood(server.local_addr(), 8).unwrap();
        // A real client arriving during the flood gets an answer —
        // either service or a typed overloaded error, never a hang.
        let mut client = VerifyClient::connect(server.local_addr()).unwrap();
        match client.call(&Request::Health) {
            Ok(Response::Health { .. }) => {}
            Ok(Response::Error { kind, .. }) => assert_eq!(kind, protocol::KIND_OVERLOADED),
            Ok(other) => panic!("unexpected response: {other:?}"),
            Err(e) => panic!("flood turned into a transport error: {e}"),
        }
        drop(flood);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let a: Vec<ConnPlan> = (0..32).map(|i| ConnPlan::for_index(99, i)).collect();
        let b: Vec<ConnPlan> = (0..32).map(|i| ConnPlan::for_index(99, i)).collect();
        assert_eq!(a, b);
        let c: Vec<ConnPlan> = (0..32).map(|i| ConnPlan::for_index(100, i)).collect();
        assert_ne!(a, c, "different seeds must draw different schedules");
        // The drawn faults cover more than one mode.
        let modes: std::collections::BTreeSet<u8> = a
            .iter()
            .map(|p| match p.to_server {
                Fault::Passthrough => 0,
                Fault::SplitAt(_) => 1,
                Fault::Chunk { .. } => 2,
                Fault::CloseAfter(_) => 3,
                Fault::StallAfter(_) => 4,
            })
            .collect();
        assert!(
            modes.len() >= 3,
            "32 draws should cover ≥3 modes: {modes:?}"
        );
    }
}
