//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — travels as one frame: a 4-byte
//! big-endian payload length followed by that many bytes of compact
//! UTF-8 JSON. Length-prefixing keeps the reader trivial (no streaming
//! JSON scanner, no delimiter escaping) and lets the server bound
//! memory per request before parsing a single byte.
//!
//! Probe recordings cross the wire as `{"rate": <hz>, "axes": [[..] x 6]}`.
//! The JSON writer emits shortest-round-trip `f64` text, so a recording
//! survives a TCP hop bit-identically and the server's decisions match
//! the in-process path exactly — the property the bench's transport-
//! parity check rests on.
//!
//! Requests and responses may carry an optional `"trace"` field: a
//! trace id as 16 lower-case hex digits (JSON numbers are f64 and would
//! corrupt a u64 above 2^53). Both parsers ignore unknown fields, so
//! old peers tolerate it and [`PROTOCOL_VERSION`] stays 1; the server
//! echoes the id in every response so a client can locate its request's
//! trace in `GET /traces`. Parse failures are measured as typed
//! telemetry counters: `serve.frame.oversized` (announced length over
//! the cap), `serve.frame.version_mismatch`, and
//! `serve.frame.malformed` (everything else).

use std::io::{self, Read, Write};

use mandipass_imu_sim::{Condition, Recording};
use mandipass_util::json::{self, Value};

/// Protocol version carried in every request's `"v"` field.
pub const PROTOCOL_VERSION: f64 = 1.0;

/// Hard ceiling on one frame's payload, shared by both directions.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one frame: 4-byte big-endian length + payload.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly before a new frame started.
///
/// # Errors
///
/// * `InvalidData` when the announced length exceeds `max_bytes`.
/// * `UnexpectedEof` when the peer closed mid-frame.
/// * Read timeouts and other socket errors propagate unchanged.
pub fn read_frame(reader: &mut impl Read, max_bytes: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        match reader.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_bytes {
        mandipass_telemetry::counter!("serve.frame.oversized").inc();
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_bytes}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Optional field carrying a trace id (hex) on requests and responses.
pub const TRACE_FIELD: &str = "trace";

/// Optional request field: the client's total latency budget in
/// milliseconds. A worker that picks the request up after its queue
/// wait alone blew the budget sheds it without running the forward
/// pass (`kind: "deadline_exceeded"`). Like [`TRACE_FIELD`], both
/// parsers ignore unknown fields, so [`PROTOCOL_VERSION`] stays 1.
pub const DEADLINE_FIELD: &str = "deadline_ms";

/// Stable error kind: the server shed the request under overload
/// (bounded admission queue full, or circuit breaker open). Carries
/// `retry_after_ms`.
pub const KIND_OVERLOADED: &str = "overloaded";
/// Stable error kind: the request's `deadline_ms` budget was already
/// spent waiting in the admission queue.
pub const KIND_DEADLINE: &str = "deadline_exceeded";
/// Stable error kind: the server is draining its queue for shutdown.
pub const KIND_SHUTTING_DOWN: &str = "shutting_down";
/// Stable error kind: the breaker is Degraded (drift alarm) and only
/// the policy path with its accel-only fallback is served.
pub const KIND_DEGRADED_ONLY: &str = "degraded_only";

/// Appends the deadline budget to a request document (no-op on
/// non-objects).
pub fn with_deadline_ms(doc: Value, deadline_ms: u64) -> Value {
    match doc {
        Value::Object(mut members) => {
            members.push((
                DEADLINE_FIELD.to_string(),
                Value::Number(deadline_ms as f64),
            ));
            Value::Object(members)
        }
        other => other,
    }
}

/// The deadline budget a request document carries; `None` when absent
/// or unparsable (a garbled budget must not fail an otherwise valid
/// request — the server just serves it without a deadline).
pub fn deadline_ms_of(doc: &Value) -> Option<u64> {
    let ms = doc.get(DEADLINE_FIELD).and_then(Value::as_f64)?;
    if ms.is_finite() && ms >= 0.0 && ms.fract() == 0.0 && ms <= 2f64.powi(53) {
        Some(ms as u64)
    } else {
        None
    }
}

/// Appends the trace id to a wire document (no-op on non-objects).
pub fn with_trace_id(doc: Value, trace_id: u64) -> Value {
    match doc {
        Value::Object(mut members) => {
            members.push((
                TRACE_FIELD.to_string(),
                Value::String(mandipass_telemetry::format_trace_id(trace_id)),
            ));
            Value::Object(members)
        }
        other => other,
    }
}

/// The trace id a wire document carries; `None` when the field is
/// absent or unparsable (tracing is best-effort metadata — a bad id
/// must not fail an otherwise valid request).
pub fn trace_id_of(doc: &Value) -> Option<u64> {
    doc.get(TRACE_FIELD)
        .and_then(Value::as_str)
        .and_then(|text| mandipass_telemetry::parse_trace_id(text).ok())
}

/// Classifies one request parse failure into the typed frame counters.
fn count_parse_error(message: &str) {
    if message.contains("unsupported protocol version") {
        mandipass_telemetry::counter!("serve.frame.version_mismatch").inc();
    } else {
        mandipass_telemetry::counter!("serve.frame.malformed").inc();
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The deployment's live health verdict plus enrolment count.
    Health,
    /// Single-probe verification against `user_id`'s template.
    Verify {
        /// The claimed identity.
        user_id: u32,
        /// The probe recording.
        probe: Recording,
    },
    /// Multi-probe verification under the server's [`VerifyPolicy`]
    /// (quality gate, bounded retry, degraded accel-only fallback).
    ///
    /// [`VerifyPolicy`]: mandipass::prelude::VerifyPolicy
    VerifyWithPolicy {
        /// The claimed identity.
        user_id: u32,
        /// Candidate probes, consumed in order up to the policy's
        /// attempt budget.
        probes: Vec<Recording>,
    },
}

impl Request {
    /// Serialises to the wire JSON document.
    pub fn to_json(&self) -> Value {
        let mut members = vec![("v".to_string(), Value::Number(PROTOCOL_VERSION))];
        match self {
            Request::Health => {
                members.push(("op".to_string(), Value::String("health".to_string())));
            }
            Request::Verify { user_id, probe } => {
                members.push(("op".to_string(), Value::String("verify".to_string())));
                members.push(("user".to_string(), Value::Number(f64::from(*user_id))));
                members.push(("probe".to_string(), recording_to_json(probe)));
            }
            Request::VerifyWithPolicy { user_id, probes } => {
                members.push(("op".to_string(), Value::String("verify_policy".to_string())));
                members.push(("user".to_string(), Value::Number(f64::from(*user_id))));
                members.push((
                    "probes".to_string(),
                    Value::Array(probes.iter().map(recording_to_json).collect()),
                ));
            }
        }
        Value::Object(members)
    }

    /// Parses a wire document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/malformed field; unknown
    /// `op` values and protocol versions are rejected explicitly.
    pub fn from_json(value: &Value) -> Result<Request, String> {
        let version = value
            .get("v")
            .and_then(Value::as_f64)
            .ok_or("request misses the \"v\" version field")?;
        if version != PROTOCOL_VERSION {
            return Err(format!("unsupported protocol version {version}"));
        }
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("request misses the \"op\" field")?;
        let user = || -> Result<u32, String> {
            let n = value
                .get("user")
                .and_then(Value::as_f64)
                .ok_or("request misses the \"user\" field")?;
            if n.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&n) {
                return Err(format!("\"user\" {n} is not a u32"));
            }
            Ok(n as u32)
        };
        match op {
            "health" => Ok(Request::Health),
            "verify" => Ok(Request::Verify {
                user_id: user()?,
                probe: recording_from_json(
                    value
                        .get("probe")
                        .ok_or("verify misses the \"probe\" field")?,
                )?,
            }),
            "verify_policy" => {
                let probes = value
                    .get("probes")
                    .and_then(Value::as_array)
                    .ok_or("verify_policy misses the \"probes\" array")?;
                Ok(Request::VerifyWithPolicy {
                    user_id: user()?,
                    probes: probes
                        .iter()
                        .map(recording_from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                })
            }
            other => Err(format!("unknown op \"{other}\"")),
        }
    }

    /// Parses raw frame bytes (UTF-8 + JSON + schema), counting
    /// failures into the typed frame counters.
    ///
    /// # Errors
    ///
    /// As [`Request::from_json`], plus UTF-8 and JSON syntax errors.
    pub fn from_frame(payload: &[u8]) -> Result<Request, String> {
        Request::from_frame_traced(payload).map(|(request, _)| request)
    }

    /// [`Request::from_frame`] plus the frame's trace id, when the
    /// client sent one.
    ///
    /// # Errors
    ///
    /// As [`Request::from_frame`]; a frame that fails to parse yields
    /// no trace id even if the raw text contained one.
    pub fn from_frame_traced(payload: &[u8]) -> Result<(Request, Option<u64>), String> {
        Request::from_frame_meta(payload).map(|(request, meta)| (request, meta.trace_id))
    }

    /// [`Request::from_frame`] plus the frame's optional envelope
    /// metadata (trace id, deadline budget).
    ///
    /// # Errors
    ///
    /// As [`Request::from_frame`]; a frame that fails to parse yields
    /// no metadata even if the raw text contained some.
    pub fn from_frame_meta(payload: &[u8]) -> Result<(Request, FrameMeta), String> {
        let parse = || -> Result<(Request, FrameMeta), String> {
            let text =
                std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
            let doc = json::parse(text)?;
            let request = Request::from_json(&doc)?;
            Ok((
                request,
                FrameMeta {
                    trace_id: trace_id_of(&doc),
                    deadline_ms: deadline_ms_of(&doc),
                },
            ))
        };
        parse().inspect_err(|message| count_parse_error(message))
    }
}

/// The optional envelope fields a request frame carried alongside the
/// request itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameMeta {
    /// The client's trace id ([`TRACE_FIELD`]).
    pub trace_id: Option<u64>,
    /// The client's latency budget ([`DEADLINE_FIELD`]).
    pub deadline_ms: Option<u64>,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Health`].
    Health {
        /// The drift monitor's `HealthReport` document.
        health: Value,
        /// Number of enrolled identities.
        enrolled: usize,
    },
    /// A verification decision (both verify flavours).
    Decision {
        /// Accepted as the claimed identity?
        accepted: bool,
        /// Cosine distance to the stored template.
        distance: f64,
        /// Threshold the decision was made against.
        threshold: f64,
        /// Whether the decision used degraded accel-only mode.
        degraded: bool,
        /// Probes consumed, including the deciding one.
        attempts: usize,
        /// Reject labels of probes consumed before the decision.
        rejects: Vec<String>,
    },
    /// A typed failure (`kind` is stable, `message` human-readable).
    Error {
        /// Stable error label (e.g. `not_enrolled`, `bad_request`,
        /// [`KIND_OVERLOADED`]).
        kind: String,
        /// Human-readable detail.
        message: String,
        /// For shed responses ([`KIND_OVERLOADED`]): how long the
        /// client should back off before retrying. `None` on every
        /// other error kind.
        retry_after_ms: Option<u64>,
    },
}

impl Response {
    /// A typed error with no retry hint — the shape every pre-overload
    /// error site produces.
    pub fn error(kind: &str, message: impl Into<String>) -> Response {
        Response::Error {
            kind: kind.to_string(),
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// An [`KIND_OVERLOADED`] shed response carrying a retry hint.
    pub fn overloaded(message: impl Into<String>, retry_after_ms: u64) -> Response {
        Response::Error {
            kind: KIND_OVERLOADED.to_string(),
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }
}

impl Response {
    /// Serialises to the wire JSON document.
    pub fn to_json(&self) -> Value {
        match self {
            Response::Health { health, enrolled } => Value::Object(vec![
                ("ok".to_string(), Value::Bool(true)),
                ("op".to_string(), Value::String("health".to_string())),
                ("enrolled".to_string(), Value::Number(*enrolled as f64)),
                ("health".to_string(), health.clone()),
            ]),
            Response::Decision {
                accepted,
                distance,
                threshold,
                degraded,
                attempts,
                rejects,
            } => Value::Object(vec![
                ("ok".to_string(), Value::Bool(true)),
                ("op".to_string(), Value::String("decision".to_string())),
                ("accepted".to_string(), Value::Bool(*accepted)),
                ("distance".to_string(), Value::Number(*distance)),
                ("threshold".to_string(), Value::Number(*threshold)),
                ("degraded".to_string(), Value::Bool(*degraded)),
                ("attempts".to_string(), Value::Number(*attempts as f64)),
                (
                    "rejects".to_string(),
                    Value::Array(rejects.iter().map(|r| Value::String(r.clone())).collect()),
                ),
            ]),
            Response::Error {
                kind,
                message,
                retry_after_ms,
            } => {
                let mut members = vec![
                    ("ok".to_string(), Value::Bool(false)),
                    ("kind".to_string(), Value::String(kind.clone())),
                    ("error".to_string(), Value::String(message.clone())),
                ];
                if let Some(ms) = retry_after_ms {
                    members.push(("retry_after_ms".to_string(), Value::Number(*ms as f64)));
                }
                Value::Object(members)
            }
        }
    }

    /// Parses a wire document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/malformed field.
    pub fn from_json(value: &Value) -> Result<Response, String> {
        let ok = value
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or("response misses the \"ok\" field")?;
        if !ok {
            return Ok(Response::Error {
                kind: value
                    .get("kind")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                message: value
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                retry_after_ms: value
                    .get("retry_after_ms")
                    .and_then(Value::as_f64)
                    .filter(|ms| ms.is_finite() && *ms >= 0.0)
                    .map(|ms| ms as u64),
            });
        }
        match value.get("op").and_then(Value::as_str) {
            Some("health") => Ok(Response::Health {
                health: value.get("health").cloned().unwrap_or(Value::Null),
                enrolled: value.get("enrolled").and_then(Value::as_f64).unwrap_or(0.0) as usize,
            }),
            Some("decision") => {
                let field = |name: &str| {
                    value
                        .get(name)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("decision misses the \"{name}\" field"))
                };
                let flag = |name: &str| {
                    value
                        .get(name)
                        .and_then(Value::as_bool)
                        .ok_or_else(|| format!("decision misses the \"{name}\" field"))
                };
                Ok(Response::Decision {
                    accepted: flag("accepted")?,
                    distance: field("distance")?,
                    threshold: field("threshold")?,
                    degraded: flag("degraded")?,
                    attempts: field("attempts")? as usize,
                    rejects: value
                        .get("rejects")
                        .and_then(Value::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect(),
                })
            }
            _ => Err("response carries an unknown \"op\"".to_string()),
        }
    }

    /// Parses raw frame bytes.
    ///
    /// # Errors
    ///
    /// As [`Response::from_json`], plus UTF-8 and JSON syntax errors.
    pub fn from_frame(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
        Response::from_json(&json::parse(text)?)
    }
}

/// Serialises a recording for the wire: sample rate plus the six axis
/// tracks. Condition and the simulator's user tag stay server-side
/// concerns — a real client would not know them either.
pub fn recording_to_json(recording: &Recording) -> Value {
    Value::Object(vec![
        (
            "rate".to_string(),
            Value::Number(recording.sample_rate_hz()),
        ),
        (
            "axes".to_string(),
            Value::Array(
                recording
                    .axes()
                    .iter()
                    .map(|axis| Value::Array(axis.iter().map(|&v| Value::Number(v)).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Deserialises a wire recording.
///
/// # Errors
///
/// Returns a message for missing fields, non-numeric samples, or a
/// shape [`Recording::from_parts`] rejects (≠ 6 axes, ragged or empty
/// tracks, non-positive rate).
pub fn recording_from_json(value: &Value) -> Result<Recording, String> {
    let rate = value
        .get("rate")
        .and_then(Value::as_f64)
        .ok_or("recording misses the \"rate\" field")?;
    let axes_json = value
        .get("axes")
        .and_then(Value::as_array)
        .ok_or("recording misses the \"axes\" array")?;
    let mut axes = Vec::with_capacity(axes_json.len());
    for (i, axis) in axes_json.iter().enumerate() {
        let samples = axis
            .as_array()
            .ok_or_else(|| format!("axis {i} is not an array"))?;
        axes.push(
            samples
                .iter()
                .map(|v| match v {
                    // JSON has no NaN; the writer emits `null` for
                    // non-finite samples (faulted sensors produce them)
                    // and the quality gate must still see them as such.
                    Value::Null => Ok(f64::NAN),
                    _ => v
                        .as_f64()
                        .ok_or_else(|| format!("axis {i} holds a non-number")),
                })
                .collect::<Result<Vec<f64>, _>>()?,
        );
    }
    Recording::from_parts(rate, axes, Condition::Normal, 0).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn probe() -> Recording {
        let axes: Vec<Vec<f64>> = (0..6)
            .map(|a| {
                (0..32)
                    .map(|i| ((a * 32 + i) as f64).sin() * 1e-3 + 0.1)
                    .collect()
            })
            .collect();
        Recording::from_parts(1000.0, axes, Condition::Normal, 7).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().as_deref(),
            Some(&b""[..])
        );
        // Clean EOF between frames.
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 64]).unwrap();
        let err = read_frame(&mut Cursor::new(buf), 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(7); // header + one payload byte
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // EOF inside the header itself is also an error, not a clean close.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0, 0]), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn requests_round_trip_bit_identically() {
        let original = Request::Verify {
            user_id: 42,
            probe: probe(),
        };
        let parsed = Request::from_frame(original.to_json().to_json().as_bytes()).unwrap();
        match (&original, &parsed) {
            (
                Request::Verify {
                    user_id: a,
                    probe: pa,
                },
                Request::Verify {
                    user_id: b,
                    probe: pb,
                },
            ) => {
                assert_eq!(a, b);
                assert_eq!(pa.sample_rate_hz(), pb.sample_rate_hz());
                // Shortest-round-trip f64 text ⇒ bit-identical samples.
                assert_eq!(pa.axes(), pb.axes());
            }
            other => panic!("round trip changed the variant: {other:?}"),
        }
        let multi = Request::VerifyWithPolicy {
            user_id: 3,
            probes: vec![probe(), probe()],
        };
        let parsed = Request::from_frame(multi.to_json().to_json().as_bytes()).unwrap();
        assert!(
            matches!(parsed, Request::VerifyWithPolicy { user_id: 3, ref probes } if probes.len() == 2)
        );
        assert_eq!(
            Request::from_frame(Request::Health.to_json().to_json().as_bytes()).unwrap(),
            Request::Health
        );
    }

    #[test]
    fn non_finite_samples_survive_the_wire_as_nan() {
        // Faulted sensors emit NaN/Inf; JSON writes them as `null`. The
        // reader must restore them as NaN so the server's quality gate
        // sees the same non-finite probe an in-process caller would.
        let mut axes: Vec<Vec<f64>> = (0..6).map(|a| vec![0.1 + a as f64; 8]).collect();
        axes[2][3] = f64::NAN;
        axes[4][5] = f64::INFINITY;
        let faulted = Recording::from_parts(1000.0, axes, Condition::Normal, 7).unwrap();
        let wire = recording_to_json(&faulted).to_json();
        let back = recording_from_json(&json::parse(&wire).unwrap()).unwrap();
        assert!(back.axes()[2][3].is_nan());
        assert!(back.axes()[4][5].is_nan());
        let finite: usize = back
            .axes()
            .iter()
            .map(|a| a.iter().filter(|v| v.is_finite()).count())
            .sum();
        assert_eq!(finite, 6 * 8 - 2);
    }

    #[test]
    fn responses_round_trip() {
        let decision = Response::Decision {
            accepted: true,
            distance: 0.123456789,
            threshold: 0.4,
            degraded: false,
            attempts: 2,
            rejects: vec!["quality:dead_axis".to_string()],
        };
        assert_eq!(
            Response::from_frame(decision.to_json().to_json().as_bytes()).unwrap(),
            decision
        );
        let error = Response::error("not_enrolled", "user 9 has no template");
        assert_eq!(
            Response::from_frame(error.to_json().to_json().as_bytes()).unwrap(),
            error
        );
        // A plain error emits no retry hint on the wire at all.
        assert!(!error.to_json().to_json().contains("retry_after_ms"));
        let shed = Response::overloaded("queue full", 250);
        let wire = shed.to_json().to_json();
        assert!(wire.contains("\"retry_after_ms\":250"), "{wire}");
        assert_eq!(Response::from_frame(wire.as_bytes()).unwrap(), shed);
        let health = Response::Health {
            health: Value::Object(vec![(
                "status".to_string(),
                Value::String("healthy".into()),
            )]),
            enrolled: 4,
        };
        assert_eq!(
            Response::from_frame(health.to_json().to_json().as_bytes()).unwrap(),
            health
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_context_and_counted() {
        // The registry is process-global and the harness runs tests
        // concurrently, so counter assertions use ≥ deltas.
        let malformed = mandipass_telemetry::metrics().counter("serve.frame.malformed");
        let mismatched = mandipass_telemetry::metrics().counter("serve.frame.version_mismatch");
        let (malformed_before, mismatched_before) = (malformed.get(), mismatched.get());
        let mut malformed_docs = 0u64;
        for (doc, needle) in [
            ("{}", "\"v\""),
            ("{\"v\":2,\"op\":\"health\"}", "version"),
            ("{\"v\":1}", "\"op\""),
            ("{\"v\":1,\"op\":\"reboot\"}", "unknown op"),
            ("{\"v\":1,\"op\":\"verify\",\"user\":1.5}", "u32"),
            ("{\"v\":1,\"op\":\"verify\",\"user\":1}", "probe"),
            ("not json", "byte"),
        ] {
            let err = Request::from_frame(doc.as_bytes()).unwrap_err();
            assert!(err.contains(needle), "{doc} → {err}");
            if !needle.contains("version") {
                malformed_docs += 1;
            }
        }
        assert!(
            malformed.get() >= malformed_before + malformed_docs,
            "malformed frames must be counted"
        );
        assert!(
            mismatched.get() > mismatched_before,
            "version mismatches must be counted separately"
        );
    }

    #[test]
    fn oversized_frames_are_counted() {
        let oversized = mandipass_telemetry::metrics().counter("serve.frame.oversized");
        let before = oversized.get();
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 64]).unwrap();
        assert!(read_frame(&mut Cursor::new(buf), 16).is_err());
        assert!(oversized.get() > before);
    }

    #[test]
    fn trace_ids_ride_the_wire_and_absent_ones_stay_absent() {
        let request = Request::Health;
        let traced = with_trace_id(request.to_json(), 0xdead_beef_cafe_f00d);
        let bytes = traced.to_json();
        assert!(bytes.contains("\"trace\":\"deadbeefcafef00d\""), "{bytes}");
        let (parsed, id) = Request::from_frame_traced(bytes.as_bytes()).unwrap();
        assert_eq!(parsed, Request::Health);
        assert_eq!(id, Some(0xdead_beef_cafe_f00d));
        // An untraced frame parses with no id; an old peer parsing a
        // traced frame (unknown field) still gets the request.
        let (_, id) = Request::from_frame_traced(request.to_json().to_json().as_bytes()).unwrap();
        assert_eq!(id, None);
        assert_eq!(
            Request::from_frame(bytes.as_bytes()).unwrap(),
            Request::Health
        );
        // A garbled trace id is best-effort metadata, not an error.
        let doc = json::parse("{\"v\":1,\"op\":\"health\",\"trace\":\"zz\"}").unwrap();
        assert_eq!(trace_id_of(&doc), None);
        assert_eq!(Request::from_json(&doc).unwrap(), Request::Health);
        // Responses echo the id the same way.
        let response = Response::error("bad_request", "nope");
        let echoed = with_trace_id(response.to_json(), 7);
        assert_eq!(trace_id_of(&echoed), Some(7));
        assert_eq!(Response::from_json(&echoed).unwrap(), response);
    }

    use mandipass_util::proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn traced_frames_with_nan_samples_round_trip(
            trace_id in 0u64..u64::MAX,
            values in proptest::collection::vec(-1e3f64..1e3, 8..64),
            salt in 0u64..1024,
        ) {
            // Lace the samples with non-finite values keyed off their
            // own bit patterns, then push the traced request through a
            // real frame write + read + parse.
            let axes: Vec<Vec<f64>> = (0..6)
                .map(|a| {
                    values
                        .iter()
                        .map(|&v| match (v.to_bits() ^ (salt + a)) % 7 {
                            0 => f64::NAN,
                            1 => f64::INFINITY,
                            2 => f64::NEG_INFINITY,
                            _ => v,
                        })
                        .collect()
                })
                .collect();
            let probe = Recording::from_parts(350.0, axes.clone(), Condition::Normal, 0)
                .unwrap_or_else(|e| panic!("shape is valid: {e}"));
            let request = Request::Verify { user_id: 9, probe };
            let mut wire = Vec::new();
            write_frame(
                &mut wire,
                with_trace_id(request.to_json(), trace_id).to_json().as_bytes(),
            )
            .unwrap_or_else(|e| panic!("write: {e}"));
            let payload = read_frame(&mut Cursor::new(wire), DEFAULT_MAX_FRAME_BYTES)
                .unwrap_or_else(|e| panic!("read: {e}"))
                .unwrap_or_else(|| panic!("frame vanished"));
            let (parsed, echoed) = Request::from_frame_traced(&payload)
                .unwrap_or_else(|e| panic!("parse: {e}"));
            prop_assert_eq!(echoed, Some(trace_id));
            let Request::Verify { user_id, probe } = parsed else {
                panic!("round trip changed the variant");
            };
            prop_assert_eq!(user_id, 9);
            for (axis, original) in probe.axes().iter().zip(&axes) {
                prop_assert_eq!(axis.len(), original.len());
                for (&back, &sent) in axis.iter().zip(original) {
                    // Non-finite samples all become NaN (JSON null);
                    // finite samples come back bit-identical.
                    if sent.is_finite() {
                        prop_assert!(back.to_bits() == sent.to_bits());
                    } else {
                        prop_assert!(back.is_nan());
                    }
                }
            }
        }
    }

    #[test]
    fn deadline_budgets_ride_the_wire_and_garbled_ones_are_ignored() {
        let doc = with_deadline_ms(Request::Health.to_json(), 750);
        let bytes = doc.to_json();
        assert!(bytes.contains("\"deadline_ms\":750"), "{bytes}");
        let (request, meta) = Request::from_frame_meta(bytes.as_bytes()).unwrap();
        assert_eq!(request, Request::Health);
        assert_eq!(meta.deadline_ms, Some(750));
        assert_eq!(meta.trace_id, None);
        // Both envelope fields compose.
        let both = with_trace_id(with_deadline_ms(Request::Health.to_json(), 10), 0xfeed);
        let (_, meta) = Request::from_frame_meta(both.to_json().as_bytes()).unwrap();
        assert_eq!(
            meta,
            FrameMeta {
                trace_id: Some(0xfeed),
                deadline_ms: Some(10),
            }
        );
        // An absent budget parses as None; a garbled one (negative,
        // fractional, non-numeric) is best-effort metadata, not an error.
        let (_, meta) =
            Request::from_frame_meta(Request::Health.to_json().to_json().as_bytes()).unwrap();
        assert_eq!(meta.deadline_ms, None);
        for garbled in [
            "{\"v\":1,\"op\":\"health\",\"deadline_ms\":-5}",
            "{\"v\":1,\"op\":\"health\",\"deadline_ms\":1.5}",
            "{\"v\":1,\"op\":\"health\",\"deadline_ms\":\"soon\"}",
        ] {
            let (request, meta) = Request::from_frame_meta(garbled.as_bytes()).unwrap();
            assert_eq!(request, Request::Health);
            assert_eq!(meta.deadline_ms, None, "{garbled}");
        }
    }

    #[test]
    fn wire_recording_rejects_bad_shapes() {
        let ok = recording_to_json(&probe());
        assert!(recording_from_json(&ok).is_ok());
        let bad = Value::Object(vec![
            ("rate".to_string(), Value::Number(1000.0)),
            ("axes".to_string(), Value::Array(vec![Value::Array(vec![])])),
        ]);
        assert!(recording_from_json(&bad).is_err());
    }
}
