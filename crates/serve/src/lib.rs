//! `mandipass-serve` — a std-only request/response verify server.
//!
//! The serving layer turns one enrolled [`mandipass::prelude::MandiPass`]
//! deployment into a network service without leaving the workspace's
//! hermetic build policy: no async runtime, no registry dependencies,
//! just `std::net::TcpListener` plus a fixed-size worker thread pool —
//! the same pattern the telemetry crate's exposition server proved out.
//!
//! Three moving parts:
//!
//! * [`protocol`] — the wire format: 4-byte big-endian length prefix +
//!   one compact JSON document per frame, both directions. Requests are
//!   `health`, `verify` (one probe), and `verify_policy` (a probe
//!   sequence judged under the deployment's [`VerifyPolicy`]).
//! * [`service`] — [`VerifyService`]: the transport-free request
//!   handler. It owns the enrolled deployment plus each user's Gaussian
//!   matrix and answers [`protocol::Request`] values directly, so an
//!   in-process caller (the bench load generator's fastest target) and
//!   the TCP workers share one code path, one telemetry surface
//!   (`serve.*` counters + the `serve.request_seconds` histogram), and
//!   one drift-monitor feed.
//! * [`server`] — [`VerifyServer`]: the TCP front. An acceptor thread
//!   hands connections (with `TCP_NODELAY` and a read timeout applied)
//!   to N worker threads over an `mpsc` channel; workers answer framed
//!   requests until the peer closes, the read timeout fires, or the
//!   server shuts down. [`VerifyServer::shutdown`] is graceful: stop
//!   flag, acceptor wake-up, channel drain, join.
//!
//! [`client::VerifyClient`] is the matching blocking client, used by the
//! load generator and the tests.
//!
//! Every request is traced end to end: frames may carry an optional
//! `trace` field (a 16-hex-digit id, minted server-side when absent —
//! the protocol version stays 1 because both parsers ignore unknown
//! fields), responses echo it back, and each handled request records a
//! [`mandipass_telemetry::RequestTrace`] with a queue-wait / decode /
//! verify / write stage breakdown into the monitor's sampled trace
//! store, inspectable over `GET /traces` on the monitor HTTP listener.
//!
//! [`VerifyPolicy`]: mandipass::prelude::VerifyPolicy

pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

#[cfg(test)]
pub(crate) mod test_support;

pub use client::VerifyClient;
pub use protocol::{trace_id_of, with_trace_id, Request, Response, PROTOCOL_VERSION, TRACE_FIELD};
pub use server::{ServeConfig, VerifyServer};
pub use service::{PendingTrace, VerifyService, WireTiming};

#[cfg(test)]
mod sync_audit {
    /// The whole serving story rests on sharing one enrolled deployment
    /// across worker threads by `&self`; assert the auto-traits here so
    /// a future interior-mutability change fails loudly at compile time.
    #[test]
    fn shared_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<mandipass::prelude::MandiPass>();
        assert_send_sync::<crate::VerifyService>();
        assert_send_sync::<crate::VerifyServer>();
    }
}
