//! `mandipass-serve` — a std-only request/response verify server.
//!
//! The serving layer turns one enrolled [`mandipass::prelude::MandiPass`]
//! deployment into a network service without leaving the workspace's
//! hermetic build policy: no async runtime, no registry dependencies,
//! just `std::net::TcpListener` plus a fixed-size worker thread pool —
//! the same pattern the telemetry crate's exposition server proved out.
//!
//! Three moving parts:
//!
//! * [`protocol`] — the wire format: 4-byte big-endian length prefix +
//!   one compact JSON document per frame, both directions. Requests are
//!   `health`, `verify` (one probe), and `verify_policy` (a probe
//!   sequence judged under the deployment's [`VerifyPolicy`]).
//! * [`service`] — [`VerifyService`]: the transport-free request
//!   handler. It owns the enrolled deployment plus each user's Gaussian
//!   matrix and answers [`protocol::Request`] values directly, so an
//!   in-process caller (the bench load generator's fastest target) and
//!   the TCP workers share one code path, one telemetry surface
//!   (`serve.*` counters + the `serve.request_seconds` histogram), and
//!   one drift-monitor feed.
//! * [`server`] — [`VerifyServer`]: the TCP front. An acceptor thread
//!   hands connections (with `TCP_NODELAY` and a read timeout applied)
//!   to N worker threads over a **capacity-bounded** channel; workers
//!   answer framed requests until the peer closes, the read timeout
//!   fires, or the server shuts down. When the admission queue is full
//!   the connection is shed with a typed `overloaded` error carrying a
//!   `retry_after_ms` hint; requests whose optional `deadline_ms`
//!   budget was blown by queue wait alone are shed without a forward
//!   pass. [`VerifyServer::shutdown`] is graceful: stop flag, acceptor
//!   wake-up, a bounded drain that answers still-queued connections
//!   with a typed `shutting_down` error, join.
//!
//! Overload hardening wraps those parts:
//!
//! * [`breaker`] — [`CircuitBreaker`]: a deterministic, count-based
//!   Closed → Degraded → Open → HalfOpen circuit breaker coupled to the
//!   drift monitor's health verdict (a drift Alarm overlays Degraded:
//!   only the accel-only `verify_policy` fallback path is served) and
//!   to the shed rate (sustained sheds open it; cooldown admits
//!   deterministic half-open probes). Its state rides every `health`
//!   response and the monitor's `GET /health` document, and every
//!   transition lands in the flight recorder.
//! * [`chaos`] — [`ChaosProxy`]: a seed-deterministic in-process TCP
//!   fault proxy (frames split at arbitrary byte boundaries, byte
//!   trickle, abrupt mid-frame closes, stalled reads, connect floods)
//!   the tests and the overload bench drive the server through.
//!
//! [`client::VerifyClient`] is the matching blocking client, used by the
//! load generator and the tests. Beyond one-shot calls it offers
//! [`client::VerifyClient::call_resilient`]: bounded connects,
//! reconnection on broken connections, and capped exponential backoff
//! with deterministic jitter that honours the server's
//! `retry_after_ms` hints, retrying under one trace id.
//!
//! Every request is traced end to end: frames may carry an optional
//! `trace` field (a 16-hex-digit id, minted server-side when absent —
//! the protocol version stays 1 because both parsers ignore unknown
//! fields), responses echo it back, and each handled request records a
//! [`mandipass_telemetry::RequestTrace`] with a queue-wait / decode /
//! verify / write stage breakdown into the monitor's sampled trace
//! store, inspectable over `GET /traces` on the monitor HTTP listener.
//!
//! [`VerifyPolicy`]: mandipass::prelude::VerifyPolicy

pub mod breaker;
pub mod chaos;
pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

#[cfg(test)]
pub(crate) mod test_support;

pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker, RequestClass};
pub use chaos::{ChaosProxy, ConnPlan, Fault};
pub use client::{ResilientOutcome, RetryConfig, VerifyClient};
pub use protocol::{
    deadline_ms_of, trace_id_of, with_deadline_ms, with_trace_id, Request, Response,
    DEADLINE_FIELD, PROTOCOL_VERSION, TRACE_FIELD,
};
pub use server::{ServeConfig, VerifyServer, QUEUE_ENV};
pub use service::{PendingTrace, VerifyService, WireTiming};

#[cfg(test)]
mod sync_audit {
    /// The whole serving story rests on sharing one enrolled deployment
    /// across worker threads by `&self`; assert the auto-traits here so
    /// a future interior-mutability change fails loudly at compile time.
    #[test]
    fn shared_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<mandipass::prelude::MandiPass>();
        assert_send_sync::<crate::VerifyService>();
        assert_send_sync::<crate::VerifyServer>();
    }
}
