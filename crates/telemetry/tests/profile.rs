//! Profiler correctness: deterministic bit-identical call trees and
//! lossless concurrent-worker merging.
//!
//! These are the observability analogues of the pipeline's determinism
//! tests: under the logical clock, profiling the same workload twice
//! must produce *byte-identical* folded output, and merging N worker
//! threads must lose no frame (counts sum exactly).

use std::sync::{Mutex, MutexGuard};

use mandipass_telemetry as telemetry;
use mandipass_telemetry::{alloc, profile};

/// Serialises tests that mutate the process-global profiler/clock.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A fixed span workload: `calls` iterations of a three-deep pipeline
/// shape with two siblings.
fn fixed_workload(calls: usize) {
    for _ in 0..calls {
        let _root = telemetry::span("verify");
        {
            let _stage = telemetry::span("preprocess");
            let _leaf = telemetry::span("detect");
        }
        let _tail = telemetry::span("similarity");
    }
}

/// One profiled run: `workers` labelled threads each execute the fixed
/// workload; returns the folded snapshot.
fn profiled_run(workers: usize, calls: usize) -> String {
    profile::reset();
    profile::set_enabled(true);
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            std::thread::spawn(move || {
                profile::set_thread_root(&format!("worker{i}"));
                fixed_workload(calls);
                profile::clear_thread_root();
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap_or_else(|_| panic!("worker panicked"));
    }
    profile::set_enabled(false);
    let folded = profile::snapshot().folded();
    profile::reset();
    folded
}

#[test]
fn two_identical_seed_runs_produce_bit_identical_call_trees() {
    let _lock = lock();
    telemetry::set_deterministic(true);
    let first = profiled_run(2, 5);
    let second = profiled_run(2, 5);
    telemetry::set_deterministic(false);
    assert!(!first.is_empty());
    assert_eq!(first, second, "folded profiles diverged across runs");
    // Worker subtrees are present and byte-for-byte identical in both.
    for worker in ["worker0", "worker1"] {
        assert!(
            first.contains(&format!("{worker};verify;preprocess;detect ")),
            "missing {worker} subtree in:\n{first}"
        );
    }
}

#[test]
fn json_call_tree_is_bit_identical_too() {
    let _lock = lock();
    telemetry::set_deterministic(true);
    let run = || {
        profile::reset();
        profile::set_enabled(true);
        fixed_workload(3);
        profile::set_enabled(false);
        let json = profile::snapshot().to_json().to_json();
        profile::reset();
        json
    };
    let (first, second) = (run(), run());
    telemetry::set_deterministic(false);
    assert_eq!(first, second);
    assert!(first.contains("\"name\":\"verify\""), "{first}");
    assert!(first.contains("\"p50_nanos\""), "{first}");
}

#[test]
fn concurrent_worker_merge_is_lossless() {
    let _lock = lock();
    const WORKERS: usize = 8;
    const CALLS: usize = 50;
    profile::reset();
    profile::set_enabled(true);
    let handles: Vec<_> = (0..WORKERS)
        .map(|i| {
            std::thread::spawn(move || {
                profile::set_thread_root(&format!("worker{i}"));
                fixed_workload(CALLS);
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap_or_else(|_| panic!("worker panicked"));
    }
    profile::set_enabled(false);
    let snapshot = profile::snapshot();
    profile::reset();
    // Every frame of every worker survived the merge: counts sum
    // exactly, nothing aliased, nothing dropped.
    for name in ["verify", "verify.preprocess", "verify.preprocess.detect"] {
        let total: u64 = (0..WORKERS)
            .map(|i| {
                snapshot
                    .frames()
                    .get(&format!("worker{i}.{name}"))
                    .map(|s| s.count)
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(
            total,
            (WORKERS * CALLS) as u64,
            "lost closes for frame {name}"
        );
    }
    // Self + descendants' self reconstructs the root's total time
    // exactly (self-time accounting is conservative-free).
    for i in 0..WORKERS {
        let frames = snapshot.frames();
        let root = &frames[&format!("worker{i}.verify")];
        let reconstructed: u64 = frames
            .iter()
            .filter(|(p, _)| p.starts_with(&format!("worker{i}.verify")))
            .map(|(_, s)| s.self_nanos)
            .sum();
        assert_eq!(
            reconstructed, root.total_nanos,
            "worker{i} subtree self times do not sum to the root total"
        );
    }
}

#[test]
fn top_self_ranking_matches_folded_values() {
    let _lock = lock();
    telemetry::set_deterministic(true);
    profile::reset();
    profile::set_enabled(true);
    fixed_workload(4);
    profile::set_enabled(false);
    let snapshot = profile::snapshot();
    profile::reset();
    telemetry::set_deterministic(false);
    let top = snapshot.top_self(3);
    assert!(!top.is_empty());
    // Descending by self time.
    for pair in top.windows(2) {
        assert!(pair[0].1.self_nanos >= pair[1].1.self_nanos);
    }
    // Every folded line's value is that frame's self time.
    for line in snapshot.folded().lines() {
        let (stack, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed folded line {line}"));
        let path = stack.replace(';', ".");
        let expect = snapshot.frames()[&path].self_nanos;
        assert_eq!(
            value,
            expect.to_string(),
            "folded value mismatch for {path}"
        );
    }
}

#[test]
fn alloc_attribution_keys_match_cpu_profile_keys() {
    let _lock = lock();
    // Even without the profiling allocator installed, the attribution
    // path (exercised here via a span + the public snapshot API) must
    // compose keys exactly like the CPU profiler, root label included.
    profile::reset();
    alloc::reset();
    profile::set_enabled(true);
    profile::set_thread_root("workerX");
    {
        let _span = telemetry::span("verify");
    }
    profile::clear_thread_root();
    profile::set_enabled(false);
    let cpu = profile::snapshot();
    profile::reset();
    assert!(cpu.frames().contains_key("workerX.verify"));
}
