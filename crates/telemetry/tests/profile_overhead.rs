//! Allocation-profiler end-to-end coverage and the disabled-profiler
//! zero-overhead guard.
//!
//! This binary installs [`telemetry::alloc::ProfilingAlloc`] as its
//! global allocator — the promoted counting-allocator idiom from the
//! zero-alloc hot-path tests — so it can prove, rather than assert,
//! that a disabled profiler adds zero steady-state allocations to the
//! span fast path, and that attribution charges heap traffic to the
//! innermost span path.

use std::sync::{Mutex, MutexGuard};

use mandipass_telemetry as telemetry;
use mandipass_telemetry::{alloc, profile};

#[global_allocator]
static ALLOC: alloc::ProfilingAlloc = alloc::ProfilingAlloc;

/// Serialises tests that mutate the process-global profiler state.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn disabled_profiler_adds_zero_steady_state_allocations() {
    let _lock = lock();
    profile::set_enabled(false);
    alloc::set_enabled(false);
    telemetry::set_mode(telemetry::Mode::Silent);
    // Warm-up: initialise the lazy mode/profiler flags and any
    // thread-local state outside the measured window.
    for _ in 0..8 {
        let _span = telemetry::span("steady_state_probe");
    }
    let (allocs_before, _, bytes_before) = alloc::totals();
    for _ in 0..10_000 {
        let _span = telemetry::span("steady_state_probe");
    }
    let (allocs_after, _, bytes_after) = alloc::totals();
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "disabled profiler allocated on the span fast path"
    );
    assert_eq!(bytes_after - bytes_before, 0);
}

#[test]
fn enabled_profiler_reaches_steady_state_without_allocating() {
    let _lock = lock();
    telemetry::set_deterministic(true);
    profile::reset();
    profile::set_enabled(true);
    profile::set_thread_root("overhead_worker");
    // Warm-up: populate the frame table and grow the path/key scratch
    // buffers to their steady-state capacity.
    for _ in 0..16 {
        let _outer = telemetry::span("warm_outer");
        let _inner = telemetry::span("warm_inner");
    }
    let (allocs_before, _, _) = alloc::totals();
    for _ in 0..1_000 {
        let _outer = telemetry::span("warm_outer");
        let _inner = telemetry::span("warm_inner");
    }
    let (allocs_after, _, _) = alloc::totals();
    profile::clear_thread_root();
    profile::set_enabled(false);
    let snapshot = profile::snapshot();
    profile::reset();
    telemetry::set_deterministic(false);
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "profiling a known frame set allocated in the steady state"
    );
    assert_eq!(snapshot.frames()["overhead_worker.warm_outer"].count, 1_016);
    assert_eq!(
        snapshot.frames()["overhead_worker.warm_outer.warm_inner"].count,
        1_016
    );
}

#[test]
fn allocations_attribute_to_the_innermost_span_path() {
    let _lock = lock();
    profile::set_enabled(true);
    alloc::reset();
    alloc::set_enabled(true);
    {
        let _outer = telemetry::span("attr_verify");
        let _inner = telemetry::span("attr_extract");
        // A deliberate heap escape inside the innermost span.
        let escape: Vec<u8> = Vec::with_capacity(4096);
        drop(escape);
    }
    alloc::set_enabled(false);
    profile::set_enabled(false);
    let snapshot = alloc::snapshot();
    alloc::reset();
    let stats = snapshot
        .sites()
        .get("attr_verify.attr_extract")
        .copied()
        .unwrap_or_else(|| panic!("no attribution for the inner span: {:?}", snapshot.sites()));
    assert!(stats.allocs >= 1, "missing the Vec allocation");
    assert!(stats.bytes_allocated >= 4096);
    assert!(stats.frees >= 1, "missing the Vec free");
    // The folded export is byte-weighted and uses semicolon stacks.
    let folded = snapshot.folded();
    assert!(folded.contains("attr_verify;attr_extract "), "{folded}");
}

#[test]
fn attribution_disabled_skips_the_site_table() {
    let _lock = lock();
    alloc::set_enabled(false);
    alloc::reset();
    let v: Vec<u8> = Vec::with_capacity(1024);
    drop(v);
    assert!(
        alloc::snapshot().is_empty(),
        "sites recorded while attribution was off"
    );
}
