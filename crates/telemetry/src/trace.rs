//! End-to-end request tracing: per-request stage timings tied together
//! by a wire-visible trace id.
//!
//! The serve layer mints (or accepts) a `u64` trace id per request,
//! wraps the handling in a span capture, and offers the resulting
//! [`RequestTrace`] — endpoint, decision, stage breakdown, optional
//! pipeline [`SpanTree`] — to a bounded [`TraceStore`]. The store is a
//! ring like [`crate::flight::FlightRecorder`], but *sampled*: error,
//! degraded, and slow requests are always retained; the rest pass a
//! probabilistic filter that hashes the trace id against a fixed seed,
//! so the sampled *set* is a pure function of the ids — bit-identical
//! across runs regardless of worker scheduling, which is what the
//! two-run determinism test in `exp_trace` asserts.
//!
//! On the wire a trace id travels as a fixed-width lower-case hex
//! string ([`format_trace_id`]); JSON numbers are f64 and would corrupt
//! ids above 2^53. [`scope`] parks the active id in a thread-local so
//! deep layers (the flight recorder in the core policy path) can tag
//! their records without threading the id through every signature.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use mandipass_util::json::Value;
use mandipass_util::rand::rngs::StdRng;
use mandipass_util::rand::{Rng, SeedableRng};

use crate::span::SpanTree;

/// Environment variable overriding the probabilistic sample rate
/// (`0.0` ≤ rate ≤ `1.0`; error/degraded/slow traces are kept anyway).
pub const TRACE_SAMPLE_ENV: &str = "MANDIPASS_TRACE_SAMPLE";

/// Renders a trace id as the wire format: 16 lower-case hex digits.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a wire trace id: 1–16 hex digits (case-insensitive).
pub fn parse_trace_id(text: &str) -> Result<u64, String> {
    if text.is_empty() || text.len() > 16 {
        return Err(format!("trace id must be 1-16 hex digits, got {text:?}"));
    }
    u64::from_str_radix(text, 16).map_err(|_| format!("trace id is not hex: {text:?}"))
}

/// One timed stage of a request's lifecycle, in nanoseconds (or logical
/// ticks in deterministic mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage label from the fixed taxonomy: `queue_wait`, `decode`,
    /// `verify`, `write`.
    pub name: &'static str,
    /// Time spent in the stage.
    pub nanos: u64,
}

/// Why a trace was retained by the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleReason {
    /// The request failed (parse error, not-enrolled, pipeline error,
    /// retries exhausted) — always sampled.
    Error,
    /// The decision was made in degraded mode — always sampled.
    Degraded,
    /// Total latency crossed the slow threshold — always sampled.
    Slow,
    /// Survived the probabilistic filter.
    Probabilistic,
}

impl SampleReason {
    /// Stable lower-case label for reports and exposition.
    pub fn label(self) -> &'static str {
        match self {
            SampleReason::Error => "error",
            SampleReason::Degraded => "degraded",
            SampleReason::Slow => "slow",
            SampleReason::Probabilistic => "probabilistic",
        }
    }
}

/// One traced request: identity, outcome, and where its time went.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Monotonic per-store sequence number (assigned on offer, never
    /// reused after eviction).
    pub seq: u64,
    /// Timestamp of the record ([`crate::clock::now`] units).
    pub timestamp: u64,
    /// The id echoed to the client.
    pub trace_id: u64,
    /// Request endpoint: `health`, `verify`, `verify_policy`, or
    /// `bad_request` for frames that never parsed.
    pub endpoint: String,
    /// Outcome label: `ok`, `accepted`, `rejected`, `degraded`, or
    /// `error:<kind>`.
    pub decision: String,
    /// End-to-end time from frame arrival (plus any queue wait) to the
    /// response write completing.
    pub total_nanos: u64,
    /// Per-stage breakdown; stage sums never exceed `total_nanos`.
    pub stages: Vec<StageTiming>,
    /// The pipeline span tree captured inside the `verify` stage, when
    /// the worker thread was free to capture.
    pub spans: Option<SpanTree>,
    /// Why the sampler kept this trace (assigned on offer).
    pub reason: Option<SampleReason>,
}

impl RequestTrace {
    /// A trace with identity fields set and everything else empty;
    /// [`TraceStore::offer_at`] assigns `seq`, `timestamp`, `reason`.
    pub fn new(trace_id: u64, endpoint: &str, decision: &str) -> Self {
        RequestTrace {
            seq: 0,
            timestamp: 0,
            trace_id,
            endpoint: endpoint.to_string(),
            decision: decision.to_string(),
            total_nanos: 0,
            stages: Vec::new(),
            spans: None,
            reason: None,
        }
    }

    /// Appends one stage timing.
    pub fn stage(&mut self, name: &'static str, nanos: u64) {
        self.stages.push(StageTiming { name, nanos });
    }

    /// Sum of the recorded stage durations.
    pub fn stage_nanos(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// Whether the decision is an error (`error:<kind>`).
    pub fn is_error(&self) -> bool {
        self.decision.starts_with("error")
    }

    /// Whether the decision was made in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.decision == "degraded"
    }

    /// Serialises the trace; the id renders in wire hex form.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("seq".to_string(), Value::Number(self.seq as f64)),
            (
                "timestamp".to_string(),
                Value::Number(self.timestamp as f64),
            ),
            (
                "trace_id".to_string(),
                Value::String(format_trace_id(self.trace_id)),
            ),
            ("endpoint".to_string(), Value::String(self.endpoint.clone())),
            ("decision".to_string(), Value::String(self.decision.clone())),
            (
                "total_nanos".to_string(),
                Value::Number(self.total_nanos as f64),
            ),
            (
                "stages".to_string(),
                Value::Object(
                    self.stages
                        .iter()
                        .map(|s| (s.name.to_string(), Value::Number(s.nanos as f64)))
                        .collect(),
                ),
            ),
            (
                "spans".to_string(),
                self.spans.as_ref().map_or(Value::Null, SpanTree::to_json),
            ),
            (
                "reason".to_string(),
                self.reason
                    .map_or(Value::Null, |r| Value::String(r.label().to_string())),
            ),
        ])
    }
}

/// Sampler and ring geometry for a [`TraceStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Ring capacity (minimum 1).
    pub capacity: usize,
    /// Probability of retaining a non-error, non-degraded, non-slow
    /// trace; clamped to [0, 1].
    pub sample_rate: f64,
    /// Total latency at or above which a trace is always retained.
    pub slow_threshold_nanos: u64,
    /// Seed the probabilistic filter hashes trace ids against.
    pub seed: u64,
}

impl Default for TraceConfig {
    /// Capacity 256, sample everything (override with
    /// `MANDIPASS_TRACE_SAMPLE`), 250 ms slow threshold.
    fn default() -> Self {
        TraceConfig {
            capacity: 256,
            sample_rate: sample_rate_from_env().unwrap_or(1.0),
            slow_threshold_nanos: 250_000_000,
            seed: 0x6d61_6e64_6970_6173, // "mandipas"
        }
    }
}

/// Parses a sample-rate string: a float clamped to [0, 1].
pub fn parse_sample_rate(text: &str) -> Option<f64> {
    text.trim().parse::<f64>().ok().map(|r| {
        if r.is_finite() {
            r.clamp(0.0, 1.0)
        } else {
            1.0
        }
    })
}

/// Reads `MANDIPASS_TRACE_SAMPLE`; `None` when unset or unparsable.
pub fn sample_rate_from_env() -> Option<f64> {
    std::env::var(TRACE_SAMPLE_ENV)
        .ok()
        .as_deref()
        .and_then(parse_sample_rate)
}

/// Mints a fresh trace id: a process-wide counter fed through the util
/// PRNG, so ids are unique in practice and well-spread over the u64
/// space (sequential ids would correlate with the sampler's hash
/// input) while the sequence itself stays run-to-run deterministic.
pub fn mint_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    StdRng::seed_from_u64(0x6d70_5f74_7261_6365 ^ n).next_u64()
}

/// The probabilistic filter: a pure function of `(seed, trace_id)`, so
/// the decision for an id never depends on which worker saw it first or
/// how many traces came before — the property behind run-to-run
/// bit-identical sampling.
fn keeps(seed: u64, trace_id: u64, sample_rate: f64) -> bool {
    StdRng::seed_from_u64(seed ^ trace_id).next_f64() < sample_rate
}

/// A bounded ring of sampled [`RequestTrace`] records, oldest evicted
/// first.
#[derive(Debug)]
pub struct TraceStore {
    ring: VecDeque<RequestTrace>,
    config: TraceConfig,
    next_seq: u64,
    total_offered: u64,
    total_sampled: u64,
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new(TraceConfig::default())
    }
}

impl TraceStore {
    /// A store with the given sampler configuration.
    pub fn new(mut config: TraceConfig) -> Self {
        config.capacity = config.capacity.max(1);
        config.sample_rate = if config.sample_rate.is_finite() {
            config.sample_rate.clamp(0.0, 1.0)
        } else {
            1.0
        };
        TraceStore {
            ring: VecDeque::new(),
            config,
            next_seq: 0,
            total_offered: 0,
            total_sampled: 0,
        }
    }

    /// The sampling verdict for `trace`, without recording anything.
    pub fn classify(&self, trace: &RequestTrace) -> Option<SampleReason> {
        if trace.is_error() {
            Some(SampleReason::Error)
        } else if trace.is_degraded() {
            Some(SampleReason::Degraded)
        } else if trace.total_nanos >= self.config.slow_threshold_nanos {
            Some(SampleReason::Slow)
        } else if keeps(self.config.seed, trace.trace_id, self.config.sample_rate) {
            Some(SampleReason::Probabilistic)
        } else {
            None
        }
    }

    /// Offers one trace at time `now`; returns whether the sampler kept
    /// it (assigning `seq`, `timestamp`, and `reason` when it did).
    pub fn offer_at(&mut self, now: u64, mut trace: RequestTrace) -> bool {
        self.total_offered += 1;
        let Some(reason) = self.classify(&trace) else {
            return false;
        };
        trace.reason = Some(reason);
        trace.seq = self.next_seq;
        trace.timestamp = now;
        self.next_seq += 1;
        if self.ring.len() == self.config.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(trace);
        self.total_sampled += 1;
        true
    }

    /// The retained traces, oldest first.
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.ring.iter().cloned().collect()
    }

    /// The most recent retained trace with this id.
    pub fn find(&self, trace_id: u64) -> Option<RequestTrace> {
        self.ring
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Traces ever offered, sampled or not.
    pub fn total_offered(&self) -> u64 {
        self.total_offered
    }

    /// Traces ever sampled, including evicted ones.
    pub fn total_sampled(&self) -> u64 {
        self.total_sampled
    }

    /// Serialises the store: offered/sampled totals plus the retained
    /// traces, oldest first — the `GET /traces` document.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "total_offered".to_string(),
                Value::Number(self.total_offered as f64),
            ),
            (
                "total_sampled".to_string(),
                Value::Number(self.total_sampled as f64),
            ),
            (
                "sample_rate".to_string(),
                Value::Number(self.config.sample_rate),
            ),
            (
                "traces".to_string(),
                Value::Array(self.ring.iter().map(RequestTrace::to_json).collect()),
            ),
        ])
    }

    /// Forgets the retained traces; sequence and totals survive.
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

thread_local! {
    static CURRENT: Cell<Option<u64>> = const { Cell::new(None) };
}

/// RAII guard parking a trace id as the thread's active one; dropping
/// restores the previous id (scopes nest).
#[derive(Debug)]
#[must_use = "the trace scope ends when its guard drops"]
pub struct TraceScope {
    previous: Option<u64>,
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Makes `trace_id` the thread's active trace id for the guard's
/// lifetime, so deep layers (flight recording in the policy path) can
/// tag their records via [`current`].
pub fn scope(trace_id: u64) -> TraceScope {
    let previous = CURRENT.with(|cell| cell.replace(Some(trace_id)));
    TraceScope {
        previous,
        _not_send: std::marker::PhantomData,
    }
}

/// The thread's active trace id, if a [`scope`] is open.
pub fn current() -> Option<u64> {
    CURRENT.with(Cell::get)
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let previous = self.previous;
        let _ = CURRENT.try_with(|cell| cell.set(previous));
    }
}

/// Nearest-rank quantile of an ascending-sorted slice.
fn sorted_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The latency-attribution report over a set of traces: per-stage
/// p50/p99/mean/max (plus the `total` pseudo-stage) and the `top_k`
/// slowest traces in full.
pub fn attribution_report(traces: &[RequestTrace], top_k: usize) -> Value {
    let mut by_stage: Vec<(&'static str, Vec<u64>)> = Vec::new();
    let mut totals: Vec<u64> = Vec::new();
    for trace in traces {
        totals.push(trace.total_nanos);
        for stage in &trace.stages {
            match by_stage.iter_mut().find(|(name, _)| *name == stage.name) {
                Some((_, values)) => values.push(stage.nanos),
                None => by_stage.push((stage.name, vec![stage.nanos])),
            }
        }
    }
    let summarise = |values: &mut Vec<u64>| {
        values.sort_unstable();
        let count = values.len();
        let sum: u64 = values.iter().sum();
        let mean = if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        };
        Value::Object(vec![
            ("count".to_string(), Value::Number(count as f64)),
            (
                "p50_nanos".to_string(),
                Value::Number(sorted_quantile(values, 0.5) as f64),
            ),
            (
                "p99_nanos".to_string(),
                Value::Number(sorted_quantile(values, 0.99) as f64),
            ),
            ("mean_nanos".to_string(), Value::Number(mean)),
            (
                "max_nanos".to_string(),
                Value::Number(values.last().copied().unwrap_or(0) as f64),
            ),
        ])
    };
    let mut stages: Vec<(String, Value)> = Vec::new();
    stages.push(("total".to_string(), summarise(&mut totals)));
    for (name, mut values) in by_stage {
        stages.push((name.to_string(), summarise(&mut values)));
    }
    let mut slowest: Vec<&RequestTrace> = traces.iter().collect();
    slowest.sort_by(|a, b| b.total_nanos.cmp(&a.total_nanos).then(a.seq.cmp(&b.seq)));
    slowest.truncate(top_k);
    Value::Object(vec![
        (
            "trace_count".to_string(),
            Value::Number(traces.len() as f64),
        ),
        ("stages".to_string(), Value::Object(stages)),
        (
            "slowest".to_string(),
            Value::Array(slowest.iter().map(|t| t.to_json()).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_trace(id: u64, total: u64) -> RequestTrace {
        let mut t = RequestTrace::new(id, "verify", "accepted");
        t.total_nanos = total;
        t.stage("decode", total / 4);
        t.stage("verify", total / 2);
        t
    }

    fn config(rate: f64) -> TraceConfig {
        TraceConfig {
            capacity: 64,
            sample_rate: rate,
            slow_threshold_nanos: 1_000_000,
            seed: 42,
        }
    }

    #[test]
    fn trace_id_hex_round_trips() {
        for id in [0u64, 1, 0xdead_beef, u64::MAX, 1 << 63] {
            let text = format_trace_id(id);
            assert_eq!(text.len(), 16);
            assert_eq!(parse_trace_id(&text), Ok(id));
        }
        assert_eq!(parse_trace_id("ABC"), Ok(0xabc));
        assert!(parse_trace_id("").is_err());
        assert!(parse_trace_id("12345678901234567").is_err());
        assert!(parse_trace_id("xyz").is_err());
    }

    #[test]
    fn errors_degraded_and_slow_are_always_sampled() {
        let mut store = TraceStore::new(config(0.0));
        assert!(store.offer_at(1, RequestTrace::new(1, "verify", "error:bad_request")));
        assert!(store.offer_at(2, RequestTrace::new(2, "verify_policy", "degraded")));
        let mut slow = ok_trace(3, 5_000_000);
        slow.total_nanos = 5_000_000;
        assert!(store.offer_at(3, slow));
        // A fast, successful trace is dropped at rate 0.
        assert!(!store.offer_at(4, ok_trace(4, 10)));
        let reasons: Vec<&str> = store
            .traces()
            .iter()
            .map(|t| t.reason.unwrap().label())
            .collect();
        assert_eq!(reasons, ["error", "degraded", "slow"]);
        assert_eq!(store.total_offered(), 4);
        assert_eq!(store.total_sampled(), 3);
    }

    #[test]
    fn rate_one_keeps_everything_rate_zero_nothing() {
        let mut keep_all = TraceStore::new(config(1.0));
        let mut keep_none = TraceStore::new(config(0.0));
        for id in 0..50u64 {
            keep_all.offer_at(id, ok_trace(id, 100));
            keep_none.offer_at(id, ok_trace(id, 100));
        }
        assert_eq!(keep_all.len(), 50);
        assert_eq!(keep_none.len(), 0);
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_id() {
        // Two stores, same config, ids offered in opposite orders: the
        // sampled id *set* must be identical (order independence), and
        // a mid-rate must actually split the population.
        let ids: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        // Capacity above the population so ring eviction (which *is*
        // order-dependent) cannot mask the sampler's order independence.
        let geometry = TraceConfig {
            capacity: 512,
            ..config(0.4)
        };
        let mut forward = TraceStore::new(geometry.clone());
        let mut backward = TraceStore::new(geometry);
        for &id in &ids {
            forward.offer_at(0, ok_trace(id, 100));
        }
        for &id in ids.iter().rev() {
            backward.offer_at(0, ok_trace(id, 100));
        }
        let mut fwd: Vec<u64> = forward.traces().iter().map(|t| t.trace_id).collect();
        let mut bwd: Vec<u64> = backward.traces().iter().map(|t| t.trace_id).collect();
        fwd.sort_unstable();
        bwd.sort_unstable();
        assert_eq!(fwd, bwd);
        assert!(
            !fwd.is_empty() && fwd.len() < ids.len(),
            "{} of {}",
            fwd.len(),
            ids.len()
        );
    }

    #[test]
    fn two_identical_runs_serialise_bit_identically() {
        let run = || {
            let mut store = TraceStore::new(config(0.3));
            for id in 0..100u64 {
                store.offer_at(id, ok_trace(id.wrapping_mul(0x2545_f491), 100 + id));
            }
            store.to_json().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ring_evicts_oldest_and_find_returns_latest() {
        let mut store = TraceStore::new(TraceConfig {
            capacity: 2,
            ..config(1.0)
        });
        for id in [7u64, 8, 9, 8] {
            let mut t = ok_trace(id, 100);
            t.decision = format!("gen{}", store.total_offered());
            store.offer_at(id, t);
        }
        assert_eq!(store.len(), 2);
        assert!(store.find(7).is_none(), "oldest must be evicted");
        let found = store.find(8).unwrap();
        assert_eq!(found.seq, 3, "find must return the latest offer");
        assert_eq!(store.total_sampled(), 4);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut store = TraceStore::new(TraceConfig {
            capacity: 0,
            ..config(1.0)
        });
        store.offer_at(1, ok_trace(1, 10));
        store.offer_at(2, ok_trace(2, 10));
        assert_eq!(store.len(), 1);
        assert_eq!(store.traces()[0].trace_id, 2);
    }

    #[test]
    fn trace_serialises_stages_spans_and_hex_id() {
        let mut trace = ok_trace(0xabcdef, 400);
        trace.spans = Some(
            crate::span::try_capture(|| {
                let _s = crate::span::span("verify");
            })
            .1
            .unwrap(),
        );
        let mut store = TraceStore::new(config(1.0));
        store.offer_at(9, trace);
        let json = store.to_json().to_json();
        assert!(json.contains("\"trace_id\":\"0000000000abcdef\""));
        assert!(json.contains("\"decode\":100"));
        assert!(json.contains("\"verify\":200"));
        assert!(json.contains("\"name\":\"verify\""));
        assert!(json.contains("\"reason\":\"probabilistic\""));
        assert!(json.contains("\"total_offered\":1"));
    }

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current(), None);
        {
            let _outer = scope(11);
            assert_eq!(current(), Some(11));
            {
                let _inner = scope(22);
                assert_eq!(current(), Some(22));
            }
            assert_eq!(current(), Some(11));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn minted_ids_are_distinct_across_threads() {
        let mut all: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| (0..500).map(|_| mint_id()).collect::<Vec<u64>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let minted = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), minted, "minted ids must not collide");
    }

    #[test]
    fn sample_rate_parsing_clamps() {
        assert_eq!(parse_sample_rate("0.25"), Some(0.25));
        assert_eq!(parse_sample_rate(" 1 "), Some(1.0));
        assert_eq!(parse_sample_rate("7.5"), Some(1.0));
        assert_eq!(parse_sample_rate("-3"), Some(0.0));
        assert_eq!(parse_sample_rate("NaN"), Some(1.0));
        assert_eq!(parse_sample_rate("verbose"), None);
    }

    #[test]
    fn attribution_reports_per_stage_quantiles_and_slowest() {
        let traces: Vec<RequestTrace> = (1..=100u64).map(|i| ok_trace(i, i * 10)).collect();
        let report = attribution_report(&traces, 3);
        assert_eq!(
            report.get("trace_count").and_then(Value::as_f64),
            Some(100.0)
        );
        let stages = report.get("stages").unwrap();
        let total_p50 = stages
            .get("total")
            .and_then(|s| s.get("p50_nanos"))
            .and_then(Value::as_f64)
            .unwrap();
        assert!((490.0..=510.0).contains(&total_p50), "p50 {total_p50}");
        let verify_p99 = stages
            .get("verify")
            .and_then(|s| s.get("p99_nanos"))
            .and_then(Value::as_f64)
            .unwrap();
        assert!(verify_p99 >= 490.0, "p99 {verify_p99}");
        let slowest = report.get("slowest").and_then(Value::as_array).unwrap();
        assert_eq!(slowest.len(), 3);
        let tops: Vec<f64> = slowest
            .iter()
            .map(|t| t.get("total_nanos").and_then(Value::as_f64).unwrap())
            .collect();
        assert_eq!(tops, vec![1000.0, 990.0, 980.0]);
    }

    #[test]
    fn attribution_of_nothing_is_well_formed() {
        let report = attribution_report(&[], 5);
        assert_eq!(report.get("trace_count").and_then(Value::as_f64), Some(0.0));
        assert!(report
            .get("slowest")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty());
    }
}
