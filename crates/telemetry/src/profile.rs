//! Continuous CPU profiling: a call-tree profiler fed by the span
//! layer.
//!
//! Every span close (when profiling is on) records its dot-joined path,
//! total duration, and *self* duration (total minus the time spent in
//! child spans) into a process-wide frame table. The table is a
//! `BTreeMap` keyed by path, so iteration — and therefore every export
//! — is deterministic regardless of which worker thread merged first.
//! Per-frame durations are additionally bucketed into a power-of-two
//! log histogram, which makes the p50/p99 readouts a pure function of
//! the recorded multiset: under the deterministic logical clock two
//! identical-seed runs produce bit-identical profiles, the same
//! property the trace sampler guarantees.
//!
//! There are no signals, no syscalls, and no timers here: the profiler
//! is exact (every span close is counted, nothing is sampled) and the
//! only cost when disabled is the relaxed atomic load folded into
//! [`crate::span`]'s existing early-out.
//!
//! Worker threads label their subtree with [`set_thread_root`]; the
//! serve worker pool uses this so per-worker profiles merge under
//! `worker0.…`, `worker1.…` roots instead of colliding.
//!
//! Export formats:
//! * [`CpuProfile::folded`] — Brendan-Gregg folded-stack lines
//!   (`frame;frame;frame <self_nanos>`), one line per frame, ready for
//!   `flamegraph.pl` or speedscope.
//! * [`CpuProfile::to_json`] — a nested call tree with per-frame
//!   `count` / `total` / `self` / `p50` / `p99`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use mandipass_util::json::Value;

/// Environment variable that switches the CPU profiler on
/// (`1`/`on`/`true`; anything else stays off, so a typo can never
/// enable profiling in production).
pub const PROFILE_ENV: &str = "MANDIPASS_PROFILE";

/// 0 = uninitialised (read the environment on first touch),
/// 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

fn init_from_env() -> u8 {
    let on = std::env::var(PROFILE_ENV)
        .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "on" | "true"))
        .unwrap_or(false);
    let byte = if on { 2 } else { 1 };
    // First initialiser wins; racing threads parsed the same value.
    let _ = ENABLED.compare_exchange(0, byte, Ordering::Relaxed, Ordering::Relaxed);
    ENABLED.load(Ordering::Relaxed)
}

/// Whether the CPU profiler is recording. One relaxed atomic load once
/// initialised — this sits on the span fast path.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => init_from_env() == 2,
        b => b == 2,
    }
}

/// Switches the profiler on or off programmatically, overriding the
/// environment.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

thread_local! {
    /// Optional per-thread root frame prepended to every recorded path.
    static ROOT_LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Labels every frame recorded by the current thread with `label` as a
/// synthetic root (`label.path`). Worker pools call this once at thread
/// start so concurrent per-worker profiles merge losslessly instead of
/// aliasing.
pub fn set_thread_root(label: &str) {
    ROOT_LABEL.with(|slot| *slot.borrow_mut() = Some(label.to_string()));
}

/// Removes the current thread's root label.
pub fn clear_thread_root() {
    ROOT_LABEL.with(|slot| *slot.borrow_mut() = None);
}

/// Aggregated statistics for one frame (one unique span path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameStats {
    /// Number of span closes recorded at this path.
    pub count: u64,
    /// Sum of span durations (wall nanoseconds, or logical ticks in
    /// deterministic mode).
    pub total_nanos: u64,
    /// Sum of self durations (total minus time inside child spans).
    pub self_nanos: u64,
    /// Log2 histogram of per-call total duration: bucket `i` counts
    /// calls with duration in `[2^(i-1), 2^i)` (bucket 0 = zero).
    buckets: [u64; 64],
}

impl Default for FrameStats {
    fn default() -> Self {
        FrameStats {
            count: 0,
            total_nanos: 0,
            self_nanos: 0,
            buckets: [0; 64],
        }
    }
}

fn bucket_index(duration: u64) -> usize {
    if duration == 0 {
        0
    } else {
        (64 - duration.leading_zeros() as usize).min(63)
    }
}

/// Lower bound of a bucket, the value quantile readouts report.
fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

impl FrameStats {
    fn observe(&mut self, total: u64, self_nanos: u64) {
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(total);
        self.self_nanos = self.self_nanos.saturating_add(self_nanos);
        self.buckets[bucket_index(total)] += 1;
    }

    /// Adds `other`'s samples into `self` (losslessly: counts, sums,
    /// and histogram buckets all add).
    pub fn merge(&mut self, other: &FrameStats) {
        self.count += other.count;
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
        self.self_nanos = self.self_nanos.saturating_add(other.self_nanos);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// The `q`-quantile (0 < q <= 1) of per-call total duration,
    /// resolved to its bucket's lower bound — a deterministic function
    /// of the recorded multiset.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(63)
    }
}

/// Process-wide frame table. A `BTreeMap` so every iteration order —
/// folded output, JSON, top-k — is deterministic.
static FRAMES: Mutex<BTreeMap<String, FrameStats>> = Mutex::new(BTreeMap::new());

fn frames_lock() -> std::sync::MutexGuard<'static, BTreeMap<String, FrameStats>> {
    FRAMES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    /// Scratch buffer for composing `root.path` keys without a fresh
    /// allocation per span close (capacity is retained).
    static KEY_BUF: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Runs `f` with the current thread's composed frame key for `path`
/// (root label applied). Shared with the allocation profiler so both
/// profiles attribute to identical keys.
///
/// Reentrancy: the only allocations under the `KEY_BUF` borrow happen
/// inside `f`, and both callers (`record` below and the allocation
/// hook) are shielded from re-entering — `record` runs inside the span
/// drop's `STATE` borrow, which makes the allocation hook's span-path
/// lookup bail out, and the hook itself holds its `IN_HOOK` guard.
pub(crate) fn with_composed_key<R>(path: &str, f: impl FnOnce(&str) -> R) -> R {
    ROOT_LABEL.with(|slot| match slot.borrow().as_deref() {
        Some(root) => KEY_BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            buf.clear();
            buf.push_str(root);
            buf.push('.');
            buf.push_str(path);
            f(&buf)
        }),
        None => f(path),
    })
}

/// Records one span close. Called from [`crate::span`]'s drop path only
/// when [`enabled`]; `path` is the thread's dot-joined span path. In
/// the steady state (frame already known, key buffer warm) this is one
/// mutex lock and a map update — no allocation.
pub(crate) fn record(path: &str, total: u64, self_nanos: u64) {
    with_composed_key(path, |key| {
        let mut frames = frames_lock();
        if let Some(stats) = frames.get_mut(key) {
            stats.observe(total, self_nanos);
        } else {
            let mut stats = FrameStats::default();
            stats.observe(total, self_nanos);
            frames.insert(key.to_string(), stats);
        }
    });
}

/// Clears every recorded frame (the enabled flag is untouched).
pub fn reset() {
    frames_lock().clear();
}

/// An immutable snapshot of the frame table.
#[derive(Debug, Clone, Default)]
pub struct CpuProfile {
    frames: BTreeMap<String, FrameStats>,
}

/// Snapshots the current frame table without clearing it.
pub fn snapshot() -> CpuProfile {
    CpuProfile {
        frames: frames_lock().clone(),
    }
}

impl CpuProfile {
    /// The frames, keyed by dot-joined path, in lexicographic order.
    pub fn frames(&self) -> &BTreeMap<String, FrameStats> {
        &self.frames
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Brendan-Gregg folded-stack lines: one `a;b;c <self_nanos>` line
    /// per frame. Self (exclusive) time is the conventional folded
    /// value — summing a subtree reconstructs inclusive time.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, stats) in &self.frames {
            out.push_str(&path.replace('.', ";"));
            out.push(' ');
            out.push_str(&stats.self_nanos.to_string());
            out.push('\n');
        }
        out
    }

    /// The top `k` frames by self time, descending (ties broken by
    /// path, so the ranking is deterministic).
    pub fn top_self(&self, k: usize) -> Vec<(&str, &FrameStats)> {
        let mut ranked: Vec<(&str, &FrameStats)> =
            self.frames.iter().map(|(p, s)| (p.as_str(), s)).collect();
        ranked.sort_by(|a, b| b.1.self_nanos.cmp(&a.1.self_nanos).then(a.0.cmp(b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Serialises the profile as a nested call tree:
    /// `{"frames": [{"name", "count", "total", "self", "p50", "p99",
    /// "children": [...]}, ...]}`. Paths whose parents were never
    /// recorded (for example a worker root label) get implicit
    /// zero-stat nodes.
    pub fn to_json(&self) -> Value {
        #[derive(Default)]
        struct Node {
            stats: Option<FrameStats>,
            children: BTreeMap<String, Node>,
        }
        let mut root = Node::default();
        for (path, stats) in &self.frames {
            let mut node = &mut root;
            for part in path.split('.') {
                node = node.children.entry(part.to_string()).or_default();
            }
            node.stats = Some(stats.clone());
        }
        fn render(name: &str, node: &Node) -> Value {
            let stats = node.stats.clone().unwrap_or_default();
            let mut members = vec![
                ("name".to_string(), Value::String(name.to_string())),
                ("count".to_string(), Value::Number(stats.count as f64)),
                (
                    "total_nanos".to_string(),
                    Value::Number(stats.total_nanos as f64),
                ),
                (
                    "self_nanos".to_string(),
                    Value::Number(stats.self_nanos as f64),
                ),
                (
                    "p50_nanos".to_string(),
                    Value::Number(stats.quantile(0.50) as f64),
                ),
                (
                    "p99_nanos".to_string(),
                    Value::Number(stats.quantile(0.99) as f64),
                ),
            ];
            if !node.children.is_empty() {
                members.push((
                    "children".to_string(),
                    Value::Array(node.children.iter().map(|(n, c)| render(n, c)).collect()),
                ));
            }
            Value::Object(members)
        }
        Value::Object(vec![(
            "frames".to_string(),
            Value::Array(root.children.iter().map(|(n, c)| render(n, c)).collect()),
        )])
    }

    /// A flat, compact summary for embedding in BENCH artifacts:
    /// `{"unit": "...", "frames": {path: {count, total_nanos,
    /// self_nanos, p50_nanos, p99_nanos}}}`.
    pub fn summary_json(&self) -> Value {
        let unit = if crate::clock::is_deterministic() {
            "logical_ticks"
        } else {
            "nanos"
        };
        let frames = self
            .frames
            .iter()
            .map(|(path, stats)| {
                (
                    path.clone(),
                    Value::Object(vec![
                        ("count".to_string(), Value::Number(stats.count as f64)),
                        (
                            "total_nanos".to_string(),
                            Value::Number(stats.total_nanos as f64),
                        ),
                        (
                            "self_nanos".to_string(),
                            Value::Number(stats.self_nanos as f64),
                        ),
                        (
                            "p50_nanos".to_string(),
                            Value::Number(stats.quantile(0.50) as f64),
                        ),
                        (
                            "p99_nanos".to_string(),
                            Value::Number(stats.quantile(0.99) as f64),
                        ),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("unit".to_string(), Value::String(unit.to_string())),
            ("frames".to_string(), Value::Object(frames)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_sync::global_state_lock;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(2), 2);
        assert_eq!(bucket_floor(3), 4);
    }

    #[test]
    fn quantiles_resolve_to_bucket_floors() {
        let mut stats = FrameStats::default();
        for d in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            stats.observe(d, d);
        }
        assert_eq!(stats.count, 10);
        assert_eq!(stats.quantile(0.5), 1);
        // The 99th percentile rank (ceil(9.9) = 10) lands in the
        // 1000-duration bucket, whose floor is 512.
        assert_eq!(stats.quantile(0.99), 512);
        assert_eq!(FrameStats::default().quantile(0.5), 0);
    }

    #[test]
    fn record_respects_thread_root_labels() {
        let _lock = global_state_lock();
        reset();
        record("verify.extract", 10, 4);
        set_thread_root("worker7");
        record("verify.extract", 20, 6);
        clear_thread_root();
        let snap = snapshot();
        assert_eq!(snap.frames()["verify.extract"].count, 1);
        assert_eq!(snap.frames()["worker7.verify.extract"].count, 1);
        assert_eq!(snap.frames()["worker7.verify.extract"].total_nanos, 20);
        reset();
    }

    #[test]
    fn folded_output_joins_with_semicolons() {
        let _lock = global_state_lock();
        reset();
        record("a.b", 5, 3);
        record("a", 9, 4);
        let folded = snapshot().folded();
        assert_eq!(folded, "a 4\na;b 3\n");
        reset();
    }

    #[test]
    fn json_tree_inserts_implicit_parents() {
        let _lock = global_state_lock();
        reset();
        set_thread_root("w0");
        record("serve.verify", 8, 8);
        clear_thread_root();
        let json = snapshot().to_json().to_json();
        // The w0 and serve frames were never recorded directly but
        // still appear as zero-stat structural nodes.
        assert!(json.contains("\"name\":\"w0\""), "{json}");
        assert!(json.contains("\"name\":\"serve\""), "{json}");
        assert!(json.contains("\"name\":\"verify\""), "{json}");
        reset();
    }

    #[test]
    fn top_self_ranks_descending_with_deterministic_ties() {
        let _lock = global_state_lock();
        reset();
        record("beta", 5, 5);
        record("alpha", 5, 5);
        record("gamma", 50, 50);
        let snap = snapshot();
        let top: Vec<&str> = snap.top_self(3).into_iter().map(|(p, _)| p).collect();
        assert_eq!(top, ["gamma", "alpha", "beta"]);
        reset();
    }

    #[test]
    fn merge_is_lossless() {
        let mut a = FrameStats::default();
        let mut b = FrameStats::default();
        a.observe(3, 1);
        b.observe(300, 100);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 2);
        assert_eq!(merged.total_nanos, 303);
        assert_eq!(merged.self_nanos, 101);
        assert_eq!(merged.buckets.iter().sum::<u64>(), 2);
    }
}
