//! The pluggable output API: where closed spans and narration events go.
//!
//! Sinks receive *closed* spans (a span is only reportable once its
//! duration is known) plus free-form narration events. Implementations
//! must not open telemetry spans themselves — span delivery happens
//! while the thread's span stack is borrowed.

use mandipass_util::json::Value;

/// A closed span, as delivered to sinks.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent<'a> {
    /// The span's own name.
    pub name: &'static str,
    /// Dot-joined path from the outermost open span, e.g.
    /// `verify.extract_print.preprocess`.
    pub path: &'a str,
    /// Nesting depth (1 = root).
    pub depth: usize,
    /// Start timestamp (wall nanoseconds, or logical ticks in
    /// deterministic mode).
    pub start: u64,
    /// `end - start` in the same unit as `start`.
    pub duration: u64,
}

/// A telemetry output backend.
pub trait Sink: Send + Sync {
    /// Called once per span, at close.
    fn span_close(&self, span: &SpanEvent<'_>);

    /// Called for narration events ([`crate::event`]).
    fn event(&self, message: &str);
}

/// Human-readable stderr lines, indented by span depth.
#[derive(Debug, Default)]
pub struct TextSink;

impl Sink for TextSink {
    fn span_close(&self, span: &SpanEvent<'_>) {
        let indent = "  ".repeat(span.depth.saturating_sub(1));
        eprintln!(
            "[span] {indent}{} {}ns ({})",
            span.name, span.duration, span.path
        );
    }

    fn event(&self, message: &str) {
        eprintln!("[telemetry] {message}");
    }
}

/// One compact JSON object per line on stderr.
#[derive(Debug, Default)]
pub struct JsonSink;

impl Sink for JsonSink {
    fn span_close(&self, span: &SpanEvent<'_>) {
        let doc = Value::Object(vec![
            ("type".to_string(), Value::String("span".to_string())),
            ("name".to_string(), Value::String(span.name.to_string())),
            ("path".to_string(), Value::String(span.path.to_string())),
            ("depth".to_string(), Value::Number(span.depth as f64)),
            ("start".to_string(), Value::Number(span.start as f64)),
            ("dur_ns".to_string(), Value::Number(span.duration as f64)),
        ]);
        eprintln!("{}", doc.to_json());
    }

    fn event(&self, message: &str) {
        let doc = Value::Object(vec![
            ("type".to_string(), Value::String("event".to_string())),
            ("message".to_string(), Value::String(message.to_string())),
        ]);
        eprintln!("{}", doc.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A sink that records everything it sees (used across the crate's
    /// tests and available to downstream tests).
    #[derive(Debug, Default)]
    pub struct MemorySink {
        /// `(path, duration)` per closed span.
        pub spans: Mutex<Vec<(String, u64)>>,
        /// Narration messages.
        pub events: Mutex<Vec<String>>,
    }

    impl Sink for MemorySink {
        fn span_close(&self, span: &SpanEvent<'_>) {
            self.spans
                .lock()
                .expect("memory sink lock")
                .push((span.path.to_string(), span.duration));
        }

        fn event(&self, message: &str) {
            self.events
                .lock()
                .expect("memory sink lock")
                .push(message.to_string());
        }
    }

    #[test]
    fn memory_sink_records_spans_and_events() {
        let sink = MemorySink::default();
        sink.span_close(&SpanEvent {
            name: "verify",
            path: "verify",
            depth: 1,
            start: 10,
            duration: 5,
        });
        sink.event("hello");
        assert_eq!(
            sink.spans.lock().unwrap().as_slice(),
            &[("verify".to_string(), 5)]
        );
        assert_eq!(
            sink.events.lock().unwrap().as_slice(),
            &["hello".to_string()]
        );
    }
}
