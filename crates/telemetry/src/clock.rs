//! The telemetry time source: wall clock or deterministic logical clock.
//!
//! In wall mode timestamps are monotonic nanoseconds since the first
//! telemetry observation of the process. In deterministic mode each
//! timestamp read advances a **per-thread logical counter** instead, so
//! a span tree depends only on the instrumented code path — two
//! same-seed runs produce bit-identical trees, which is what lets
//! `tests/determinism.rs` assert on telemetry output.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// 0 = uninitialised (read env), 1 = wall clock, 2 = deterministic.
static DETERMINISTIC: AtomicU8 = AtomicU8::new(0);

fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

thread_local! {
    static LOGICAL: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Selects the time source: `true` for the logical clock, `false` for
/// the wall clock. Overrides `MANDIPASS_TELEMETRY_DETERMINISTIC`.
pub fn set_deterministic(deterministic: bool) {
    DETERMINISTIC.store(if deterministic { 2 } else { 1 }, Ordering::Relaxed);
}

/// Whether timestamps come from the logical clock.
pub fn is_deterministic() -> bool {
    match DETERMINISTIC.load(Ordering::Relaxed) {
        0 => {
            let from_env = matches!(
                std::env::var("MANDIPASS_TELEMETRY_DETERMINISTIC").as_deref(),
                Ok("1") | Ok("true") | Ok("yes")
            );
            // First initialiser wins; racing threads read the same env.
            let _ = DETERMINISTIC.compare_exchange(
                0,
                if from_env { 2 } else { 1 },
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            from_env
        }
        2 => true,
        _ => false,
    }
}

/// Reads the current timestamp: wall nanoseconds, or the next logical
/// tick in deterministic mode.
pub fn now() -> u64 {
    if is_deterministic() {
        LOGICAL.with(|c| {
            let t = c.get() + 1;
            c.set(t);
            t
        })
    } else {
        anchor().elapsed().as_nanos() as u64
    }
}

/// Resets this thread's logical clock to zero. [`crate::capture`] calls
/// this at capture start so captured trees always tick from 1.
pub fn reset_logical() {
    LOGICAL.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_sync::global_state_lock;

    #[test]
    fn logical_clock_ticks_and_resets() {
        let _lock = global_state_lock();
        set_deterministic(true);
        reset_logical();
        assert_eq!(now(), 1);
        assert_eq!(now(), 2);
        reset_logical();
        assert_eq!(now(), 1);
        set_deterministic(false);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let _lock = global_state_lock();
        set_deterministic(false);
        let a = now();
        let b = now();
        assert!(b >= a);
    }
}
