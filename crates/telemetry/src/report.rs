//! Turns a captured [`SpanTree`] into a per-stage latency breakdown —
//! the telemetry-backed replacement for the hand-rolled timers behind
//! the paper's §VII.E overhead table.

use mandipass_util::json::Value;

use crate::clock;
use crate::span::SpanTree;

/// Aggregate statistics of every span sharing one name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStat {
    /// Span name (the stage label).
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of durations.
    pub total: u64,
    /// Mean duration.
    pub mean: f64,
    /// Smallest duration.
    pub min: u64,
    /// Largest duration.
    pub max: u64,
}

/// Aggregates spans by name, ordered by first appearance in the tree.
pub fn stage_stats(tree: &SpanTree) -> Vec<StageStat> {
    let mut stats: Vec<StageStat> = Vec::new();
    for span in tree.spans() {
        match stats.iter_mut().find(|s| s.name == span.name) {
            Some(stat) => {
                stat.count += 1;
                stat.total += span.duration;
                stat.min = stat.min.min(span.duration);
                stat.max = stat.max.max(span.duration);
            }
            None => stats.push(StageStat {
                name: span.name,
                count: 1,
                total: span.duration,
                mean: 0.0,
                min: span.duration,
                max: span.duration,
            }),
        }
    }
    for stat in &mut stats {
        stat.mean = stat.total as f64 / stat.count as f64;
    }
    stats
}

/// Renders the span tree plus its per-stage statistics as one JSON
/// document:
///
/// ```json
/// {"unit": "ns", "deterministic": false,
///  "spans": [{"name": "verify", "start": 0, "dur": 1, "children": [...]}],
///  "stages": [{"name": "verify", "count": 1, "total_ns": 1, ...}]}
/// ```
///
/// In deterministic mode durations are logical ticks, not nanoseconds;
/// the `unit` field says which.
pub fn latency_report(tree: &SpanTree) -> Value {
    let deterministic = clock::is_deterministic();
    let stages = stage_stats(tree)
        .into_iter()
        .map(|s| {
            Value::Object(vec![
                ("name".to_string(), Value::String(s.name.to_string())),
                ("count".to_string(), Value::Number(s.count as f64)),
                ("total_ns".to_string(), Value::Number(s.total as f64)),
                ("mean_ns".to_string(), Value::Number(s.mean)),
                ("min_ns".to_string(), Value::Number(s.min as f64)),
                ("max_ns".to_string(), Value::Number(s.max as f64)),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "unit".to_string(),
            Value::String(if deterministic { "ticks" } else { "ns" }.to_string()),
        ),
        ("deterministic".to_string(), Value::Bool(deterministic)),
        ("spans".to_string(), tree.to_json()),
        ("stages".to_string(), Value::Array(stages)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_sync::global_state_lock;
    use crate::{capture, span};

    #[test]
    fn stage_stats_aggregate_repeated_names() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let ((), tree) = capture(|| {
            for _ in 0..4 {
                let _root = span("verify");
                let _leaf = span("preprocess");
            }
        });
        crate::set_deterministic(false);
        let stats = stage_stats(&tree);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "verify");
        assert_eq!(stats[0].count, 4);
        assert_eq!(stats[1].name, "preprocess");
        assert_eq!(stats[1].count, 4);
        assert!(stats[0].mean > stats[1].mean, "parents outlast children");
        assert!(stats[0].min <= stats[0].max);
        assert_eq!(stats[0].total, 4 * stats[0].min);
    }

    #[test]
    fn latency_report_lists_every_stage() {
        let _lock = global_state_lock();
        crate::set_deterministic(true);
        let ((), tree) = capture(|| {
            let _a = span("preprocess");
        });
        let report = latency_report(&tree);
        crate::set_deterministic(false);
        assert_eq!(report.get("unit").and_then(Value::as_str), Some("ticks"));
        assert_eq!(
            report.get("deterministic").and_then(Value::as_bool),
            Some(true)
        );
        let stages = report.get("stages").and_then(Value::as_array).unwrap();
        assert_eq!(stages.len(), 1);
        assert_eq!(
            stages[0].get("name").and_then(Value::as_str),
            Some("preprocess")
        );
    }
}
